#!/usr/bin/env python3
"""HotCRP user scrubbing and disguise composition — the paper's §3 and §6.

Reproduces the paper's narrative with the full HotCRP case study:

* Bea (a PC member) scrubs her account: her reviews stay in the system but
  move to per-review anonymous placeholders (Figure 2);
* the conference later applies ConfAnon over everything;
* a second PC member scrubs *after* ConfAnon — the engine composes the
  disguises through Bea's vault, with and without the redundant-
  decorrelation optimization (the §6 latency experiment);
* Bea returns: her scrub is revealed, but the still-active ConfAnon is
  re-applied to her revealed data, so no identifiable reviews reappear.

Run:  python examples/hotcrp_user_scrub.py
"""

from repro import Disguiser
from repro.apps.hotcrp import (
    HotcrpPopulation,
    all_disguises,
    check_invariants,
    generate_hotcrp,
    scrub_assertions,
    user_footprint,
)

BEA = 2       # a PC member
SECOND = 5    # another PC member, scrubbed after ConfAnon


def fresh_engine():
    db = generate_hotcrp(
        population=HotcrpPopulation(users=86, pc_members=6, papers=90, reviews=280),
        seed=7,
    )
    engine = Disguiser(db, seed=3)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


def show_footprint(db, uid, label):
    footprint = {k: v for k, v in user_footprint(db, uid).items() if v}
    print(f"  footprint of user {uid} {label}: {footprint or 'EMPTY'}")


def main() -> None:
    db, engine = fresh_engine()

    print("== 1. Bea scrubs her account (HotCRP-GDPR+, §3) ==")
    show_footprint(db, BEA, "before")
    reviews_before = db.count("PaperReview")
    bea_reviews = [
        r["reviewId"] for r in db.select("PaperReview", "contactId = $UID", {"UID": BEA})
    ]
    scrub = engine.apply(
        "HotCRP-GDPR+", uid=BEA, assertions=scrub_assertions(), check_integrity=True
    )
    print(f"  {scrub.summary()}")
    show_footprint(db, BEA, "after")
    print(f"  reviews in system: {db.count('PaperReview')} (was {reviews_before}) — retained")
    for review_id in bea_reviews[:2]:
        review = db.get("PaperReview", review_id)
        owner = db.get("ContactInfo", review["contactId"])
        print(
            f"  Bea's review {review_id} now by placeholder "
            f"'{owner['firstName']} {owner['lastName']}' (disabled={owner['disabled']})"
        )

    print("\n== 2. The conference anonymizes itself (HotCRP-ConfAnon) ==")
    anon = engine.apply("HotCRP-ConfAnon")
    print(f"  {anon.summary()}")

    print("\n== 3. A second member scrubs AFTER ConfAnon (composition, §6) ==")
    composed = engine.apply("HotCRP-GDPR+", uid=SECOND, optimize=False)
    print(f"  unoptimized: {composed.summary()}")
    print(
        f"  -> the engine read {composed.recorrelated} reveal functions from the "
        f"vault to temporarily recorrelate user {SECOND}'s data"
    )

    db2, engine2 = fresh_engine()
    engine2.apply("HotCRP-GDPR+", uid=BEA)
    engine2.apply("HotCRP-ConfAnon")
    optimized = engine2.apply("HotCRP-GDPR+", uid=SECOND, optimize=True)
    print(f"  optimized:   {optimized.summary()}")
    print(
        f"  -> {optimized.redundant_skipped} decorrelations skipped "
        f"(already done by ConfAnon); "
        f"{composed.db_stats.total} vs {optimized.db_stats.total} statements"
    )

    print("\n== 4. Bea returns: reveal her scrub under active ConfAnon (§4.2) ==")
    reveal = engine.reveal(scrub.disguise_id, check_integrity=True)
    print(f"  {reveal.summary()}")
    bea = db.get("ContactInfo", BEA)
    print(f"  Bea's account is back: name={bea['firstName']!r} email={bea['email']!r}")
    print(f"  ...but anonymized, because ConfAnon is still active")
    print(f"  reviews linkable to Bea: {db.count('PaperReview', 'contactId = $UID', {'UID': BEA})}")

    print("\n== 5. Finally reveal ConfAnon: everything returns ==")
    engine.reveal(anon.disguise_id, check_integrity=True)
    bea = db.get("ContactInfo", BEA)
    print(f"  Bea fully restored: name={bea['firstName']!r}")
    print(f"  invariants: {check_invariants(db) or 'all hold'}")


if __name__ == "__main__":
    main()
