#!/usr/bin/env python3
"""Vault deployment models and declarative specs (paper §4.2).

Shows two things the other examples don't:

* **Declarative disguises**: the Figure-3-style JSON document format,
  parsed with ``spec_from_json`` — disguises as data, not code.
* **The multi-tier vault**: automatic/global disguises store their reveal
  functions in a tool-accessible shared tier, while user-invoked disguises
  go to per-user encrypted vaults. Composition then works without user
  keys, but revealing a user's own disguise still needs their approval.

Run:  python examples/vault_deployments.py
"""

import json

from repro import Disguiser, spec_from_json
from repro.apps.hotcrp import HotcrpPopulation, generate_hotcrp, hotcrp_confanon
from repro.errors import VaultError
from repro.vault import EncryptedVault, MemoryVault, MultiTierVault

SCRUB_DOC = {
    "disguise_name": "DeclarativeScrub",
    "description": "User scrubbing, written as a JSON document",
    "tables": {
        "ContactInfo": {
            "generate_placeholder": [
                ["firstName", "fake_name"],
                ["lastName", ["default", "Placeholder"]],
                ["email", ["default", None]],
                ["disabled", ["default", True]],
            ],
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}],
        },
        "Paper": {
            "transformations": [
                {"op": "modify", "pred": "leadContactId = $UID",
                 "column": "leadContactId", "fn": "null"},
                {"op": "modify", "pred": "shepherdContactId = $UID",
                 "column": "shepherdContactId", "fn": "null"},
                {"op": "modify", "pred": "managerContactId = $UID",
                 "column": "managerContactId", "fn": "null"},
            ]
        },
        "PaperConflict": {
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "PaperReview": {
            "transformations": [
                {"op": "decorrelate", "pred": "contactId = $UID",
                 "foreign_key": "contactId"},
                {"op": "modify", "pred": "requestedBy = $UID",
                 "column": "requestedBy", "fn": "null"},
            ]
        },
        "PaperReviewPreference": {
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "PaperReviewRefused": {
            "transformations": [
                {"op": "remove", "pred": "contactId = $UID"},
                {"op": "modify", "pred": "requestedBy = $UID",
                 "column": "requestedBy", "fn": "null"},
            ]
        },
        "ReviewRequest": {
            "transformations": [{"op": "remove", "pred": "requestedBy = $UID"}]
        },
        "ReviewRating": {
            "transformations": [
                {"op": "decorrelate", "pred": "contactId = $UID",
                 "foreign_key": "contactId"}
            ]
        },
        "PaperComment": {
            "transformations": [
                {"op": "decorrelate", "pred": "contactId = $UID",
                 "foreign_key": "contactId"}
            ]
        },
        "TopicInterest": {
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "PaperWatch": {
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "Capability": {
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "ActionLog": {
            "transformations": [
                {"op": "modify", "pred": "contactId = $UID",
                 "column": "contactId", "fn": "null"},
                {"op": "modify", "pred": "destContactId = $UID",
                 "column": "destContactId", "fn": "null"},
            ]
        },
        "Formula": {
            "transformations": [
                {"op": "modify", "pred": "createdBy = $UID",
                 "column": "createdBy", "fn": "null"}
            ]
        },
    },
}

USER = 3


def main() -> None:
    db = generate_hotcrp(
        population=HotcrpPopulation(users=50, pc_members=5, papers=40, reviews=120),
        seed=41,
    )

    print("== Declarative spec: parse Figure-3-style JSON ==")
    spec = spec_from_json(json.dumps(SCRUB_DOC))
    print(f"  parsed {spec.name!r}: {len(spec.tables)} tables, "
          f"{spec.loc()} spec LoC, user disguise: {spec.is_user_disguise}")

    print("\n== Multi-tier vault (paper §4.2) ==")
    user_tier = EncryptedVault(MemoryVault())
    user_key = user_tier.register_owner(USER)
    vault = MultiTierVault(user_tier, shared_tier=MemoryVault())
    engine = Disguiser(db, vault=vault, seed=6)
    engine.register(spec)
    engine.register(hotcrp_confanon())

    print("  1. user-invoked scrub -> entries go to the encrypted user tier")
    scrub = engine.apply(spec.name, uid=USER)
    print(f"     {scrub.summary()}")

    print("  2. automatic ConfAnon -> entries go to the shared tier")
    anon = engine.apply("HotCRP-ConfAnon")
    print(f"     {anon.summary()}")
    other = USER + 1  # an unscrubbed user
    shared = vault.shared_entries_for(other)
    print(f"     shared-tier entries for (unscrubbed) user {other}: {len(shared)} "
          f"(readable by the tool without any key)")

    print("  3. revealing the user's scrub needs their approval:")
    try:
        engine.reveal(scrub.disguise_id)
    except VaultError as exc:
        print(f"     blocked: {exc}")
    user_tier.unlock(USER, user_key)
    reveal = engine.reveal(scrub.disguise_id, check_integrity=True)
    print(f"     after unlock: {reveal.summary()}")
    contact = db.get("ContactInfo", USER)
    print(f"     account back (anonymized by active ConfAnon): "
          f"{contact['firstName']!r}")


if __name__ == "__main__":
    main()
