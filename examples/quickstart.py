#!/usr/bin/env python3
"""Quickstart: define a schema, write a disguise, apply it, reverse it.

This walks the paper's core loop end to end on a tiny blog application:

1. declare the application schema (plain CREATE TABLE text);
2. write a *disguise specification* — the paper's three fundamental
   operations (Remove / Modify / Decorrelate) plus placeholder recipes;
3. apply it through the disguising tool for one user;
4. inspect what changed and what went into the user's vault;
5. reveal (reverse) the disguise and verify the exact original state.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    Decorrelate,
    Default,
    Disguiser,
    DisguiseSpec,
    FakeName,
    Modify,
    PrivacyAssertion,
    Remove,
    Schema,
    TableDisguise,
    named_modifier,
    parse_schema,
)

SCHEMA = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII,
  disabled BOOL NOT NULL DEFAULT FALSE
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  title TEXT NOT NULL,
  body TEXT
);
CREATE TABLE likes (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  post_id INT NOT NULL REFERENCES posts(id) ON DELETE CASCADE
);
"""


def build_database() -> Database:
    db = Database(Schema(parse_schema(SCHEMA)))
    db.insert("users", {"id": 1, "name": "Ada", "email": "ada@example.org"})
    db.insert("users", {"id": 2, "name": "Bea", "email": "bea@example.org"})
    db.insert("posts", {"id": 10, "user_id": 2, "title": "Hello", "body": "First post!"})
    db.insert("posts", {"id": 11, "user_id": 2, "title": "Again", "body": "More thoughts."})
    db.insert("likes", {"id": 100, "user_id": 1, "post_id": 10})
    db.insert("likes", {"id": 101, "user_id": 2, "post_id": 10})
    return db


def build_disguise() -> DisguiseSpec:
    """Account deletion that keeps posts, GitHub-@ghost style (paper §2)."""
    redact, redact_label = named_modifier("redact")
    return DisguiseSpec(
        "AccountDeletion",
        description="Delete the account; keep posts via anonymous placeholders",
        tables=[
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={
                    "name": FakeName(),
                    "email": Default(None),
                    "disabled": Default(True),
                },
            ),
            TableDisguise(
                "posts",
                transformations=[
                    # Order matters: transformations run sequentially, and
                    # decorrelation rewrites user_id — so redact first.
                    Modify("user_id = $UID", column="body", fn=redact, label=redact_label),
                    Decorrelate("user_id = $UID", foreign_key="user_id"),
                ],
            ),
            TableDisguise("likes", transformations=[Remove("user_id = $UID")]),
        ],
    )


def main() -> None:
    db = build_database()
    engine = Disguiser(db, seed=2024)
    warnings = engine.register(build_disguise())
    for warning in warnings:
        print(f"spec warning: {warning}")

    print("Before:", db.row_counts())
    print("Bea's posts:", [p["title"] for p in db.select("posts", "user_id = 2")])

    report = engine.apply(
        "AccountDeletion",
        uid=2,
        assertions=[
            PrivacyAssertion("account gone", table="users", pred="id = $UID"),
            PrivacyAssertion("no linked posts", table="posts", pred="user_id = $UID"),
        ],
        check_integrity=True,
    )
    print("\nApplied:", report.summary())
    print("After:", db.row_counts())
    for post in db.select("posts"):
        owner = db.get("users", post["user_id"])
        print(
            f"  post {post['id']} '{post['title']}' now by "
            f"{owner['name']} (disabled={owner['disabled']})"
        )
    print("Vault entries for Bea:", len(engine.vault.entries_for(2)))

    reveal = engine.reveal(report.disguise_id, check_integrity=True)
    print("\nRevealed:", reveal.summary())
    print("After reveal:", db.row_counts())
    print("Bea restored:", db.get("users", 2))
    assert db.get("users", 2)["name"] == "Bea"
    assert [p["title"] for p in db.select("posts", "user_id = 2")] == ["Hello", "Again"]
    print("\nExact original state restored. ✓")


if __name__ == "__main__":
    main()
