#!/usr/bin/env python3
"""The compliance toolkit: explain, audit, statistical privacy, evolution.

A tour of the framework's analysis features (paper §1, §7, §8) on the
HotCRP case study:

1. **Explain** a disguise before applying it — rows, placeholders,
   conflicts, composition work (a dry run).
2. **Audit** the erasure afterwards, DELF-style: FK traces and verbatim
   identifier copies, including a denormalized one the schema cannot see.
3. **k-anonymity** as a disguise predicate: find re-identifiable
   affiliation groups and generalize them (§8).
4. **Schema evolution** under active disguises: add a column and rename
   another while a user is scrubbed; their reveal still works.

Run:  python examples/compliance_toolkit.py
"""

from repro import Disguiser, DisguiseSpec, Modify, TableDisguise
from repro.apps.hotcrp import (
    HotcrpPopulation,
    all_disguises,
    generate_hotcrp,
)
from repro.core.audit import audit_user_erasure, scan_for_pii
from repro.spec.statistical import (
    generalize_text,
    k_anonymity_predicate,
    k_anonymity_violations,
)
from repro.storage.evolve import AddColumn, RenameColumn
from repro.storage.schema import Column
from repro.storage.types import ColumnType

BEA = 3


def main() -> None:
    db = generate_hotcrp(
        population=HotcrpPopulation(users=60, pc_members=6, papers=40, reviews=150),
        seed=77,
    )
    engine = Disguiser(db, seed=9)
    for spec in all_disguises():
        engine.register(spec)

    print("== 1. Explain before applying (dry run) ==")
    plan = engine.explain("HotCRP-GDPR+", uid=BEA)
    print("  " + plan.describe().replace("\n", "\n  "))
    assert plan.is_applicable

    print("\n== 2. Apply, then audit the erasure (DELF-style, §7) ==")
    bea = db.get("ContactInfo", BEA)
    identifiers = [bea["email"], f"{bea['firstName']} {bea['lastName']}"]
    # Plant a denormalized copy the schema-driven spec cannot know about:
    db.update_by_pk(
        "Paper", 1, {"abstract": f"Thanks to {bea['email']} for comments."}
    )
    report = engine.apply("HotCRP-GDPR+", uid=BEA)
    print(f"  {report.summary()}")
    findings = audit_user_erasure(db, "ContactInfo", BEA, identifiers=identifiers)
    print(f"  audit findings: {len(findings)}")
    for finding in findings:
        print(f"    LEAK {finding}")
    print("  -> the verbatim-email leak is exactly what §7's detection "
          "heuristics exist to catch; fix the spec or the data.")

    print("\n== 3. k-anonymity as a disguise predicate (§8) ==")
    violations = k_anonymity_violations(db, "ContactInfo", ["affiliation"], k=3)
    print(f"  affiliations identifying < 3 users: {len(violations)} group(s)")
    pred = k_anonymity_predicate(db, "ContactInfo", ["affiliation"], k=3)
    k_spec = DisguiseSpec(
        "KAnonAffiliation",
        [
            TableDisguise(
                "ContactInfo",
                transformations=[
                    Modify(pred, column="affiliation", fn=generalize_text(10),
                           label="affiliation10"),
                ],
            )
        ],
    )
    k_report = engine.apply(k_spec)
    print(f"  {k_report.summary()}")

    print("\n== 4. Schema evolution with active disguises (§7) ==")
    migration = engine.evolve_schema(
        AddColumn("ContactInfo", Column("orcid", ColumnType.TEXT))
    )
    print(f"  {migration.describe()}")
    migration = engine.evolve_schema(
        RenameColumn("PaperReview", "reviewText", "body")
    )
    print(f"  {migration.describe()}")

    reveal = engine.reveal(report.disguise_id, check_integrity=True)
    print(f"  {reveal.summary()}")
    restored = db.get("ContactInfo", BEA)
    print(f"  Bea restored across two schema changes: "
          f"{restored['firstName']} {restored['lastName']}, orcid={restored['orcid']}")


if __name__ == "__main__":
    main()
