#!/usr/bin/env python3
"""Expiration and data decay policies (paper §2).

"Inactive users' accounts and data can make a data breach much worse" —
so this example wires two time-triggered policies to a HotCRP conference:

* **Expiration**: users inactive for 2 simulated years are scrubbed
  (reversibly); if they log back in, the scrub is automatically revealed.
* **Data decay**: a two-stage ladder applies increasingly strict
  transformations — first user scrubbing (reviews kept, decorrelated),
  then hard GDPR deletion after 4 years ("aging out sensitive but
  outdated user data").

Everything runs on a simulated clock, so decades pass in milliseconds.

Run:  python examples/data_decay.py
"""

from repro import (
    DecayPolicy,
    DecayStage,
    Disguiser,
    ExpirationPolicy,
    PolicyScheduler,
    SimClock,
)
from repro.apps.hotcrp import (
    HotcrpPopulation,
    all_disguises,
    check_invariants,
    generate_hotcrp,
)

YEAR = 365 * 86_400.0


def main() -> None:
    db = generate_hotcrp(
        population=HotcrpPopulation(users=40, pc_members=6, papers=30, reviews=90),
        seed=23,
    )
    engine = Disguiser(db, seed=5)
    for spec in all_disguises():
        engine.register(spec)

    # External activity signal (e.g. from the auth service): fixed logins.
    last_login = {uid: (uid % 5) * YEAR for uid in range(1, 41)}
    clock = SimClock(start=4 * YEAR)
    scheduler = PolicyScheduler(engine, clock)
    scheduler.add(
        ExpirationPolicy(
            "inactive-expiry",
            "HotCRP-GDPR+",
            inactive_for=2 * YEAR,
            activity=lambda _db: last_login,
        )
    )

    print("== Expiration policy: scrub users inactive > 2 years ==")
    actions = scheduler.tick()
    print(f"  t=4y: {len(actions)} users scrubbed "
          f"(e.g. {sorted(a.uid for a in actions)[:6]} ...)")
    print(f"  invariants: {check_invariants(db) or 'all hold'}")

    returning = sorted(a.uid for a in actions)[0]
    print(f"\n== user {returning} logs back in ==")
    last_login[returning] = clock.now
    actions = scheduler.tick()
    reveals = [a for a in actions if a.kind == "reveal"]
    print(f"  scheduler revealed their scrub automatically: "
          f"{[a.uid for a in reveals]}")
    restored = db.get("ContactInfo", returning)
    print(f"  account back: {restored['firstName']} {restored['lastName']}")

    print("\n== Data decay: scrub at 2y of inactivity, hard-delete at 4y ==")
    db2 = generate_hotcrp(
        population=HotcrpPopulation(users=40, pc_members=6, papers=30, reviews=90),
        seed=23,
    )
    engine2 = Disguiser(db2, seed=5)
    for spec in all_disguises():
        engine2.register(spec)
    clock2 = SimClock(start=0.0)
    scheduler2 = PolicyScheduler(engine2, clock2)
    fixed = {2: 0.0, 3: 0.0}
    scheduler2.add(
        DecayPolicy(
            "review-decay",
            stages=(
                DecayStage(age=2 * YEAR, spec_name="HotCRP-GDPR+"),
                DecayStage(age=4 * YEAR, spec_name="HotCRP-GDPR"),
            ),
            activity=lambda _db: fixed,
        )
    )
    reviews_t0 = db2.count("PaperReview")
    clock2.advance(2.5 * YEAR)
    stage1 = scheduler2.tick()
    reviews_t1 = db2.count("PaperReview")
    print(f"  t=2.5y: {[(a.spec_name, a.uid) for a in stage1]}")
    print(f"    reviews: {reviews_t0} -> {reviews_t1} (kept, decorrelated)")
    clock2.advance(2 * YEAR)
    stage2 = scheduler2.tick()
    reviews_t2 = db2.count("PaperReview")
    print(f"  t=4.5y: {[(a.spec_name, a.uid) for a in stage2]}")
    print(f"    reviews: {reviews_t1} -> {reviews_t2} "
          f"(stage 2 composed over stage 1 and deleted them)")
    print(f"  invariants: {check_invariants(db2) or 'all hold'}")


if __name__ == "__main__":
    main()
