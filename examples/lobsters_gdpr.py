#!/usr/bin/env python3
"""Lobsters account deletion with "[deleted]"-style placeholders (paper §2).

Lobsters (like Reddit) keeps public contributions visible after account
deletion but reattributes them to placeholder users. This example runs the
Lobsters-GDPR disguise against a synthetic community, stores the reveal
functions in an *encrypted per-user vault* whose key is threshold-escrowed
(paper footnote 1), and then walks the user's return — including the
lost-key recovery path.

Run:  python examples/lobsters_gdpr.py
"""

from repro import Disguiser
from repro.apps.lobsters import (
    LobstersPopulation,
    check_invariants,
    deletion_assertions,
    generate_lobsters,
    lobsters_gdpr,
    user_footprint,
)
from repro.crypto.cipher import SecretKey
from repro.crypto.threshold import escrow_key
from repro.vault import EncryptedVault, MemoryVault

USER = 7


def main() -> None:
    db = generate_lobsters(
        population=LobstersPopulation(users=60, stories=150, comments=400), seed=99
    )

    # Deployment: per-user encrypted vault; the key is secret-shared 2-of-3
    # between the user, the site, and a trusted third party.
    vault = EncryptedVault(MemoryVault())
    user_key = SecretKey.generate()
    escrow = escrow_key(user_key)  # parties: user / app / third_party
    vault.register_owner(USER, key=user_key, escrow=escrow)

    engine = Disguiser(db, vault=vault, seed=12)
    engine.register(lobsters_gdpr())

    print("== 1. user7 deletes their account ==")
    footprint = {k: v for k, v in user_footprint(db, USER).items() if v}
    print(f"  footprint before: {footprint}")
    stories_before = db.count("stories")
    comments_before = db.count("comments")
    report = engine.apply(
        "Lobsters-GDPR", uid=USER,
        assertions=deletion_assertions(), check_integrity=True,
    )
    print(f"  {report.summary()}")
    print(
        f"  stories {db.count('stories')}/{stories_before} and comments "
        f"{db.count('comments')}/{comments_before} kept, reattributed"
    )
    ghost = db.select("users", "email IS NULL")[0]
    print(f"  e.g. placeholder: {ghost['username']!r}, deleted_at={ghost['deleted_at']}")
    print(f"  invariants: {check_invariants(db) or 'all hold'}")

    print("\n== 2. the vault is sealed ==")
    try:
        vault.entries_for(USER)
    except Exception as exc:
        print(f"  site cannot read the vault alone: {type(exc).__name__}: {exc}")

    print("\n== 3. user7 returns — but lost their key (footnote 1) ==")
    print("  the site and the third party each contribute their escrow share:")
    vault.unlock_via_escrow(USER, "app", "third_party")
    reveal = engine.reveal(report.disguise_id, check_integrity=True)
    print(f"  {reveal.summary()}")
    restored = db.get("users", USER)
    print(f"  account restored: {restored['username']!r} <{restored['email']}>")
    footprint_after = {k: v for k, v in user_footprint(db, USER).items() if v}
    print(f"  footprint after reveal: {footprint_after}")
    assert footprint_after == footprint
    print("  exact footprint restored. ✓")


if __name__ == "__main__":
    main()
