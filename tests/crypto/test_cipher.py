"""Unit tests for the authenticated stream cipher."""

import pytest

from repro.crypto.cipher import Ciphertext, SecretKey, decrypt, encrypt
from repro.errors import CryptoError


class TestSecretKey:
    def test_generate_length_and_uniqueness(self):
        k1 = SecretKey.generate()
        k2 = SecretKey.generate()
        assert len(k1.material) == 32
        assert k1.material != k2.material

    def test_bad_length_rejected(self):
        with pytest.raises(CryptoError):
            SecretKey(b"short")

    def test_passphrase_derivation_deterministic(self):
        k1 = SecretKey.from_passphrase("hunter2")
        k2 = SecretKey.from_passphrase("hunter2")
        k3 = SecretKey.from_passphrase("hunter3")
        assert k1 == k2
        assert k1 != k3

    def test_salt_changes_key(self):
        assert SecretKey.from_passphrase("p", b"a") != SecretKey.from_passphrase("p", b"b")

    def test_subkeys_differ(self):
        key = SecretKey.generate()
        assert key.enc_key != key.mac_key


class TestEncryptDecrypt:
    def test_round_trip(self):
        key = SecretKey.generate()
        for plaintext in (b"", b"x", b"hello world" * 100, bytes(range(256))):
            assert decrypt(key, encrypt(key, plaintext)) == plaintext

    def test_wrong_key_rejected(self):
        ciphertext = encrypt(SecretKey.generate(), b"secret")
        with pytest.raises(CryptoError):
            decrypt(SecretKey.generate(), ciphertext)

    def test_tampered_body_rejected(self):
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"secret data")
        body = bytearray(ciphertext.body)
        body[0] ^= 1
        tampered = Ciphertext(ciphertext.nonce, bytes(body), ciphertext.tag)
        with pytest.raises(CryptoError):
            decrypt(key, tampered)

    def test_tampered_nonce_rejected(self):
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"secret data")
        nonce = bytearray(ciphertext.nonce)
        nonce[0] ^= 1
        tampered = Ciphertext(bytes(nonce), ciphertext.body, ciphertext.tag)
        with pytest.raises(CryptoError):
            decrypt(key, tampered)

    def test_ciphertext_differs_from_plaintext(self):
        key = SecretKey.generate()
        plaintext = b"a" * 64
        assert encrypt(key, plaintext).body != plaintext

    def test_fresh_nonce_randomizes(self):
        key = SecretKey.generate()
        c1 = encrypt(key, b"same")
        c2 = encrypt(key, b"same")
        assert c1.body != c2.body or c1.nonce != c2.nonce

    def test_explicit_nonce_deterministic(self):
        key = SecretKey.generate()
        nonce = bytes(16)
        assert encrypt(key, b"x", nonce) == encrypt(key, b"x", nonce)

    def test_bad_nonce_length(self):
        with pytest.raises(CryptoError):
            encrypt(SecretKey.generate(), b"x", b"short")


class TestSerialization:
    def test_bytes_round_trip(self):
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"payload")
        blob = ciphertext.to_bytes()
        restored = Ciphertext.from_bytes(blob)
        assert decrypt(key, restored) == b"payload"

    def test_truncated_blob_rejected(self):
        with pytest.raises(CryptoError):
            Ciphertext.from_bytes(b"tiny")


class TestBigIntXorEquivalence:
    """The big-int XOR fast path must reproduce the original per-byte
    construction bit-for-bit: same keystream blocks, same ciphertext."""

    @staticmethod
    def _legacy_encrypt_body(key, plaintext, nonce):
        import hashlib

        out = bytearray()
        counter = 0
        while len(out) < len(plaintext):
            block = hashlib.sha256(
                key.enc_key + nonce + counter.to_bytes(8, "big")
            ).digest()
            out.extend(block)
            counter += 1
        stream = bytes(out[: len(plaintext)])
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def test_matches_legacy_construction(self):
        key = SecretKey.from_passphrase("equivalence")
        nonce = bytes(range(16))
        for plaintext in (
            b"",
            b"a",
            b"0123456789abcdef" * 2,  # exactly one SHA-256 block
            b"x" * 33,  # one byte past a block boundary
            bytes(range(256)) * 5,
            b"\x00" * 100,  # leading zeros must survive the int round trip
        ):
            assert (
                encrypt(key, plaintext, nonce).body
                == self._legacy_encrypt_body(key, plaintext, nonce)
            )

    def test_leading_zero_bytes_preserved(self):
        key = SecretKey.generate()
        plaintext = b"\x00" * 64
        ciphertext = encrypt(key, plaintext)
        assert len(ciphertext.body) == 64
        assert decrypt(key, ciphertext) == plaintext
