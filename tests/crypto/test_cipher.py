"""Unit tests for the authenticated stream cipher."""

import pytest

from repro.crypto.cipher import Ciphertext, SecretKey, decrypt, encrypt
from repro.errors import CryptoError


class TestSecretKey:
    def test_generate_length_and_uniqueness(self):
        k1 = SecretKey.generate()
        k2 = SecretKey.generate()
        assert len(k1.material) == 32
        assert k1.material != k2.material

    def test_bad_length_rejected(self):
        with pytest.raises(CryptoError):
            SecretKey(b"short")

    def test_passphrase_derivation_deterministic(self):
        k1 = SecretKey.from_passphrase("hunter2")
        k2 = SecretKey.from_passphrase("hunter2")
        k3 = SecretKey.from_passphrase("hunter3")
        assert k1 == k2
        assert k1 != k3

    def test_salt_changes_key(self):
        assert SecretKey.from_passphrase("p", b"a") != SecretKey.from_passphrase("p", b"b")

    def test_subkeys_differ(self):
        key = SecretKey.generate()
        assert key.enc_key != key.mac_key


class TestEncryptDecrypt:
    def test_round_trip(self):
        key = SecretKey.generate()
        for plaintext in (b"", b"x", b"hello world" * 100, bytes(range(256))):
            assert decrypt(key, encrypt(key, plaintext)) == plaintext

    def test_wrong_key_rejected(self):
        ciphertext = encrypt(SecretKey.generate(), b"secret")
        with pytest.raises(CryptoError):
            decrypt(SecretKey.generate(), ciphertext)

    def test_tampered_body_rejected(self):
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"secret data")
        body = bytearray(ciphertext.body)
        body[0] ^= 1
        tampered = Ciphertext(ciphertext.nonce, bytes(body), ciphertext.tag)
        with pytest.raises(CryptoError):
            decrypt(key, tampered)

    def test_tampered_nonce_rejected(self):
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"secret data")
        nonce = bytearray(ciphertext.nonce)
        nonce[0] ^= 1
        tampered = Ciphertext(bytes(nonce), ciphertext.body, ciphertext.tag)
        with pytest.raises(CryptoError):
            decrypt(key, tampered)

    def test_ciphertext_differs_from_plaintext(self):
        key = SecretKey.generate()
        plaintext = b"a" * 64
        assert encrypt(key, plaintext).body != plaintext

    def test_fresh_nonce_randomizes(self):
        key = SecretKey.generate()
        c1 = encrypt(key, b"same")
        c2 = encrypt(key, b"same")
        assert c1.body != c2.body or c1.nonce != c2.nonce

    def test_explicit_nonce_deterministic(self):
        key = SecretKey.generate()
        nonce = bytes(16)
        assert encrypt(key, b"x", nonce) == encrypt(key, b"x", nonce)

    def test_bad_nonce_length(self):
        with pytest.raises(CryptoError):
            encrypt(SecretKey.generate(), b"x", b"short")


class TestSerialization:
    def test_bytes_round_trip(self):
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"payload")
        blob = ciphertext.to_bytes()
        restored = Ciphertext.from_bytes(blob)
        assert decrypt(key, restored) == b"payload"

    def test_truncated_blob_rejected(self):
        with pytest.raises(CryptoError):
            Ciphertext.from_bytes(b"tiny")


class TestBigIntXorEquivalence:
    """The big-int XOR fast path must reproduce the original per-byte
    construction bit-for-bit: same keystream blocks, same ciphertext."""

    @staticmethod
    def _legacy_encrypt_body(key, plaintext, nonce):
        import hashlib

        out = bytearray()
        counter = 0
        while len(out) < len(plaintext):
            block = hashlib.sha256(
                key.enc_key + nonce + counter.to_bytes(8, "big")
            ).digest()
            out.extend(block)
            counter += 1
        stream = bytes(out[: len(plaintext)])
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def test_matches_legacy_construction(self):
        key = SecretKey.from_passphrase("equivalence")
        nonce = bytes(range(16))
        for plaintext in (
            b"",
            b"a",
            b"0123456789abcdef" * 2,  # exactly one SHA-256 block
            b"x" * 33,  # one byte past a block boundary
            bytes(range(256)) * 5,
            b"\x00" * 100,  # leading zeros must survive the int round trip
        ):
            assert (
                encrypt(key, plaintext, nonce).body
                == self._legacy_encrypt_body(key, plaintext, nonce)
            )

    def test_leading_zero_bytes_preserved(self):
        key = SecretKey.generate()
        plaintext = b"\x00" * 64
        ciphertext = encrypt(key, plaintext)
        assert len(ciphertext.body) == 64
        assert decrypt(key, ciphertext) == plaintext


class TestEncryptMany:
    def test_round_trip_each_entry_independently(self):
        from repro.crypto.cipher import encrypt_many

        key = SecretKey.generate()
        plaintexts = [b"", b"x", b"hello" * 50, bytes(range(256))]
        ciphertexts = encrypt_many(key, plaintexts)
        assert [decrypt(key, c) for c in ciphertexts] == plaintexts

    def test_nonces_are_distinct_within_batch(self):
        from repro.crypto.cipher import encrypt_many

        key = SecretKey.generate()
        ciphertexts = encrypt_many(key, [b"same"] * 32)
        nonces = {c.nonce for c in ciphertexts}
        assert len(nonces) == 32
        assert len({c.body for c in ciphertexts}) == 32

    def test_matches_single_entry_encrypt(self):
        from repro.crypto.cipher import _SEED_LEN, encrypt_many

        key = SecretKey.generate()
        seed = bytes(range(_SEED_LEN))
        plaintexts = [b"alpha", b"beta" * 20, b""]
        batch = encrypt_many(key, plaintexts, seed=seed)
        for ciphertext, plaintext in zip(batch, plaintexts):
            solo = encrypt(key, plaintext, nonce=ciphertext.nonce)
            assert solo.body == ciphertext.body
            assert solo.tag == ciphertext.tag

    def test_tampering_detected_per_entry(self):
        from repro.crypto.cipher import Ciphertext, encrypt_many

        key = SecretKey.generate()
        good, victim = encrypt_many(key, [b"good entry", b"victim entry"])
        forged = Ciphertext(
            victim.nonce, bytes([victim.body[0] ^ 1]) + victim.body[1:], victim.tag
        )
        with pytest.raises(CryptoError):
            decrypt(key, forged)
        assert decrypt(key, good) == b"good entry"

    def test_empty_batch_and_bad_seed(self):
        from repro.crypto.cipher import encrypt_many

        key = SecretKey.generate()
        assert encrypt_many(key, []) == []
        with pytest.raises(CryptoError):
            encrypt_many(key, [b"x"], seed=b"short")


class TestSubkeyCaching:
    def test_subkeys_derived_once_not_per_access(self, monkeypatch):
        """encrypt of N entries must perform O(1) subkey derivations: the
        enc/mac subkeys are computed in __post_init__, not per property hit."""
        import repro.crypto.cipher as cipher_mod

        calls = []
        original = cipher_mod.SecretKey._subkey

        def counting(self, label):
            calls.append(label)
            return original(self, label)

        monkeypatch.setattr(cipher_mod.SecretKey, "_subkey", counting)
        key = cipher_mod.SecretKey.generate()
        assert len(calls) == 2  # enc + mac, at construction
        for i in range(50):
            encrypt(key, f"entry {i}".encode())
        assert len(calls) == 2, "per-access derivation crept back in"

    def test_frozen_contract_still_holds(self):
        key = SecretKey.generate()
        with pytest.raises(Exception):
            key.material = b"y" * 32
