"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import SecretKey, decrypt, encrypt
from repro.crypto.shamir import recover_secret, split_secret

_KEY = SecretKey.from_passphrase("test-fixture-key")


@settings(max_examples=60)
@given(plaintext=st.binary(max_size=2048))
def test_encrypt_decrypt_round_trip(plaintext):
    assert decrypt(_KEY, encrypt(_KEY, plaintext)) == plaintext


@settings(max_examples=60)
@given(plaintext=st.binary(min_size=16, max_size=256))
def test_ciphertext_never_equals_plaintext(plaintext):
    # A PRF keystream of 16+ zero bytes has probability 2^-128; for shorter
    # inputs a coincidental identity is actually plausible, so the bound
    # starts at 16 bytes.
    assert encrypt(_KEY, plaintext).body != plaintext


@settings(max_examples=30)
@given(
    secret=st.binary(min_size=32, max_size=32),
    threshold=st.integers(1, 5),
    extra=st.integers(0, 3),
)
def test_shamir_round_trip_any_threshold(secret, threshold, extra):
    shares = split_secret(secret, threshold, threshold + extra)
    assert recover_secret(shares[:threshold]) == secret
    assert recover_secret(shares) == secret


@settings(max_examples=30)
@given(secret=st.binary(min_size=32, max_size=32), data=st.data())
def test_shamir_any_subset_of_threshold_size(secret, data):
    shares = split_secret(secret, 3, 6)
    subset = data.draw(st.lists(st.sampled_from(shares), min_size=3, max_size=6, unique=True))
    assert recover_secret(subset) == secret
