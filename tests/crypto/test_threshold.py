"""Unit tests for threshold key escrow (paper footnote 1)."""

import pytest

from repro.crypto.cipher import SecretKey, decrypt, encrypt
from repro.crypto.threshold import DEFAULT_PARTIES, escrow_key
from repro.errors import CryptoError


class TestEscrow:
    def test_two_of_three_recovery(self):
        key = SecretKey.generate()
        escrowed = escrow_key(key)
        assert set(escrowed.parties()) == set(DEFAULT_PARTIES)
        assert escrowed.recover("user", "app") == key
        assert escrowed.recover("user", "third_party") == key
        assert escrowed.recover("app", "third_party") == key

    def test_single_party_insufficient(self):
        escrowed = escrow_key(SecretKey.generate())
        with pytest.raises(CryptoError):
            escrowed.recover("user")
        with pytest.raises(CryptoError):
            escrowed.recover("app")

    def test_duplicate_consent_does_not_count_twice(self):
        escrowed = escrow_key(SecretKey.generate())
        with pytest.raises(CryptoError):
            escrowed.recover("user", "user")

    def test_unknown_party_rejected(self):
        escrowed = escrow_key(SecretKey.generate())
        with pytest.raises(CryptoError):
            escrowed.recover("user", "eve")

    def test_custom_parties_and_threshold(self):
        key = SecretKey.generate()
        escrowed = escrow_key(key, parties=("a", "b", "c", "d"), threshold=3)
        assert escrowed.recover("a", "c", "d") == key
        with pytest.raises(CryptoError):
            escrowed.recover("a", "b")

    def test_duplicate_party_names_rejected(self):
        with pytest.raises(CryptoError):
            escrow_key(SecretKey.generate(), parties=("a", "a", "b"))

    def test_lost_key_story(self):
        # The paper's motivation: the user loses their key; the app and the
        # trusted third party together recover it and decrypt the vault.
        key = SecretKey.generate()
        ciphertext = encrypt(key, b"vault contents")
        escrowed = escrow_key(key)
        del key  # "lost"
        recovered = escrowed.recover("app", "third_party")
        assert decrypt(recovered, ciphertext) == b"vault contents"
