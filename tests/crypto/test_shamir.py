"""Unit tests for Shamir secret sharing."""

import os

import pytest

from repro.crypto.shamir import PRIME, Share, recover_secret, split_secret
from repro.errors import CryptoError


class TestSplitRecover:
    def test_exact_threshold(self):
        secret = os.urandom(32)
        shares = split_secret(secret, threshold=2, shares=3)
        assert len(shares) == 3
        assert recover_secret(shares[:2]) == secret
        assert recover_secret(shares[1:]) == secret
        assert recover_secret([shares[0], shares[2]]) == secret

    def test_all_shares_work(self):
        secret = os.urandom(32)
        shares = split_secret(secret, threshold=3, shares=5)
        assert recover_secret(shares) == secret

    def test_one_of_one(self):
        secret = os.urandom(32)
        shares = split_secret(secret, threshold=1, shares=1)
        assert recover_secret(shares) == secret

    def test_below_threshold_gives_garbage(self):
        secret = os.urandom(32)
        shares = split_secret(secret, threshold=3, shares=5)
        # With fewer than threshold shares, interpolation at 0 yields a
        # field element unrelated to the secret (overwhelmingly).
        try:
            wrong = recover_secret(shares[:2])
            assert wrong != secret
        except CryptoError:
            pass  # value too large for 32 bytes — also acceptable failure

    def test_duplicate_shares_rejected(self):
        shares = split_secret(os.urandom(32), 2, 3)
        with pytest.raises(CryptoError):
            recover_secret([shares[0], shares[0]])

    def test_empty_shares_rejected(self):
        with pytest.raises(CryptoError):
            recover_secret([])

    def test_bad_parameters(self):
        with pytest.raises(CryptoError):
            split_secret(b"x" * 32, threshold=0, shares=3)
        with pytest.raises(CryptoError):
            split_secret(b"x" * 32, threshold=4, shares=3)
        with pytest.raises(CryptoError):
            split_secret(b"x" * 32, threshold=2, shares=2000)

    def test_secret_too_large_rejected(self):
        too_big = PRIME.to_bytes(66, "big")
        with pytest.raises(CryptoError):
            split_secret(too_big, 2, 3)

    def test_zero_secret(self):
        secret = bytes(32)
        shares = split_secret(secret, 2, 3)
        assert recover_secret(shares[:2]) == secret


class TestBadShares:
    def test_tampered_share_never_recovers_the_secret(self):
        secret = os.urandom(32)
        shares = split_secret(secret, 2, 3)
        forged = Share(x=shares[0].x, y=(shares[0].y + 1) % PRIME)
        try:
            assert recover_secret([forged, shares[1]]) != secret
        except CryptoError:
            pass  # off-field reconstruction — also a safe rejection

    def test_share_from_wrong_split_never_recovers_the_secret(self):
        secret = os.urandom(32)
        good = split_secret(secret, 2, 3)
        other = split_secret(os.urandom(32), 2, 3)
        try:
            assert recover_secret([good[0], other[1]]) != secret
        except CryptoError:
            pass


class TestShareSerialization:
    def test_round_trip(self):
        shares = split_secret(os.urandom(32), 2, 3)
        for share in shares:
            assert Share.from_bytes(share.to_bytes()) == share

    def test_malformed_rejected(self):
        with pytest.raises(CryptoError):
            Share.from_bytes(b"nope")
