"""Case-study tests: HotCRP schema, generator, and the three disguises."""

import pytest

from repro import Disguiser, find_interactions, redundant_decorrelations, validate_spec
from repro.apps.hotcrp import (
    HotcrpPopulation,
    check_invariants,
    generate_hotcrp,
    hotcrp_confanon,
    hotcrp_gdpr,
    hotcrp_gdpr_plus,
    hotcrp_schema,
    schema_loc,
    scrub_assertions,
    user_activity,
    user_footprint,
)

PC_MEMBER = 3  # a PC member in the mini fixture (reviews, prefs, comments)


class TestSchema:
    def test_25_object_types(self):
        # Figure 4: HotCRP has 25 object types.
        assert hotcrp_schema().object_type_count() == 25

    def test_schema_validates(self):
        hotcrp_schema().validate()

    def test_contactinfo_referenced_widely(self):
        refs = hotcrp_schema().referencing("ContactInfo")
        referencing_tables = {t.name for t, _ in refs}
        assert {"PaperReview", "PaperConflict", "PaperComment", "ActionLog"} <= referencing_tables
        assert len(refs) >= 15  # many FKs -> tracing burden the paper describes

    def test_schema_loc_positive(self):
        assert schema_loc() > 100


class TestGenerator:
    def test_paper_population_at_scale_1(self):
        population = HotcrpPopulation.at_scale(1.0)
        assert population.users == 430
        assert population.pc_members == 30
        assert population.papers == 450
        assert population.reviews == 1400

    def test_generated_counts_match(self, mini_hotcrp):
        db, _ = mini_hotcrp
        assert db.count("ContactInfo") == 40
        assert db.count("Paper") == 30
        assert db.count("PaperReview") == 90

    def test_deterministic(self):
        a = generate_hotcrp(population=HotcrpPopulation(20, 4, 10, 30), seed=9)
        b = generate_hotcrp(population=HotcrpPopulation(20, 4, 10, 30), seed=9)
        assert sorted(map(str, a.table("PaperReview").rows())) == sorted(
            map(str, b.table("PaperReview").rows())
        )

    def test_integrity_and_invariants(self, mini_hotcrp):
        db, _ = mini_hotcrp
        assert db.check_integrity() == []
        assert check_invariants(db) == []

    def test_pc_members_flagged(self, mini_hotcrp):
        db, _ = mini_hotcrp
        assert db.count("ContactInfo", "roles = 1") == 6

    def test_activity_signal(self, mini_hotcrp):
        db, _ = mini_hotcrp
        activity = user_activity(db)
        assert len(activity) == 40
        assert all(t >= 0 for t in activity.values())


class TestSpecs:
    def test_specs_validate_against_schema(self):
        schema = hotcrp_schema()
        for spec in (hotcrp_gdpr(), hotcrp_gdpr_plus(), hotcrp_confanon()):
            validate_spec(spec, schema)  # hard errors raise

    def test_gdpr_plus_decorrelates_reviews(self):
        from repro.spec.transform import Decorrelate

        spec = hotcrp_gdpr_plus()
        review = spec.table_disguise("PaperReview")
        assert any(isinstance(t, Decorrelate) for t in review.transformations)

    def test_gdpr_removes_reviews(self):
        from repro.spec.transform import Remove

        spec = hotcrp_gdpr()
        review = spec.table_disguise("PaperReview")
        assert any(isinstance(t, Remove) for t in review.transformations)

    def test_confanon_is_global(self):
        assert not hotcrp_confanon().is_user_disguise
        assert hotcrp_gdpr().is_user_disguise
        assert hotcrp_gdpr_plus().is_user_disguise

    def test_confanon_conflicts_with_gdpr_plus(self):
        interactions = find_interactions(hotcrp_confanon(), hotcrp_gdpr_plus())
        assert interactions  # they touch the same data (§4.2)
        redundant = redundant_decorrelations(hotcrp_confanon(), hotcrp_gdpr_plus())
        assert {r.table for r in redundant} >= {"PaperReview", "PaperComment"}


class TestGdprPlus:
    def test_scrubbing_meets_its_goals(self, mini_hotcrp):
        db, engine = mini_hotcrp
        reviews_before = db.count("PaperReview")
        report = engine.apply(
            "HotCRP-GDPR+", uid=PC_MEMBER,
            assertions=scrub_assertions(), check_integrity=True,
        )
        # reviews retained, just decorrelated (§3)
        assert db.count("PaperReview") == reviews_before
        assert db.count("PaperReview", "contactId = $UID", {"UID": PC_MEMBER}) == 0
        assert report.rows_decorrelated > 0
        assert check_invariants(db) == []

    def test_review_text_preserved(self, mini_hotcrp):
        db, engine = mini_hotcrp
        texts_before = sorted(
            r["reviewText"] for r in db.select("PaperReview")
        )
        engine.apply("HotCRP-GDPR+", uid=PC_MEMBER)
        texts_after = sorted(r["reviewText"] for r in db.select("PaperReview"))
        assert texts_after == texts_before

    def test_each_review_gets_distinct_placeholder(self, mini_hotcrp):
        db, engine = mini_hotcrp
        my_reviews = [
            r["reviewId"]
            for r in db.select("PaperReview", "contactId = $UID", {"UID": PC_MEMBER})
        ]
        engine.apply("HotCRP-GDPR+", uid=PC_MEMBER)
        owners = [
            db.get("PaperReview", rid)["contactId"] for rid in my_reviews
        ]
        assert len(set(owners)) == len(owners)  # Figure 2: one per review
        for owner in owners:
            placeholder = db.get("ContactInfo", owner)
            assert placeholder["disabled"] is True
            assert placeholder["email"] is None

    def test_footprint_empty_after_scrub(self, mini_hotcrp):
        db, engine = mini_hotcrp
        engine.apply("HotCRP-GDPR+", uid=PC_MEMBER)
        footprint = user_footprint(db, PC_MEMBER)
        assert all(count == 0 for count in footprint.values()), footprint

    def test_reversal_restores_everything(self, mini_hotcrp):
        db, engine = mini_hotcrp
        before = {t: db.count(t) for t in db.table_names if not t.startswith("_")}
        footprint_before = user_footprint(db, PC_MEMBER)
        report = engine.apply("HotCRP-GDPR+", uid=PC_MEMBER)
        engine.reveal(report.disguise_id, check_integrity=True)
        assert {t: db.count(t) for t in db.table_names if not t.startswith("_")} == before
        assert user_footprint(db, PC_MEMBER) == footprint_before
        assert check_invariants(db) == []


class TestGdpr:
    def test_deletes_reviews_outright(self, mini_hotcrp):
        db, engine = mini_hotcrp
        mine = db.count("PaperReview", "contactId = $UID", {"UID": PC_MEMBER})
        assert mine > 0
        report = engine.apply("HotCRP-GDPR", uid=PC_MEMBER, check_integrity=True)
        assert db.count("PaperReview", "contactId = $UID", {"UID": PC_MEMBER}) == 0
        assert report.rows_decorrelated == 0
        assert report.rows_removed >= mine
        assert check_invariants(db) == []

    def test_reversible_round_trip(self, mini_hotcrp):
        db, engine = mini_hotcrp
        footprint_before = user_footprint(db, PC_MEMBER)
        report = engine.apply("HotCRP-GDPR", uid=PC_MEMBER)
        engine.reveal(report.disguise_id, check_integrity=True)
        assert user_footprint(db, PC_MEMBER) == footprint_before


class TestConfAnon:
    def test_anonymizes_all_users(self, mini_hotcrp):
        db, engine = mini_hotcrp
        engine.apply("HotCRP-ConfAnon", check_integrity=True)
        # every original user's name is scrubbed
        for contact in db.select("ContactInfo", "contactId <= 40"):
            assert contact["firstName"] == "[redacted]"
            assert contact["email"].endswith("@anon.invalid")
        # no review points at an original user
        assert db.count("PaperReview", "contactId <= 40") == 0
        assert check_invariants(db) == []

    def test_touches_far_more_than_gdpr_plus(self, mini_hotcrp):
        db, engine = mini_hotcrp
        anon = engine.apply("HotCRP-ConfAnon")
        db2, engine2 = generate_hotcrp(
            population=HotcrpPopulation(40, 6, 30, 90), seed=3
        ), None
        assert anon.rows_touched > 90  # > all reviews

    def test_reversal_with_accessible_vault(self, mini_hotcrp):
        db, engine = mini_hotcrp
        names_before = sorted(
            c["firstName"] for c in db.select("ContactInfo")
        )
        report = engine.apply("HotCRP-ConfAnon")
        reveal = engine.reveal(report.disguise_id, check_integrity=True)
        assert sorted(c["firstName"] for c in db.select("ContactInfo")) == names_before
        assert reveal.fks_restored > 0
