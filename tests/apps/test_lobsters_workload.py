"""Lobsters application functionality across the GDPR disguise (paper §2)."""

import pytest

from repro import Disguiser
from repro.apps.lobsters import (
    LobstersPopulation,
    generate_lobsters,
    lobsters_gdpr,
)
from repro.apps.lobsters.workload import (
    front_page,
    login,
    post_comment,
    story_thread,
    user_profile,
)


@pytest.fixture
def site():
    db = generate_lobsters(
        population=LobstersPopulation(users=20, stories=40, comments=100), seed=15
    )
    engine = Disguiser(db, seed=1)
    engine.register(lobsters_gdpr())
    return db, engine


def creds(db, uid):
    row = db.get("users", uid)
    return row["username"], row["password_digest"]


class TestBaseline:
    def test_login(self, site):
        db, _ = site
        username, digest = creds(db, 4)
        assert login(db, username, digest)["id"] == 4

    def test_front_page_sorted_by_votes(self, site):
        db, _ = site
        page = front_page(db, limit=10)
        votes = [s["upvotes"] for s in page]
        assert votes == sorted(votes, reverse=True)
        assert all(s["username"] for s in page)

    def test_profile(self, site):
        db, _ = site
        profile = user_profile(db, 4)
        assert profile["username"] == "user4"
        assert profile["comment_count"] >= 0


class TestAfterDeletion:
    @pytest.fixture
    def deleted(self, site):
        db, engine = site
        username, digest = creds(db, 4)
        report = engine.apply("Lobsters-GDPR", uid=4)
        return db, engine, report, (username, digest)

    def test_cannot_login(self, deleted):
        db, _, _, (username, digest) = deleted
        assert login(db, username, digest) is None

    def test_profile_gone(self, deleted):
        db, _, _, _ = deleted
        assert user_profile(db, 4) is None

    def test_front_page_shows_tombstone_authors(self, deleted):
        db, _, _, _ = deleted
        page = front_page(db, limit=100)
        assert len(page) == 40  # all stories survive
        ghosts = [s for s in page if s["username"].startswith("deleted-user-")]
        # user 4 had stories (seeded population guarantees some)
        original = [s for s in page if s["username"] == "user4"]
        assert original == []
        assert ghosts or db.count("stories") == 40

    def test_threads_intact_with_tombstones(self, deleted):
        db, _, _, _ = deleted
        # any story with comments still renders its thread
        story_with_comments = db.select("comments")[0]["story_id"]
        thread = story_thread(db, story_with_comments)
        assert thread
        for comment in thread:
            assert comment["username"]

    def test_app_writes_continue(self, deleted):
        db, _, _, _ = deleted
        post_comment(db, 5, 1, "still here")
        assert db.check_integrity() == []

    def test_everything_back_after_reveal(self, deleted):
        db, engine, report, (username, digest) = deleted
        engine.reveal(report.disguise_id, check_integrity=True)
        assert login(db, username, digest)["id"] == 4
        profile = user_profile(db, 4)
        assert profile is not None and profile["username"] == "user4"
