"""Case-study tests: Lobsters schema, generator, and the GDPR disguise."""

import pytest

from repro import Disguiser, validate_spec
from repro.apps.lobsters import (
    LobstersPopulation,
    check_invariants,
    deletion_assertions,
    generate_lobsters,
    lobsters_gdpr,
    lobsters_schema,
    schema_loc,
    user_activity,
    user_footprint,
)


@pytest.fixture
def mini_lobsters():
    db = generate_lobsters(
        population=LobstersPopulation(users=30, stories=60, comments=150), seed=5
    )
    engine = Disguiser(db, seed=2)
    engine.register(lobsters_gdpr())
    return db, engine


def busiest_user(db):
    """A user with stories, comments, and votes (interesting to delete)."""
    best, best_score = None, -1
    for uid in range(1, 31):
        footprint = user_footprint(db, uid)
        score = min(footprint["stories"], footprint["comments"], footprint["votes"])
        if score > best_score:
            best, best_score = uid, score
    return best


class TestSchema:
    def test_19_object_types(self):
        # Figure 4: Lobsters has 19 object types.
        assert lobsters_schema().object_type_count() == 19

    def test_schema_validates(self):
        lobsters_schema().validate()

    def test_self_referencing_tables(self):
        schema = lobsters_schema()
        users_fk = schema.table("users").foreign_key_for("invited_by_user_id")
        assert users_fk.parent_table == "users"
        comments_fk = schema.table("comments").foreign_key_for("parent_comment_id")
        assert comments_fk.parent_table == "comments"

    def test_schema_loc_positive(self):
        assert schema_loc() > 100


class TestGenerator:
    def test_counts(self, mini_lobsters):
        db, _ = mini_lobsters
        assert db.count("users") == 30
        assert db.count("stories") == 60
        assert db.count("comments") == 150

    def test_integrity_and_invariants(self, mini_lobsters):
        db, _ = mini_lobsters
        assert db.check_integrity() == []
        assert check_invariants(db) == []

    def test_comment_threads_reference_earlier_comments(self, mini_lobsters):
        db, _ = mini_lobsters
        threaded = db.select("comments", "parent_comment_id IS NOT NULL")
        assert threaded
        assert all(c["parent_comment_id"] < c["id"] for c in threaded)

    def test_deterministic(self):
        population = LobstersPopulation(10, 20, 40)
        a = generate_lobsters(population=population, seed=1)
        b = generate_lobsters(population=population, seed=1)
        assert sorted(map(str, a.table("comments").rows())) == sorted(
            map(str, b.table("comments").rows())
        )

    def test_activity_signal(self, mini_lobsters):
        db, _ = mini_lobsters
        assert len(user_activity(db)) == 30


class TestGdprDisguise:
    def test_spec_validates(self):
        validate_spec(lobsters_gdpr(), lobsters_schema())

    def test_deletion_keeps_contributions(self, mini_lobsters):
        db, engine = mini_lobsters
        uid = busiest_user(db)
        stories_before = db.count("stories")
        comments_before = db.count("comments")
        report = engine.apply(
            "Lobsters-GDPR", uid=uid,
            assertions=deletion_assertions(), check_integrity=True,
        )
        # public contributions survive, reattributed ("[deleted]" policy, §2)
        assert db.count("stories") == stories_before
        assert db.count("comments") == comments_before
        assert db.count("stories", "user_id = $UID", {"UID": uid}) == 0
        assert check_invariants(db) == []

    def test_placeholders_are_tombstoned(self, mini_lobsters):
        db, engine = mini_lobsters
        uid = busiest_user(db)
        engine.apply("Lobsters-GDPR", uid=uid)
        placeholders = db.select("users", "email IS NULL")
        assert placeholders
        for placeholder in placeholders:
            assert placeholder["deleted_at"] is not None
            assert placeholder["username"].startswith("deleted-user-")

    def test_received_messages_removed_authored_decorrelated(self, mini_lobsters):
        db, engine = mini_lobsters
        uid = busiest_user(db)
        authored = db.count("messages", "author_user_id = $UID", {"UID": uid})
        engine.apply("Lobsters-GDPR", uid=uid)
        assert db.count("messages", "recipient_user_id = $UID", {"UID": uid}) == 0
        assert db.count("messages", "author_user_id = $UID", {"UID": uid}) == 0

    def test_invitation_tree_survives_with_null_inviter(self, mini_lobsters):
        db, engine = mini_lobsters
        uid = busiest_user(db)
        invitees = db.count("users", "invited_by_user_id = $UID", {"UID": uid})
        engine.apply("Lobsters-GDPR", uid=uid)
        # SET NULL action, vaulted by the engine
        assert db.count("users", "invited_by_user_id = $UID", {"UID": uid}) == 0
        assert db.count("users") >= 30 - 1  # invitees still exist

    def test_footprint_empty_after_deletion(self, mini_lobsters):
        db, engine = mini_lobsters
        uid = busiest_user(db)
        engine.apply("Lobsters-GDPR", uid=uid)
        footprint = user_footprint(db, uid)
        assert all(v == 0 for v in footprint.values()), footprint

    def test_reversal_restores_footprint(self, mini_lobsters):
        db, engine = mini_lobsters
        uid = busiest_user(db)
        footprint_before = user_footprint(db, uid)
        counts_before = {t: db.count(t) for t in db.table_names if not t.startswith("_")}
        report = engine.apply("Lobsters-GDPR", uid=uid)
        engine.reveal(report.disguise_id, check_integrity=True)
        assert user_footprint(db, uid) == footprint_before
        assert {
            t: db.count(t) for t in db.table_names if not t.startswith("_")
        } == counts_before
        assert check_invariants(db) == []

    def test_two_users_sequential(self, mini_lobsters):
        db, engine = mini_lobsters
        r1 = engine.apply("Lobsters-GDPR", uid=1, check_integrity=True)
        r2 = engine.apply("Lobsters-GDPR", uid=2, check_integrity=True)
        assert check_invariants(db) == []
        engine.reveal(r1.disguise_id, check_integrity=True)
        assert db.get("users", 1) is not None
        assert db.get("users", 2) is None
        assert check_invariants(db) == []
