"""Application functionality across disguises (paper §2).

"Modifying or deleting data must not compromise application functionality"
— these tests drive HotCRP's application operations before and after each
disguise.
"""

import pytest

from repro.apps.hotcrp.workload import (
    front_page,
    login,
    paper_discussion,
    reviewer_dashboard,
    submit_review,
)

SUBJECT = 3  # PC member in the mini fixture


def credentials(db, uid):
    row = db.get("ContactInfo", uid)
    return row["email"], row["password"]


class TestBaseline:
    def test_login_works(self, mini_hotcrp):
        db, _ = mini_hotcrp
        email, password = credentials(db, SUBJECT)
        session = login(db, email, password)
        assert session is not None and session["contactId"] == SUBJECT

    def test_front_page_lists_papers(self, mini_hotcrp):
        db, _ = mini_hotcrp
        page = front_page(db)
        assert len(page) == 30
        assert all("title" in p and p["reviews"] >= 0 for p in page)

    def test_dashboard_shows_reviews(self, mini_hotcrp):
        db, _ = mini_hotcrp
        dashboard = reviewer_dashboard(db, SUBJECT)
        assert dashboard["reviews"]
        assert dashboard["preferences"]

    def test_submit_review(self, mini_hotcrp):
        db, _ = mini_hotcrp
        before = db.count("PaperReview")
        submit_review(db, SUBJECT, 1, merit=4, text="Strong accept.")
        assert db.count("PaperReview") == before + 1


class TestAfterUserScrub:
    @pytest.fixture
    def scrubbed(self, mini_hotcrp):
        db, engine = mini_hotcrp
        email, password = credentials(db, SUBJECT)
        report = engine.apply("HotCRP-GDPR+", uid=SUBJECT)
        return db, engine, report, (email, password)

    def test_scrubbed_user_cannot_login(self, scrubbed):
        db, _, _, (email, password) = scrubbed
        assert login(db, email, password) is None

    def test_placeholders_cannot_login(self, scrubbed):
        db, _, _, _ = scrubbed
        for placeholder in db.select("ContactInfo", "disabled = TRUE"):
            assert placeholder["password"] is None  # nothing to log in with

    def test_front_page_unchanged(self, scrubbed):
        db, _, _, _ = scrubbed
        page = front_page(db)
        assert len(page) == 30
        assert sum(p["reviews"] for p in page) == db.count("PaperReview")

    def test_other_users_dashboards_intact(self, scrubbed):
        db, _, _, _ = scrubbed
        other = reviewer_dashboard(db, SUBJECT + 1)
        assert other["reviews"]

    def test_scrubbed_dashboard_empty(self, scrubbed):
        db, _, _, _ = scrubbed
        dashboard = reviewer_dashboard(db, SUBJECT)
        assert dashboard == {"reviews": [], "preferences": []}

    def test_discussion_shows_placeholder_names(self, scrubbed):
        db, _, _, _ = scrubbed
        # find a paper the subject commented on before the scrub
        touched = [
            c for c in db.select("PaperComment")
        ]
        assert touched  # comments survive
        discussion = paper_discussion(db, touched[0]["paperId"])
        assert discussion
        assert all(row["firstName"] for row in discussion)

    def test_login_restored_after_reveal(self, scrubbed):
        db, engine, report, (email, password) = scrubbed
        engine.reveal(report.disguise_id)
        session = login(db, email, password)
        assert session is not None and session["contactId"] == SUBJECT


class TestAfterConfAnon:
    def test_nobody_can_login_with_old_email(self, mini_hotcrp):
        db, engine = mini_hotcrp
        email, password = credentials(db, SUBJECT)
        engine.apply("HotCRP-ConfAnon")
        # the email was anonymized; old credentials fail
        assert login(db, email, password) is None

    def test_front_page_and_reviews_survive(self, mini_hotcrp):
        db, engine = mini_hotcrp
        reviews_before = db.count("PaperReview")
        engine.apply("HotCRP-ConfAnon")
        page = front_page(db)
        assert len(page) == 30
        assert sum(p["reviews"] for p in page) == reviews_before

    def test_app_writes_still_work_after_disguises(self, mini_hotcrp):
        db, engine = mini_hotcrp
        engine.apply("HotCRP-GDPR+", uid=SUBJECT)
        engine.apply("HotCRP-ConfAnon")
        submit_review(db, SUBJECT + 1, 2, merit=3, text="Fine.")
        assert db.check_integrity() == []
