"""Composition scenarios on the Lobsters case study.

The paper's composition discussion uses HotCRP; these tests replay the
same patterns on the second application with a site-wide anonymization
disguise defined here (the equivalent of ConfAnon for a news aggregator).
"""

import pytest

from repro import (
    Decorrelate,
    Default,
    Disguiser,
    DisguiseSpec,
    Modify,
    Sequence,
    TableDisguise,
    named_modifier,
)
from repro.apps.lobsters import (
    LobstersPopulation,
    check_invariants,
    generate_lobsters,
    lobsters_gdpr,
    user_footprint,
)


def site_anon_spec() -> DisguiseSpec:
    """Site-wide anonymization: scrub usernames, decorrelate all stories
    and comments from their authors."""
    null_fn, null_label = named_modifier("null")
    redact, redact_label = named_modifier("redact")
    return DisguiseSpec(
        "Lobsters-SiteAnon",
        tables=[
            TableDisguise(
                "users",
                owner_column="id",
                generate_placeholder={
                    "username": Sequence("anon-"),
                    "email": Default(None),
                    "password_digest": Default(None),
                    "about": Default(None),
                    "karma": Default(0),
                    "deleted_at": Default(0.0),
                },
                transformations=[
                    Modify("TRUE", column="about", fn=redact, label=redact_label),
                    Modify("TRUE", column="invited_by_user_id", fn=null_fn, label=null_label),
                ],
            ),
            TableDisguise(
                "stories",
                owner_column="user_id",
                transformations=[Decorrelate("TRUE", foreign_key="user_id")],
            ),
            TableDisguise(
                "comments",
                owner_column="user_id",
                transformations=[Decorrelate("TRUE", foreign_key="user_id")],
            ),
        ],
    )


@pytest.fixture
def site():
    db = generate_lobsters(
        population=LobstersPopulation(users=25, stories=50, comments=120), seed=8
    )
    engine = Disguiser(db, seed=13)
    engine.register(lobsters_gdpr())
    engine.register(site_anon_spec())
    return db, engine


class TestComposition:
    def test_gdpr_after_site_anon(self, site):
        db, engine = site
        engine.apply("Lobsters-SiteAnon", check_integrity=True)
        report = engine.apply("Lobsters-GDPR", uid=5, optimize=False)
        assert report.recorrelated > 0
        assert db.get("users", 5) is None
        assert all(v == 0 for v in user_footprint(db, 5).values())
        assert check_invariants(db) == []

    def test_optimizer_on_lobsters(self, site):
        db, engine = site
        engine.apply("Lobsters-SiteAnon")
        report = engine.apply("Lobsters-GDPR", uid=5, optimize=True)
        assert report.redundant_skipped > 0  # stories/comments already decorrelated
        assert db.get("users", 5) is None
        assert check_invariants(db) == []

    def test_returning_user_under_site_anon(self, site):
        db, engine = site
        gdpr = engine.apply("Lobsters-GDPR", uid=5)
        engine.apply("Lobsters-SiteAnon")
        engine.reveal(gdpr.disguise_id, check_integrity=True)
        user = db.get("users", 5)
        assert user is not None
        assert user["about"] == "[redacted]"  # SiteAnon re-applied
        assert db.count("stories", "user_id = 5") == 0  # still decorrelated
        assert check_invariants(db) == []

    def test_full_unwind(self, site):
        db, engine = site
        before = {
            t: sorted(map(str, db.table(t).rows()))
            for t in db.table_names
            if not t.startswith("_")
        }
        gdpr = engine.apply("Lobsters-GDPR", uid=5)
        anon = engine.apply("Lobsters-SiteAnon")
        engine.reveal(gdpr.disguise_id, check_integrity=True)
        engine.reveal(anon.disguise_id, check_integrity=True)
        after = {
            t: sorted(map(str, db.table(t).rows()))
            for t in db.table_names
            if not t.startswith("_")
        }
        assert after == before
        assert engine.vault.size() == 0

    def test_explain_predicts_lobsters_composition(self, site):
        db, engine = site
        engine.apply("Lobsters-SiteAnon")
        plan = engine.explain("Lobsters-GDPR", uid=5, optimize=True)
        report = engine.apply("Lobsters-GDPR", uid=5, optimize=True)
        assert plan.optimizer_skips == report.redundant_skipped
        assert plan.recorrelations == report.recorrelated
