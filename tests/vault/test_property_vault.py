"""Property tests: vault entries round-trip through every representation."""

from hypothesis import given, settings, strategies as st

from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry

values = st.one_of(
    st.none(),
    st.integers(-10**6, 10**6),
    st.text(max_size=30),
    st.booleans(),
    st.binary(max_size=16),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

rows = st.dictionaries(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=8), values, max_size=6
)


def entries():
    remove = st.builds(
        lambda eid, did, seq, owner, row: VaultEntry(
            eid, did, seq, did, owner, "t", eid, OP_REMOVE, {"row": row}
        ),
        st.integers(1, 10**6), st.integers(1, 100), st.integers(1, 10**6),
        st.one_of(st.none(), st.integers(1, 1000), st.text(min_size=1, max_size=8)),
        rows,
    )
    modify = st.builds(
        lambda eid, did, seq, owner, old, new: VaultEntry(
            eid, did, seq, did, owner, "t", eid, OP_MODIFY,
            {"column": "c", "old": old, "new": new},
        ),
        st.integers(1, 10**6), st.integers(1, 100), st.integers(1, 10**6),
        st.one_of(st.none(), st.integers(1, 1000)), values, values,
    )
    decorrelate = st.builds(
        lambda eid, did, seq, owner, old, new: VaultEntry(
            eid, did, seq, did, owner, "t", eid, OP_DECORRELATE,
            {"column": "c", "old": old, "new": new,
             "placeholder_table": "p", "placeholder_pk": new},
        ),
        st.integers(1, 10**6), st.integers(1, 100), st.integers(1, 10**6),
        st.one_of(st.none(), st.integers(1, 1000)),
        st.integers(1, 1000), st.integers(1, 1000),
    )
    return st.one_of(remove, modify, decorrelate)


@settings(max_examples=120)
@given(entry=entries())
def test_json_round_trip(entry):
    assert VaultEntry.from_json(entry.to_json()) == entry


@settings(max_examples=60)
@given(entry=entries())
def test_memory_store_round_trip(entry):
    from repro.vault.memory_vault import MemoryVault

    vault = MemoryVault()
    vault.put(entry)
    assert vault.entries_for(entry.owner) == [entry]


@settings(max_examples=40)
@given(entry=entries())
def test_file_store_round_trip(entry, tmp_path_factory):
    from repro.vault.file_vault import FileVault

    # avoid path-hostile owners for the file store
    if isinstance(entry.owner, str) and (entry.owner.startswith(".") or "/" in entry.owner):
        return
    vault = FileVault(tmp_path_factory.mktemp("v"))
    vault.put(entry)
    assert vault.entries_for(entry.owner) == [entry]


@settings(max_examples=40)
@given(entry=entries())
def test_encrypted_store_round_trip(entry):
    from repro.vault.encrypted import EncryptedVault
    from repro.vault.memory_vault import MemoryVault

    vault = EncryptedVault(MemoryVault())
    if entry.owner is not None:
        key = vault.register_owner(entry.owner)
        vault.unlock(entry.owner, key)
    vault.put(entry)
    assert vault.entries_for(entry.owner) == [entry]
