"""Unit tests for vault entries and their serialization."""

import pytest

from repro.errors import VaultError
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry


def remove_entry(**overrides) -> VaultEntry:
    fields = dict(
        entry_id=1,
        disguise_id=10,
        seq=5,
        epoch=10,
        owner=19,
        table="users",
        pk=19,
        op=OP_REMOVE,
        payload={"row": {"id": 19, "name": "Bea", "blob": b"\x01\x02"}},
    )
    fields.update(overrides)
    return VaultEntry(**fields)


class TestConstruction:
    def test_unknown_op_rejected(self):
        with pytest.raises(VaultError):
            remove_entry(op="explode")

    def test_accessors(self):
        entry = remove_entry()
        assert entry.removed_row["name"] == "Bea"
        decorrelate = VaultEntry(
            2, 10, 6, 10, 19, "posts", 7, OP_DECORRELATE,
            {"column": "uid", "old": 19, "new": 295,
             "placeholder_table": "users", "placeholder_pk": 295},
        )
        assert decorrelate.column == "uid"
        assert decorrelate.old_value == 19
        assert decorrelate.new_value == 295
        assert decorrelate.placeholder_table == "users"
        assert decorrelate.placeholder_pk == 295

    def test_with_payload_updates_seq_and_fields(self):
        entry = VaultEntry(
            2, 10, 6, 10, 19, "posts", 7, OP_DECORRELATE,
            {"column": "uid", "old": 19, "new": 295,
             "placeholder_table": "users", "placeholder_pk": 295},
        )
        updated = entry.with_payload(99, old=295, new=400, placeholder_pk=400)
        assert updated.seq == 99
        assert updated.old_value == 295 and updated.new_value == 400
        assert updated.entry_id == entry.entry_id
        # original unchanged (frozen)
        assert entry.old_value == 19


class TestSerialization:
    def test_round_trip_with_bytes(self):
        entry = remove_entry()
        restored = VaultEntry.from_json(entry.to_json())
        assert restored == entry
        assert restored.removed_row["blob"] == b"\x01\x02"

    def test_modify_round_trip(self):
        entry = VaultEntry(
            3, 11, 7, 11, None, "users", 5, OP_MODIFY,
            {"column": "name", "old": "Bea", "new": None},
        )
        assert VaultEntry.from_json(entry.to_json()) == entry

    def test_corrupt_json_rejected(self):
        with pytest.raises(VaultError):
            VaultEntry.from_json("{broken")

    def test_none_owner_round_trips(self):
        entry = remove_entry(owner=None)
        assert VaultEntry.from_json(entry.to_json()).owner is None
