"""Unit tests for the encrypted vault: locking, keys, escrow (paper §4.2)."""

import pytest

from repro.crypto.cipher import SecretKey
from repro.crypto.threshold import escrow_key
from repro.errors import CryptoError, VaultError
from repro.vault.encrypted import EncryptedVault
from repro.vault.entry import OP_REMOVE, VaultEntry
from repro.vault.memory_vault import MemoryVault


def entry(entry_id=1, owner=19, epoch=1):
    return VaultEntry(
        entry_id=entry_id,
        disguise_id=1,
        seq=entry_id,
        epoch=epoch,
        owner=owner,
        table="users",
        pk=owner,
        op=OP_REMOVE,
        payload={"row": {"id": owner, "name": "Bea"}},
    )


class TestLocking:
    def test_write_without_unlock_read_requires_approval(self):
        vault = EncryptedVault(MemoryVault())
        vault.register_owner(19)
        vault.put(entry())  # the tool writes while disguising
        with pytest.raises(VaultError):
            vault.entries_for(19)  # reading needs user approval

    def test_unlock_allows_read(self):
        vault = EncryptedVault(MemoryVault())
        key = vault.register_owner(19)
        vault.put(entry())
        vault.unlock(19, key)
        entries = vault.entries_for(19)
        assert entries[0].removed_row["name"] == "Bea"

    def test_lock_again(self):
        vault = EncryptedVault(MemoryVault())
        key = vault.register_owner(19)
        vault.put(entry())
        vault.unlock(19, key)
        vault.lock(19)
        assert not vault.is_unlocked(19)
        with pytest.raises(VaultError):
            vault.entries_for(19)

    def test_wrong_key_detected_via_authentication(self):
        vault = EncryptedVault(MemoryVault())
        vault.register_owner(19)
        vault.put(entry())
        vault.unlock(19, SecretKey.generate())
        with pytest.raises(CryptoError):
            vault.entries_for(19)

    def test_unregistered_owner_cannot_write(self):
        vault = EncryptedVault(MemoryVault())
        with pytest.raises(VaultError):
            vault.put(entry())

    def test_global_tier_not_encrypted(self):
        vault = EncryptedVault(MemoryVault())
        vault.put(entry(owner=None))
        assert vault.entries_for(None)[0].removed_row["name"] == "Bea"
        with pytest.raises(VaultError):
            vault.register_owner(None)

    def test_payload_is_sealed_at_rest(self):
        inner = MemoryVault()
        vault = EncryptedVault(inner)
        vault.register_owner(19)
        vault.put(entry())
        stored = inner._entries(19)[0]
        assert "row" not in stored.payload
        assert "Bea" not in stored.to_json()


class TestEscrow:
    def test_unlock_via_escrow(self):
        vault = EncryptedVault(MemoryVault())
        key = SecretKey.generate()
        vault.register_owner(19, key=key, escrow=escrow_key(key))
        vault.put(entry())
        vault.lock(19)
        vault.unlock_via_escrow(19, "app", "third_party")
        assert vault.entries_for(19)[0].removed_row["id"] == 19

    def test_escrow_below_threshold_fails(self):
        vault = EncryptedVault(MemoryVault())
        key = SecretKey.generate()
        vault.register_owner(19, key=key, escrow=escrow_key(key))
        with pytest.raises(CryptoError):
            vault.unlock_via_escrow(19, "app")

    def test_no_escrow_registered(self):
        vault = EncryptedVault(MemoryVault())
        vault.register_owner(19)
        with pytest.raises(VaultError):
            vault.unlock_via_escrow(19, "app", "third_party")


class TestMetadataOperations:
    def test_expiry_without_unlock(self):
        vault = EncryptedVault(MemoryVault())
        vault.register_owner(19)
        vault.put(entry(1, epoch=1))
        vault.put(entry(2, epoch=9))
        assert vault.expire_before(5) == 1
        assert vault.size() == 1

    def test_all_entries_blocked_while_locked(self):
        # The paper's point: complete reversal of a global disguise under
        # per-user encrypted vaults is infeasible without every user's key.
        vault = EncryptedVault(MemoryVault())
        vault.register_owner(19)
        vault.put(entry())
        with pytest.raises(VaultError):
            vault.all_entries()


class TestBatchedWrites:
    def test_put_many_round_trips_per_owner(self):
        vault = EncryptedVault(MemoryVault())
        keys = {owner: vault.register_owner(owner) for owner in (7, 8)}
        batch = [entry(entry_id=i, owner=7 + i % 2) for i in range(1, 9)]
        vault.put_many(batch)
        for owner in (7, 8):
            vault.unlock(owner, keys[owner])
            got = sorted(vault.entries_for(owner), key=lambda e: e.entry_id)
            want = sorted(
                (e for e in batch if e.owner == owner), key=lambda e: e.entry_id
            )
            assert got == want

    def test_put_many_seals_payloads_at_rest(self):
        inner = MemoryVault()
        vault = EncryptedVault(inner)
        vault.register_owner(19)
        vault.put_many([entry(entry_id=i) for i in range(1, 4)])
        for stored in inner._entries(19):
            assert set(stored.payload) == {"ct"}
            assert "Bea" not in str(stored.payload)

    def test_put_many_passes_global_tier_in_clear(self):
        inner = MemoryVault()
        vault = EncryptedVault(inner)
        vault.register_owner(19)
        mixed = [entry(entry_id=1), entry(entry_id=2, owner=None)]
        vault.put_many(mixed)
        (clear,) = inner._entries(None)
        assert clear.payload == {"row": {"id": None, "name": "Bea"}}

    def test_put_many_derives_subkeys_once_per_owner(self, monkeypatch):
        import repro.crypto.cipher as cipher_mod

        vault = EncryptedVault(MemoryVault())
        vault.register_owner(19)
        calls = []
        original = cipher_mod.SecretKey._subkey

        def counting(self, label):
            calls.append(label)
            return original(self, label)

        monkeypatch.setattr(cipher_mod.SecretKey, "_subkey", counting)
        vault.put_many([entry(entry_id=i) for i in range(1, 33)])
        assert calls == [], (
            "subkeys are cached on the key object; a 32-entry batch must "
            "not re-derive them"
        )

    def test_put_many_unregistered_owner_rejected(self):
        vault = EncryptedVault(MemoryVault())
        with pytest.raises(VaultError):
            vault.put_many([entry(entry_id=1, owner=99)])
