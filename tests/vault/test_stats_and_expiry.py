"""Vault statistics accounting and epoch-boundary expiry."""

from repro.vault.base import VaultStats
from repro.vault.entry import OP_MODIFY, VaultEntry
from repro.vault.memory_vault import MemoryVault


def entry(entry_id, epoch, owner=1):
    return VaultEntry(
        entry_id=entry_id, disguise_id=epoch, seq=entry_id, epoch=epoch,
        owner=owner, table="t", pk=1, op=OP_MODIFY,
        payload={"column": "c", "old": 1, "new": 2},
    )


class TestVaultStats:
    def test_delta_and_total(self):
        stats = VaultStats(reads=5, writes=3, deletes=1)
        before = stats.snapshot()
        stats.reads += 2
        stats.writes += 1
        delta = stats.delta(before)
        assert (delta.reads, delta.writes, delta.deletes) == (2, 1, 0)
        assert delta.total == 3

    def test_store_counters(self):
        vault = MemoryVault()
        vault.put(entry(1, 1))
        vault.entries_for(1)
        vault.replace(entry(1, 1))
        vault.delete(1, [1])
        assert vault.stats.writes == 2
        assert vault.stats.reads == 1
        assert vault.stats.deletes == 1


class TestExpiryBoundaries:
    def test_strictly_before_epoch(self):
        vault = MemoryVault()
        vault.put(entry(1, epoch=5))
        vault.put(entry(2, epoch=6))
        # epoch 5 is NOT < 5: survives
        assert vault.expire_before(5) == 0
        assert vault.expire_before(6) == 1
        assert [e.entry_id for e in vault.entries_for(1)] == [2]

    def test_expire_spans_owners_and_global(self):
        vault = MemoryVault()
        vault.put(entry(1, epoch=1, owner=1))
        vault.put(entry(2, epoch=1, owner=2))
        vault.put(entry(3, epoch=1, owner=None))
        assert vault.expire_before(9) == 3
        assert vault.size() == 0

    def test_expire_empty_vault(self):
        assert MemoryVault().expire_before(100) == 0
