"""Shared behavioural tests across all vault store implementations.

Every deployment model (memory, per-user DB tables, files, encrypted,
multi-tier) must satisfy the same contract: put/replace/delete/filter,
seq-ordered reads, owner isolation, and epoch-based expiry.
"""

from __future__ import annotations

import pytest

from repro.crypto.cipher import SecretKey
from repro.errors import VaultError
from repro.storage.database import Database
from repro.vault.base import VaultStore
from repro.vault.encrypted import EncryptedVault
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry
from repro.vault.file_vault import FileVault
from repro.vault.memory_vault import MemoryVault
from repro.vault.multitier import MultiTierVault
from repro.vault.table_vault import TableVault


def entry(entry_id, owner=19, disguise_id=1, seq=None, epoch=None, table="users", op=OP_REMOVE):
    payloads = {
        OP_REMOVE: {"row": {"id": owner}},
        OP_MODIFY: {"column": "c", "old": 1, "new": 2},
        OP_DECORRELATE: {
            "column": "c", "old": 1, "new": 2,
            "placeholder_table": "users", "placeholder_pk": 2,
        },
    }
    return VaultEntry(
        entry_id=entry_id,
        disguise_id=disguise_id,
        seq=seq if seq is not None else entry_id,
        epoch=epoch if epoch is not None else disguise_id,
        owner=owner,
        table=table,
        pk=owner,
        op=op,
        payload=payloads[op],
    )


def make_store(kind: str, tmp_path) -> VaultStore:
    if kind == "memory":
        return MemoryVault()
    if kind == "table":
        return TableVault()
    if kind == "table-shared":
        return TableVault(Database())
    if kind == "file":
        return FileVault(tmp_path / "vaults")
    if kind == "encrypted":
        store = EncryptedVault(MemoryVault())
        for owner in (19, 20, 21):
            store.register_owner(owner)
            store.unlock(owner, store._keys[owner])
        return store
    if kind == "multitier":
        return MultiTierVault(MemoryVault(), MemoryVault())
    raise AssertionError(kind)


KINDS = ["memory", "table", "table-shared", "file", "encrypted", "multitier"]


@pytest.fixture(params=KINDS)
def store(request, tmp_path) -> VaultStore:
    return make_store(request.param, tmp_path)


class TestStoreContract:
    def test_put_and_read_back(self, store):
        store.put(entry(1))
        store.put(entry(2, op=OP_MODIFY))
        entries = store.entries_for(19)
        assert [e.entry_id for e in entries] == [1, 2]
        assert entries[0].removed_row == {"id": 19}

    def test_duplicate_put_rejected(self, store):
        store.put(entry(1))
        with pytest.raises(VaultError):
            store.put(entry(1))

    def test_owner_isolation(self, store):
        store.put(entry(1, owner=19))
        store.put(entry(2, owner=20))
        assert [e.entry_id for e in store.entries_for(19)] == [1]
        assert [e.entry_id for e in store.entries_for(20)] == [2]
        assert store.entries_for(21) == []

    def test_seq_ordering(self, store):
        store.put(entry(1, seq=30))
        store.put(entry(2, seq=10))
        store.put(entry(3, seq=20))
        assert [e.entry_id for e in store.entries_for(19)] == [2, 3, 1]

    def test_filters(self, store):
        store.put(entry(1, disguise_id=1, op=OP_REMOVE, table="users"))
        store.put(entry(2, disguise_id=2, op=OP_MODIFY, table="posts"))
        store.put(entry(3, disguise_id=2, op=OP_DECORRELATE, table="posts"))
        assert [e.entry_id for e in store.entries_for(19, disguise_id=2)] == [2, 3]
        assert [e.entry_id for e in store.entries_for(19, table="users")] == [1]
        assert [e.entry_id for e in store.entries_for(19, op=OP_DECORRELATE)] == [3]
        assert [e.entry_id for e in store.entries_for(19, before_epoch=2)] == [1]

    def test_replace(self, store):
        store.put(entry(1, op=OP_DECORRELATE))
        updated = store.entries_for(19)[0].with_payload(50, new=99)
        store.replace(updated)
        got = store.entries_for(19)[0]
        assert got.new_value == 99 and got.seq == 50

    def test_replace_missing_rejected(self, store):
        with pytest.raises(VaultError):
            store.replace(entry(1))

    def test_delete(self, store):
        store.put(entry(1))
        store.put(entry(2))
        assert store.delete(19, [1, 999]) == 1
        assert [e.entry_id for e in store.entries_for(19)] == [2]

    def test_owners_listed(self, store):
        store.put(entry(1, owner=19))
        store.put(entry(2, owner=20))
        assert set(store.owners()) >= {19, 20}

    def test_global_vault(self, store):
        store.put(entry(1, owner=None))
        assert [e.entry_id for e in store.entries_for(None)] == [1]
        assert None not in store.owners()

    def test_all_entries_merges_owners(self, store):
        store.put(entry(1, owner=19, seq=3))
        store.put(entry(2, owner=20, seq=1))
        store.put(entry(3, owner=None, seq=2))
        assert [e.entry_id for e in store.all_entries()] == [2, 3, 1]

    def test_expire_before(self, store):
        store.put(entry(1, epoch=1))
        store.put(entry(2, epoch=5))
        store.put(entry(3, owner=None, epoch=1))
        dropped = store.expire_before(5)
        assert dropped == 2
        assert [e.entry_id for e in store.entries_for(19)] == [2]
        assert store.entries_for(None) == []

    def test_size(self, store):
        assert store.size() == 0
        store.put(entry(1))
        store.put(entry(2, owner=None))
        assert store.size() == 2

    def test_stats_counted(self, store):
        store.put(entry(1))
        store.entries_for(19)
        store.delete(19, [1])
        assert store.stats.writes >= 1
        assert store.stats.reads >= 1
        assert store.stats.deletes >= 1
