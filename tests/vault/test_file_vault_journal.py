"""FileVault journal mode: O(delta) appends, tombstones, compaction.

The regression half of the suite pins the satellite fix for the old
load-all + rewrite-all ``_put``: appending entry N must neither re-read
the journal nor rewrite the N-1 entries already in it.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import VaultError
from repro.vault.entry import OP_MODIFY, VaultEntry
from repro.vault.file_vault import FileVault


def entry(entry_id, owner=19, seq=None):
    return VaultEntry(
        entry_id=entry_id,
        disguise_id=1,
        seq=seq if seq is not None else entry_id,
        epoch=1,
        owner=owner,
        table="users",
        pk=owner,
        op=OP_MODIFY,
        payload={"column": "c", "old": entry_id, "new": entry_id + 1},
    )


class TestAppendOnly:
    def test_put_appends_without_rereading(self, tmp_path, monkeypatch):
        """Entry N costs one append: no journal read, no rewrite of 1..N-1."""
        from pathlib import Path

        vault = FileVault(tmp_path / "v")
        vault.put(entry(1))  # hydrates the owner cache

        read_opens = []
        real_open = Path.open

        def spying_open(self, mode="r", *args, **kwargs):
            if "r" in mode and self.suffix == ".jsonl":
                read_opens.append((self, mode))
            return real_open(self, mode, *args, **kwargs)

        monkeypatch.setattr(Path, "open", spying_open)
        sizes = []
        path = tmp_path / "v" / "owner-19.jsonl"
        for n in range(2, 30):
            vault.put(entry(n))
            sizes.append(path.stat().st_size)
        assert read_opens == [], "put must append blind, never re-read the journal"
        # And the file grows by ~one line per put (no rewrite of 1..N-1).
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        assert max(deltas) <= 2 * min(deltas), f"append cost not flat: {deltas}"

    def test_put_is_one_line_per_entry(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        path = tmp_path / "v" / "owner-19.jsonl"
        for n in range(1, 11):
            vault.put(entry(n))
            assert len(path.read_text().splitlines()) == n

    def test_file_not_reopened_for_reads_after_hydration(self, tmp_path, monkeypatch):
        vault = FileVault(tmp_path / "v")
        vault.put_many([entry(n) for n in range(1, 6)])
        opens = []
        real_path = FileVault._path

        def spying_path(self, owner):
            opens.append(owner)
            return real_path(self, owner)

        monkeypatch.setattr(FileVault, "_path", spying_path)
        assert len(vault.entries_for(19)) == 5
        assert len(vault.entries_for(19)) == 5
        assert opens == [], "reads after hydration must be cache hits"

    def test_put_many_single_append_per_owner(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        vault.put_many([entry(n, owner=19) for n in range(1, 4)]
                       + [entry(n, owner=20) for n in range(4, 6)])
        assert len(vault.entries_for(19)) == 3
        assert len(vault.entries_for(20)) == 2


class TestJournalSemantics:
    def test_replace_appends_and_last_record_wins(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        vault.put(entry(1))
        vault.replace(entry(1).with_payload(seq=50, new=99))
        path = tmp_path / "v" / "owner-19.jsonl"
        assert len(path.read_text().splitlines()) == 2
        # A fresh instance must resolve the replace from the journal alone.
        fresh = FileVault(tmp_path / "v")
        got = fresh.entries_for(19)
        assert len(got) == 1 and got[0].new_value == 99 and got[0].seq == 50

    def test_delete_appends_tombstone(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        vault.put(entry(1))
        vault.put(entry(2))
        assert vault.delete(19, [1]) == 1
        path = tmp_path / "v" / "owner-19.jsonl"
        lines = path.read_text().splitlines()
        assert len(lines) == 3 and json.loads(lines[-1]) == {"$del": [1]}
        fresh = FileVault(tmp_path / "v")
        assert [e.entry_id for e in fresh.entries_for(19)] == [2]

    def test_duplicate_rejected_across_reopen(self, tmp_path):
        FileVault(tmp_path / "v").put(entry(1))
        fresh = FileVault(tmp_path / "v")
        with pytest.raises(VaultError):
            fresh.put(entry(1))

    def test_round_trip_survives_many_generations(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        vault.put_many([entry(n) for n in range(1, 21)])
        vault.delete(19, range(1, 11))
        for n in range(11, 16):
            vault.replace(entry(n).with_payload(seq=100 + n, new=-n))
        fresh = FileVault(tmp_path / "v")
        got = {e.entry_id: e for e in fresh.entries_for(19)}
        assert sorted(got) == list(range(11, 21))
        assert all(got[n].new_value == -n for n in range(11, 16))


class TestCompaction:
    def test_threshold_triggers_compaction(self, tmp_path):
        vault = FileVault(tmp_path / "v", compact_threshold=8)
        vault.put_many([entry(n) for n in range(1, 8)])
        # Churn replaces until dead records exceed both the threshold and
        # the live count.
        for round_ in range(5):
            for n in range(1, 8):
                vault.replace(entry(n).with_payload(seq=1000 + round_ * 10 + n, new=round_))
        assert vault.compactions >= 1
        path = tmp_path / "v" / "owner-19.jsonl"
        # Compaction bounds the file to live entries plus sub-threshold churn
        # (42 records were appended in total).
        assert len(path.read_text().splitlines()) <= 7 + vault.compact_threshold + 1
        fresh = FileVault(tmp_path / "v")
        assert len(fresh.entries_for(19)) == 7

    def test_compacting_empty_vault_removes_file(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        vault.put(entry(1))
        vault.delete(19, [1])
        vault.compact(19)
        assert not (tmp_path / "v" / "owner-19.jsonl").exists()
        assert vault.entries_for(19) == []

    def test_compaction_preserves_seq_order(self, tmp_path):
        vault = FileVault(tmp_path / "v")
        vault.put(entry(1, seq=30))
        vault.put(entry(2, seq=10))
        vault.compact(19)
        fresh = FileVault(tmp_path / "v")
        assert [e.entry_id for e in fresh.entries_for(19)] == [2, 1]


class TestLegacyFilenames:
    """Regression: percent-encoded filenames must not orphan vaults
    written by the pre-encoding layout (raw owner tokens like '@' or '%'
    in the filename)."""

    def legacy_file(self, tmp_path, owner):
        path = tmp_path / f"owner-{owner}.jsonl"
        path.write_text(entry(1, owner=owner).to_json() + "\n")
        return path

    def test_legacy_raw_token_journal_is_migrated_on_read(self, tmp_path):
        legacy = self.legacy_file(tmp_path, "user@example.com")
        vault = FileVault(tmp_path)
        got = vault.entries_for("user@example.com")
        assert [e.entry_id for e in got] == [1]
        # Migrated in place: the raw-token file became the encoded one.
        assert not legacy.exists()
        assert (tmp_path / "owner-user%40example.com.jsonl").exists()

    def test_legacy_journal_accepts_new_writes(self, tmp_path):
        self.legacy_file(tmp_path, "a b:c")
        vault = FileVault(tmp_path)
        vault.put(entry(2, owner="a b:c"))
        fresh = FileVault(tmp_path)
        assert {e.entry_id for e in fresh.entries_for("a b:c")} == {1, 2}
        assert fresh.owners() == ["a b:c"]

    def test_owners_does_not_unquote_legacy_percent_tokens(self, tmp_path):
        """A pre-encoding owner containing '%' must come back verbatim."""
        self.legacy_file(tmp_path, "50%off")
        vault = FileVault(tmp_path)
        assert vault.owners() == ["50%off"]
        assert [e.entry_id for e in vault.entries_for("50%off")] == [1]
        # After migration the encoded name round-trips too.
        assert FileVault(tmp_path).owners() == ["50%off"]

    def test_encoded_and_plain_owners_coexist(self, tmp_path):
        vault = FileVault(tmp_path)
        vault.put(entry(1, owner="plain"))
        vault.put(entry(2, owner="user@example.com"))
        vault.put(entry(3, owner=19))
        assert sorted(FileVault(tmp_path).owners(), key=str) == sorted(
            [19, "plain", "user@example.com"], key=str
        )


class TestSyncAppends:
    def test_batch_put_fsyncs_once_per_owner_group(self, tmp_path, monkeypatch):
        import os as os_mod

        vault = FileVault(tmp_path, sync_appends=True)
        fsyncs = []
        real_fsync = os_mod.fsync
        monkeypatch.setattr(
            "repro.storage.fsio.os.fsync",
            lambda fd: (fsyncs.append(fd), real_fsync(fd))[1],
        )
        vault.put_many([entry(i, owner=19) for i in range(1, 9)])
        vault.put_many(
            [entry(10 + i, owner=19 + i % 2) for i in range(4)]
        )
        # one fsync for the first batch, two for the two-owner second batch
        assert len(fsyncs) == 3
        assert vault.syncs == 3

    def test_sync_appends_off_by_default(self, tmp_path):
        vault = FileVault(tmp_path)
        vault.put_many([entry(i) for i in range(1, 4)])
        assert vault.syncs == 0

    def test_synced_journal_reloads(self, tmp_path):
        vault = FileVault(tmp_path, sync_appends=True)
        vault.put_many([entry(i) for i in range(1, 6)])
        reloaded = FileVault(tmp_path)
        assert {e.entry_id for e in reloaded._entries(19)} == {1, 2, 3, 4, 5}
