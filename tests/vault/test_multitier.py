"""Unit tests for the two-tier vault deployment (paper §4.2)."""

import pytest

from repro.errors import VaultError
from repro.vault.encrypted import EncryptedVault
from repro.vault.entry import OP_MODIFY, VaultEntry
from repro.vault.memory_vault import MemoryVault
from repro.vault.multitier import MultiTierVault


def entry(entry_id, disguise_id, owner=19):
    return VaultEntry(
        entry_id=entry_id,
        disguise_id=disguise_id,
        seq=entry_id,
        epoch=disguise_id,
        owner=owner,
        table="users",
        pk=owner,
        op=OP_MODIFY,
        payload={"column": "name", "old": "Bea", "new": None},
    )


class TestRouting:
    def test_user_invoked_goes_to_user_tier(self):
        user_tier, shared_tier = MemoryVault(), MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        vault.note_disguise(1, user_invoked=True)
        vault.put(entry(1, disguise_id=1))
        assert len(user_tier._entries(19)) == 1
        assert shared_tier._entries(19) == []

    def test_automatic_goes_to_shared_tier(self):
        user_tier, shared_tier = MemoryVault(), MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        vault.note_disguise(2, user_invoked=False)
        vault.put(entry(1, disguise_id=2))
        assert user_tier._entries(19) == []
        assert len(shared_tier._entries(19)) == 1

    def test_unannounced_disguise_defaults_to_shared(self):
        user_tier, shared_tier = MemoryVault(), MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        vault.put(entry(1, disguise_id=99))
        assert len(shared_tier._entries(19)) == 1

    def test_reads_merge_tiers(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(1, user_invoked=True)
        vault.note_disguise(2, user_invoked=False)
        vault.put(entry(1, disguise_id=1))
        vault.put(entry(2, disguise_id=2))
        assert [e.entry_id for e in vault.entries_for(19)] == [1, 2]

    def test_shared_entries_for_skips_user_tier(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(1, user_invoked=True)
        vault.note_disguise(2, user_invoked=False)
        vault.put(entry(1, disguise_id=1))
        vault.put(entry(2, disguise_id=2))
        shared = vault.shared_entries_for(19)
        assert [e.entry_id for e in shared] == [2]

    def test_delete_spans_tiers(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(1, user_invoked=True)
        vault.put(entry(1, disguise_id=1))
        vault.note_disguise(2, user_invoked=False)
        vault.put(entry(2, disguise_id=2))
        assert vault.delete(19, [1, 2]) == 2
        assert vault.entries_for(19) == []

    def test_owners_merged(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(1, user_invoked=True)
        vault.put(entry(1, disguise_id=1, owner=19))
        vault.put(entry(2, disguise_id=99, owner=20))
        assert set(vault.owners()) == {19, 20}


class TestTierMigration:
    """Re-noting a disguise flips where its *future* entries land."""

    def test_promotion_to_user_tier_routes_new_entries(self):
        user_tier, shared_tier = MemoryVault(), MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        vault.note_disguise(5, user_invoked=False)
        vault.put(entry(1, disguise_id=5))
        # The disguise is re-invoked by the user: later entries are
        # promoted to the protected tier; the old ones stay readable.
        vault.note_disguise(5, user_invoked=True)
        vault.put(entry(2, disguise_id=5))
        assert [e.entry_id for e in shared_tier._entries(19)] == [1]
        assert [e.entry_id for e in user_tier._entries(19)] == [2]
        assert [e.entry_id for e in vault.entries_for(19)] == [1, 2]

    def test_demotion_back_to_shared_tier(self):
        user_tier, shared_tier = MemoryVault(), MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        vault.note_disguise(5, user_invoked=True)
        vault.put(entry(1, disguise_id=5))
        vault.note_disguise(5, user_invoked=False)
        vault.put(entry(2, disguise_id=5))
        assert [e.entry_id for e in user_tier._entries(19)] == [1]
        assert [e.entry_id for e in shared_tier._entries(19)] == [2]

    def test_replace_routes_by_current_tier(self):
        user_tier, shared_tier = MemoryVault(), MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        vault.note_disguise(5, user_invoked=True)
        vault.put(entry(1, disguise_id=5))
        vault.replace(entry(1, disguise_id=5))
        assert len(user_tier._entries(19)) == 1
        assert shared_tier._entries(19) == []

    def test_delete_after_promotion_sweeps_both_tiers(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(5, user_invoked=False)
        vault.put(entry(1, disguise_id=5))
        vault.note_disguise(5, user_invoked=True)
        vault.put(entry(2, disguise_id=5))
        assert vault.delete(19, [1, 2]) == 2
        assert vault.entries_for(19) == []


class TestMissPaths:
    def test_unknown_owner_reads_empty(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        assert vault.entries_for(404) == []
        assert vault.shared_entries_for(404) == []

    def test_delete_nothing_counts_zero(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(1, user_invoked=False)
        vault.put(entry(1, disguise_id=1))
        assert vault.delete(19, [7, 8]) == 0
        assert vault.delete(404, [1]) == 0
        assert len(vault.entries_for(19)) == 1

    def test_filtered_read_with_no_match(self):
        vault = MultiTierVault(MemoryVault(), MemoryVault())
        vault.note_disguise(1, user_invoked=False)
        vault.put(entry(1, disguise_id=1))
        assert vault.shared_entries_for(19, disguise_id=99) == []
        assert vault.owners() == [19]


class TestPaperDeployment:
    """The §4.2 sketch: shared tier plain, user tier encrypted."""

    def make(self):
        user_tier = EncryptedVault(MemoryVault())
        shared_tier = MemoryVault()
        vault = MultiTierVault(user_tier, shared_tier)
        return vault, user_tier

    def test_composition_data_readable_without_keys(self):
        vault, _ = self.make()
        vault.note_disguise(1, user_invoked=False)  # e.g. ConfAnon
        vault.put(entry(1, disguise_id=1))
        # The disguising tool can read ConfAnon's reveal functions for this
        # owner without any user approval:
        assert len(vault.shared_entries_for(19)) == 1

    def test_user_disguise_data_needs_unlock(self):
        vault, user_tier = self.make()
        key = user_tier.register_owner(19)
        vault.note_disguise(2, user_invoked=True)  # e.g. GDPR
        vault.put(entry(1, disguise_id=2))
        with pytest.raises(VaultError):
            vault.entries_for(19)
        user_tier.unlock(19, key)
        assert len(vault.entries_for(19)) == 1
