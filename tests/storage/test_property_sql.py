"""Property-based tests for the SQL WHERE-clause parser.

Key invariant: the canonical rendering of a predicate (``str(pred)``)
re-parses to a predicate with identical semantics — this is what makes
spec migration's textual predicate rewriting sound.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage.predicate import (
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Param,
)
from repro.storage.sql import parse_where

COLUMNS = ("a", "b", "c")

literals = st.one_of(
    st.none(),
    st.integers(-50, 50),
    st.text(alphabet="xyz' _%", max_size=6),
    st.booleans(),
)

exprs = st.one_of(
    st.sampled_from([ColumnRef(c) for c in COLUMNS]),
    literals.map(Literal),
    st.just(Param("UID")),
)

comparisons = st.tuples(
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), exprs, exprs
).map(lambda t: Comparison(t[0], t[1], t[2]))

leaf_predicates = st.one_of(
    comparisons,
    st.tuples(exprs, st.booleans()).map(lambda t: IsNull(t[0], negated=t[1])),
    st.tuples(
        st.sampled_from([ColumnRef(c) for c in COLUMNS]),
        st.lists(literals.map(Literal), min_size=1, max_size=3).map(tuple),
        st.booleans(),
    ).map(lambda t: InList(t[0], t[1], negated=t[2])),
    st.tuples(
        st.sampled_from([ColumnRef(c) for c in COLUMNS]),
        st.text(alphabet="xy%_", max_size=5),
        st.booleans(),
    ).map(lambda t: Like(t[0], t[1], negated=t[2])),
    st.tuples(
        st.sampled_from([ColumnRef(c) for c in COLUMNS]),
        st.integers(-20, 20),
        st.integers(-20, 20),
        st.booleans(),
    ).map(lambda t: Between(t[0], Literal(t[1]), Literal(t[2]), negated=t[3])),
)


def _combine(children):
    kind, parts = children
    if kind == "and":
        return And(parts[0], parts[1])
    if kind == "or":
        return Or(parts[0], parts[1])
    return Not(parts[0])


predicates = st.recursive(
    leaf_predicates,
    lambda inner: st.one_of(
        st.tuples(st.just("and"), st.tuples(inner, inner)).map(_combine),
        st.tuples(st.just("or"), st.tuples(inner, inner)).map(_combine),
        st.tuples(st.just("not"), st.tuples(inner)).map(_combine),
    ),
    max_leaves=6,
)

rows = st.fixed_dictionaries(
    {c: st.one_of(st.none(), st.integers(-50, 50), st.text(alphabet="xyz", max_size=4)) for c in COLUMNS}
)


@settings(max_examples=150)
@given(pred=predicates, row=rows, uid=st.integers(-5, 5))
def test_render_reparse_same_semantics(pred, row, uid):
    reparsed = parse_where(str(pred))
    params = {"UID": uid}
    try:
        expected = pred.eval3(row, params)
    except Exception as exc:
        # Ill-typed comparisons raise identically on both sides.
        with_reparsed = None
        try:
            reparsed.eval3(row, params)
        except Exception as exc2:
            with_reparsed = type(exc2)
        assert with_reparsed is type(exc)
        return
    assert reparsed.eval3(row, params) is expected


@settings(max_examples=100)
@given(pred=predicates)
def test_rendering_is_stable(pred):
    once = str(parse_where(str(pred)))
    twice = str(parse_where(once))
    assert once == twice


@settings(max_examples=100)
@given(pred=predicates)
def test_reparse_preserves_columns_and_params(pred):
    reparsed = parse_where(str(pred))
    assert reparsed.columns() == pred.columns()
    assert reparsed.params() == pred.params()
