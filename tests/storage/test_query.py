"""Unit tests for the SELECT query layer."""

import pytest

from repro.errors import ParseError, StorageError, UnknownColumnError
from repro.storage.query import parse_select


def run(db, sql, params=None):
    return parse_select(sql).run(db, params)


class TestBasicSelect:
    def test_star(self, blog_db):
        rows = run(blog_db, "SELECT * FROM users WHERE id = 2")
        assert len(rows) == 1
        assert rows[0]["users.name"] == "Bea"

    def test_projection(self, blog_db):
        rows = run(blog_db, "SELECT name FROM users WHERE id = 1")
        assert rows == [{"name": "Ada"}]

    def test_alias(self, blog_db):
        rows = run(blog_db, "SELECT name AS who FROM users WHERE id = 3")
        assert rows == [{"who": "Cal"}]

    def test_count_star(self, blog_db):
        assert run(blog_db, "SELECT COUNT(*) FROM posts") == 4
        assert run(blog_db, "SELECT COUNT(*) FROM posts WHERE score > 3") == 2

    def test_params(self, blog_db):
        rows = run(blog_db, "SELECT id FROM posts WHERE user_id = $U", {"U": 2})
        assert sorted(r["id"] for r in rows) == [11, 12]

    def test_trailing_semicolon(self, blog_db):
        assert run(blog_db, "SELECT COUNT(*) FROM users;") == 3


class TestJoins:
    def test_fk_join(self, blog_db):
        rows = run(
            blog_db,
            "SELECT p.title, u.name FROM posts p JOIN users u ON p.user_id = u.id "
            "WHERE u.name = 'Bea' ORDER BY p.id",
        )
        assert rows == [{"title": "p2", "name": "Bea"}, {"title": "p3", "name": "Bea"}]

    def test_reversed_on_order(self, blog_db):
        rows = run(
            blog_db,
            "SELECT COUNT(*) FROM posts p JOIN users u ON u.id = p.user_id",
        )
        assert rows == 4

    def test_three_way_join(self, blog_db):
        rows = run(
            blog_db,
            "SELECT c.body, p.title, u.name FROM comments c "
            "JOIN posts p ON c.post_id = p.id "
            "JOIN users u ON c.user_id = u.id "
            "WHERE p.id = 11 ORDER BY c.id",
        )
        assert [r["name"] for r in rows] == ["Ada", "Cal"]
        assert all(r["title"] == "p2" for r in rows)

    def test_join_without_alias(self, blog_db):
        rows = run(
            blog_db,
            "SELECT posts.title FROM posts JOIN users ON posts.user_id = users.id "
            "WHERE users.id = 1",
        )
        assert rows == [{"title": "p1"}]

    def test_null_join_key_never_matches(self, blog_db):
        from repro.storage.evolve import AddColumn, apply_change
        from repro.storage.schema import Column
        from repro.storage.types import ColumnType

        apply_change(blog_db, AddColumn("posts", Column("editor_id", ColumnType.INTEGER)))
        rows = run(
            blog_db,
            "SELECT COUNT(*) FROM posts p JOIN users u ON p.editor_id = u.id",
        )
        assert rows == 0

    def test_ambiguous_bare_column_rejected(self, blog_db):
        with pytest.raises(UnknownColumnError):
            run(
                blog_db,
                "SELECT id FROM posts p JOIN comments c ON c.post_id = p.id",
            )

    def test_join_on_non_indexed_column_falls_back_to_scan(self, blog_db):
        # users.last_login is neither PK nor FK: the join must still work
        # via the per-row scan path.
        blog_db.update_by_pk("posts", 10, {"score": 100})
        rows = run(
            blog_db,
            "SELECT u.name FROM posts p JOIN users u ON p.score = u.last_login "
            "WHERE p.id = 10",
        )
        assert rows == [{"name": "Ada"}]  # Ada's last_login is 100.0

    def test_bad_join_column(self, blog_db):
        with pytest.raises(StorageError):
            run(blog_db, "SELECT * FROM posts p JOIN users u ON p.user_id = u.ghost")


class TestOrderLimit:
    def test_order_desc(self, blog_db):
        rows = run(blog_db, "SELECT id FROM posts ORDER BY score DESC")
        assert [r["id"] for r in rows] == [13, 10, 11, 12]

    def test_multi_key_order(self, blog_db):
        blog_db.update_by_pk("posts", 12, {"score": 3})  # tie with post 11
        rows = run(blog_db, "SELECT id FROM posts ORDER BY score DESC, id DESC")
        assert [r["id"] for r in rows] == [13, 10, 12, 11]

    def test_nulls_sort_first(self, blog_db):
        blog_db.update_by_pk("posts", 11, {"body": None})
        rows = run(blog_db, "SELECT id FROM posts ORDER BY body")
        assert rows[0]["id"] == 11

    def test_limit_offset(self, blog_db):
        rows = run(blog_db, "SELECT id FROM posts ORDER BY id LIMIT 2 OFFSET 1")
        assert [r["id"] for r in rows] == [11, 12]
        rows = run(blog_db, "SELECT id FROM posts ORDER BY id LIMIT 2")
        assert [r["id"] for r in rows] == [10, 11]


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "DELETE FROM users",
            "SELECT name",  # no FROM
            "SELECT name FROM users JOIN posts",  # JOIN without ON
            "SELECT name FROM users ORDER BY name SIDEWAYS",
            "SELECT name FROM users LIMIT many",
            "SELECT COUNT(name) FROM users",
            "SELECT * FROM posts p JOIN users u ON p.user_id < u.id",
        ],
    )
    def test_rejected(self, blog_db, sql):
        with pytest.raises(ParseError):
            parse_select(sql)


class TestDisguiseInteraction:
    def test_application_view_after_scrub(self, blog_db):
        """The application's JOIN view shows placeholder authorship after a
        scrub — the observable effect of Figure 2."""
        from repro import Disguiser
        from tests.conftest import blog_scrub_spec

        engine = Disguiser(blog_db)
        engine.apply(blog_scrub_spec(), uid=2)
        rows = run(
            blog_db,
            "SELECT p.title, u.name, u.disabled FROM posts p "
            "JOIN users u ON p.user_id = u.id ORDER BY p.id",
        )
        by_title = {r["title"]: r for r in rows}
        assert by_title["p2"]["disabled"] is True     # placeholder author
        assert by_title["p3"]["disabled"] is True
        assert by_title["p2"]["name"] != by_title["p3"]["name"]  # per-row
        assert by_title["p1"]["name"] == "Ada"        # untouched
