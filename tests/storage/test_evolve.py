"""Unit tests for schema evolution on a live database."""

import pytest

from repro.errors import SchemaError, TransactionError, UnknownColumnError
from repro.storage.evolve import (
    AddColumn,
    DropColumn,
    RenameColumn,
    RenameTable,
    apply_change,
)
from repro.storage.schema import Column
from repro.storage.types import ColumnType as T


class TestAddColumn:
    def test_rows_gain_default(self, blog_db):
        apply_change(blog_db, AddColumn("users", Column("bio", T.TEXT, default="n/a")))
        assert blog_db.get("users", 1)["bio"] == "n/a"
        blog_db.insert("users", {"id": 9, "name": "X", "email": "x@x", "bio": "hi"})
        assert blog_db.get("users", 9)["bio"] == "hi"

    def test_nullable_without_default(self, blog_db):
        apply_change(blog_db, AddColumn("users", Column("bio", T.TEXT)))
        assert blog_db.get("users", 1)["bio"] is None

    def test_not_null_requires_default(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(
                blog_db, AddColumn("users", Column("bio", T.TEXT, nullable=False))
            )

    def test_duplicate_name_rejected(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(blog_db, AddColumn("users", Column("name", T.TEXT)))


class TestDropColumn:
    def test_column_removed_from_rows(self, blog_db):
        apply_change(blog_db, DropColumn("posts", "body"))
        row = blog_db.get("posts", 10)
        assert "body" not in row
        with pytest.raises(UnknownColumnError):
            blog_db.select("posts", "body IS NULL")

    def test_cannot_drop_pk(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(blog_db, DropColumn("posts", "id"))

    def test_cannot_drop_fk_column(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(blog_db, DropColumn("posts", "user_id"))

    def test_missing_column_rejected(self, blog_db):
        with pytest.raises(UnknownColumnError):
            apply_change(blog_db, DropColumn("posts", "ghost"))


class TestRenameColumn:
    def test_data_and_queries_follow(self, blog_db):
        apply_change(blog_db, RenameColumn("posts", "user_id", "author_id"))
        rows = blog_db.select("posts", "author_id = 2")
        assert sorted(r["id"] for r in rows) == [11, 12]
        # FK still enforced under the new name
        from repro.errors import ForeignKeyError

        with pytest.raises(ForeignKeyError):
            blog_db.insert("posts", {"id": 30, "author_id": 99, "title": "t"})

    def test_rename_pk_retargets_children(self, blog_db):
        apply_change(blog_db, RenameColumn("users", "id", "uid"))
        fk = blog_db.table("posts").schema.foreign_key_for("user_id")
        assert fk.parent_column == "uid"
        blog_db.schema.validate()
        # cascade semantics still intact
        assert blog_db.get("users", 1)["uid"] == 1

    def test_collision_rejected(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(blog_db, RenameColumn("posts", "title", "body"))


class TestRenameTable:
    def test_references_follow(self, blog_db):
        apply_change(blog_db, RenameTable("users", "accounts"))
        assert blog_db.has_table("accounts")
        assert not blog_db.has_table("users")
        fk = blog_db.table("posts").schema.foreign_key_for("user_id")
        assert fk.parent_table == "accounts"
        blog_db.schema.validate()
        assert blog_db.check_integrity() == []

    def test_self_reference_follows(self):
        from repro.storage import Database, Schema, parse_schema

        db = Database(
            Schema(
                parse_schema(
                    "CREATE TABLE nodes (id INT PRIMARY KEY, "
                    "parent INT REFERENCES nodes(id) ON DELETE SET NULL);"
                )
            )
        )
        db.insert("nodes", {"id": 1})
        db.insert("nodes", {"id": 2, "parent": 1})
        apply_change(db, RenameTable("nodes", "tree"))
        fk = db.table("tree").schema.foreign_key_for("parent")
        assert fk.parent_table == "tree"
        db.schema.validate()
        assert db.check_integrity() == []

    def test_collision_rejected(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(blog_db, RenameTable("users", "posts"))

    def test_id_watermark_follows(self, blog_db):
        blog_db.delete("comments", "user_id = 2")
        high = blog_db.next_id("users")  # bumps the watermark
        blog_db.delete_by_pk("users", blog_db.insert("users", {"id": high, "name": "t", "email": "t@t"})["id"])
        apply_change(blog_db, RenameTable("users", "accounts"))
        assert blog_db.next_id("accounts") > high


class TestGuards:
    def test_no_changes_inside_transaction(self, blog_db):
        blog_db.begin()
        with pytest.raises(TransactionError):
            apply_change(blog_db, AddColumn("users", Column("x", T.TEXT)))
        blog_db.rollback()

    def test_unknown_table(self, blog_db):
        with pytest.raises(SchemaError):
            apply_change(blog_db, AddColumn("ghosts", Column("x", T.TEXT)))
