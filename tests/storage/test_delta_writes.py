"""Delta undo/redo write path: differential, rollback, and recovery tests.

The contract (ISSUE 7 / DESIGN.md "Compiled write path"):

* With ``db.delta_writes`` on (the default), batched UPDATE/DELETE must be
  observationally identical to the legacy full-row path: same final
  contents, same errors, same rollback and crash-recovery behavior — only
  the undo/redo payloads shrink to the changed columns.
* WAL record-format 2 logs replay through the ``deltas`` branch; fmt-1
  logs (no ``fmt`` header key, full-row ``updates`` records) still
  recover; a log stamped with a future format is rejected, not guessed at.
* ``update_where`` accepts a SET-expression string compiled through the
  same plan cache as predicates.
"""

from __future__ import annotations

import random
import shutil
import struct

import pytest

from repro import Database, Schema, parse_schema
from repro.errors import (
    ConstraintError,
    NoSuchRowError,
    ParseError,
    UnknownColumnError,
)
from repro.storage.persist import save_database
from repro.storage.wal import (
    _T_COMMIT,
    _T_HEADER,
    _T_STMT,
    _WAL_FORMAT,
    _WAL_VERSION,
    WalCorruptionError,
    _write_frame,
    default_wal_path,
    open_in_place,
    recover_database,
)

DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT NOT NULL,
  email TEXT,
  score INT
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  author_id INT NOT NULL REFERENCES users(id) ON DELETE CASCADE,
  title TEXT NOT NULL,
  views INT
);
CREATE TABLE reviews (
  id INT PRIMARY KEY,
  post_id INT NOT NULL REFERENCES posts(id) ON DELETE CASCADE,
  reviewer_id INT REFERENCES users(id) ON DELETE SET NULL,
  stars INT
);
"""

_FRAME_HEADER = struct.Struct("<II")


def make_db(delta_writes: bool = True) -> Database:
    db = Database(Schema(parse_schema(DDL)))
    db.delta_writes = delta_writes
    db.insert_many(
        "users",
        [
            {"id": i, "name": f"u{i}", "email": f"u{i}@x", "score": i * 10}
            for i in range(1, 9)
        ],
    )
    db.insert_many(
        "posts",
        [
            {"id": i, "author_id": 1 + i % 8, "title": f"p{i}", "views": i}
            for i in range(1, 17)
        ],
    )
    db.insert_many(
        "reviews",
        [
            {"id": i, "post_id": 1 + i % 16, "reviewer_id": 1 + i % 8, "stars": i % 5}
            for i in range(1, 25)
        ],
    )
    return db


def contents(db: Database) -> dict:
    return {
        name: sorted((dict(r) for r in db.table(name).rows()), key=lambda r: str(r))
        for name in db.table_names
    }


# -- randomized differential: delta path vs legacy full-row path -------------------


def _random_op(rng: random.Random):
    """One random mutation as a closure over a Database."""
    kind = rng.choice(
        [
            "update_where",
            "update_where_set",
            "update_many",
            "delete_where",
            "delete_by_pk",
            "insert",
        ]
    )
    if kind == "update_where":
        table, col = rng.choice(
            [("users", "score"), ("posts", "views"), ("reviews", "stars")]
        )
        bound = rng.randrange(30)
        value = rng.randrange(1000)
        return lambda db: db.update_where(
            table, f"{col} < $b", {col: value}, {"b": bound}
        )
    if kind == "update_where_set":
        bound = rng.randrange(30)
        delta = rng.randrange(5)
        return lambda db: db.update_where(
            "posts", "views < $b", f"views = views + {delta}", {"b": bound}
        )
    if kind == "update_many":
        pks = rng.sample(range(1, 17), rng.randrange(1, 4))
        value = rng.randrange(100)
        return lambda db: db.update_many(
            "posts", [(pk, {"views": value + pk}) for pk in pks]
        )
    if kind == "delete_where":
        table = rng.choice(["users", "posts", "reviews"])
        pk = rng.randrange(1, 30)
        return lambda db: db.delete_where(table, f"id = {pk}")
    if kind == "delete_by_pk":
        pk = rng.randrange(1, 12)
        return lambda db: db.delete_by_pk("users", pk)
    next_id = rng.randrange(100, 10_000)
    return lambda db: db.insert(
        "users", {"id": next_id, "name": f"n{next_id}", "email": None, "score": 0}
    )


@pytest.mark.parametrize("seed", range(8))
def test_random_workload_matches_full_row_path(seed):
    """Identical random workloads under delta vs full-row undo/redo must
    produce identical databases and raise identical error types."""
    rng = random.Random(seed)
    ops = [_random_op(rng) for _ in range(40)]
    delta_db, legacy_db = make_db(True), make_db(False)
    for op in ops:
        outcomes = []
        for db in (delta_db, legacy_db):
            try:
                outcomes.append(("ok", op(db)))
            except Exception as exc:  # noqa: BLE001 - equivalence check
                outcomes.append(("err", type(exc).__name__))
        assert outcomes[0] == outcomes[1]
        assert contents(delta_db) == contents(legacy_db)
    delta_db.assert_integrity()


@pytest.mark.parametrize("seed", range(4))
def test_random_transactions_roll_back_identically(seed):
    """Rollback from delta undo records restores byte-identical state,
    including through FK CASCADE and SET NULL interleavings."""
    rng = random.Random(1000 + seed)
    delta_db, legacy_db = make_db(True), make_db(False)
    for _round in range(10):
        ops = [_random_op(rng) for _ in range(5)]
        abort = rng.random() < 0.5
        for db in (delta_db, legacy_db):
            before = contents(db)
            db.begin()
            for op in ops:
                try:
                    op(db)
                except Exception:  # noqa: BLE001 - op may fail; tx continues
                    pass
            if abort:
                db.rollback()
                assert contents(db) == before
            else:
                db.commit()
        assert contents(delta_db) == contents(legacy_db)
        delta_db.assert_integrity()


def test_update_then_cascade_delete_then_rollback():
    """The hard case for rid-keyed undo: an update's target row is deleted
    (by CASCADE) later in the same transaction, so rollback reinserts it
    under a fresh rid before the update's inverse delta applies."""
    db = make_db(True)
    before = contents(db)
    db.begin()
    db.update_where("posts", "author_id = 2", {"views": 999})
    db.update_where("reviews", "reviewer_id = 2", {"stars": 0})
    db.delete_by_pk("users", 2)  # cascades posts, SET NULLs nothing here
    db.delete_where("reviews", "stars >= 3")
    db.rollback()
    assert contents(db) == before
    db.assert_integrity()


def test_set_null_cascade_rolls_back():
    db = make_db(True)
    before = contents(db)
    db.begin()
    db.update_where("reviews", "reviewer_id = 3", {"stars": 5})
    db.delete_by_pk("users", 3)  # posts CASCADE away, reviews SET NULL
    assert any(
        r["reviewer_id"] is None for r in (dict(x) for x in db.table("reviews").rows())
    )
    db.rollback()
    assert contents(db) == before
    db.assert_integrity()


# -- SET-expression compilation ----------------------------------------------------


class TestSetExpressions:
    def test_arithmetic_set(self):
        db = make_db(True)
        n = db.update_where("users", "id <= 3", "score = score * 2 + 1")
        assert n == 3
        assert db.get("users", 1)["score"] == 21
        assert db.get("users", 3)["score"] == 61

    def test_set_with_params(self):
        db = make_db(True)
        db.update_where("posts", "id = 1", "views = views + $inc", {"inc": 41})
        assert db.get("posts", 1)["views"] == 42

    def test_multi_column_set(self):
        db = make_db(True)
        db.update_where("users", "id = 5", "score = score - 50, email = null")
        row = db.get("users", 5)
        assert row["score"] == 0 and row["email"] is None

    def test_set_matches_legacy_path(self):
        delta_db, legacy_db = make_db(True), make_db(False)
        for db in (delta_db, legacy_db):
            db.update_where("reviews", "stars < 4", "stars = stars + 1")
        assert contents(delta_db) == contents(legacy_db)

    def test_set_unknown_column_raises(self):
        db = make_db(True)
        with pytest.raises(UnknownColumnError):
            db.update_where("users", "id = 1", "bogus = 1")

    def test_duplicate_set_column_raises(self):
        db = make_db(True)
        with pytest.raises(ParseError):
            db.update_where("users", "id = 1", "score = 1, score = 2")

    def test_set_not_null_violation(self):
        from repro.errors import SchemaError

        db = make_db(True)
        with pytest.raises(SchemaError):
            db.update_where("users", "id = 1", "name = null")

    def test_set_is_cached_in_plan_cache(self):
        db = make_db(True)
        db.update_where("users", "id = 1", "score = score + 1")
        before = db.plans.hits
        db.update_where("users", "id = 2", "score = score + 1")
        assert db.plans.hits > before


# -- batched table primitives ------------------------------------------------------


class TestBatchedTableOps:
    def test_apply_updates_keeps_indexes_and_stats(self):
        db = make_db(True)
        table = db.table("posts")
        deltas = [(table.rid_of(pk), {"author_id": 1}) for pk in (1, 2, 3)]
        table.apply_updates(deltas)
        assert {r["id"] for r in table.referencing_rows("author_id", 1)} >= {1, 2, 3}
        db.assert_integrity()

    def test_apply_updates_skips_noop_columns(self):
        db = make_db(True)
        table = db.table("users")
        rid = table.rid_of(1)
        changed = table.apply_updates([(rid, {"score": 10, "email": "u1@x"})])
        assert changed == [(rid, {}, {})]  # both columns already held the value

    def test_apply_updates_rejects_pk_change(self):
        db = make_db(True)
        table = db.table("users")
        with pytest.raises(ConstraintError):
            table.apply_updates([(table.rid_of(1), {"id": 999})])

    def test_apply_updates_missing_rid_raises(self):
        db = make_db(True)
        with pytest.raises(NoSuchRowError):
            db.table("users").apply_updates([(10**9, {"score": 1})])

    def test_apply_deletes_dedups_and_patches_indexes(self):
        db = make_db(True)
        table = db.table("reviews")
        rid = table.rid_of(1)
        table.apply_deletes([rid, rid])
        assert table.rid_of(1) is None
        db.assert_integrity()

    def test_match_rows_agrees_with_scan(self):
        db = make_db(True)
        table = db.table("posts")
        from repro.storage.sql import parse_where

        pred = parse_where("views >= 8")
        scanned = [dict(r) for r in table.scan(pred)]
        matched = [dict(row) for _rid, row in table.match_rows(pred)]
        key = lambda r: r["id"]  # noqa: E731
        assert sorted(matched, key=key) == sorted(scanned, key=key)


# -- WAL: delta records, torn-tail recovery, format gate ---------------------------


def _wal_workload(tmp_path, delta_writes: bool):
    tmp_path.mkdir(parents=True, exist_ok=True)
    snap = tmp_path / f"app-{delta_writes}.jsonl"
    db = Database(Schema(parse_schema(DDL)))
    save_database(db, snap)
    handle = open_in_place(snap, fsync="always")
    live = handle.db
    live.delta_writes = delta_writes
    states = [contents(live)]

    def step(fn):
        fn()
        states.append(contents(live))

    step(lambda: live.insert_many(
        "users",
        [{"id": i, "name": f"u{i}", "email": f"u{i}@x", "score": i} for i in range(1, 6)],
    ))
    step(lambda: live.insert_many(
        "posts",
        [{"id": i, "author_id": 1 + i % 5, "title": f"p{i}", "views": i} for i in range(1, 9)],
    ))
    step(lambda: live.update_where("posts", "views < 5", {"title": "redacted", "views": 0}))
    step(lambda: live.update_where("users", "id <= 3", "score = score * 10"))
    step(lambda: live.update_many("posts", [(1, {"views": 7}), (2, {"views": 8})]))

    def tx():
        with live.transaction():
            live.delete_by_pk("users", 2)  # cascades posts
            live.update_where("users", "score >= 40", {"email": None})

    step(tx)
    step(lambda: live.delete_where("posts", "views = 0"))
    handle.wal._handle.flush()
    return snap, default_wal_path(snap), states


def _frame_spans(blob: bytes):
    import json
    import zlib

    spans, offset = [], 0
    while offset < len(blob):
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        body = blob[start : start + length]
        assert zlib.crc32(body) == crc
        spans.append((offset, start + length, json.loads(body.decode())))
        offset = start + length
    return spans


class TestDeltaWal:
    def test_update_where_emits_one_delta_frame(self, tmp_path):
        snap, wal_path, _states = _wal_workload(tmp_path, delta_writes=True)
        payloads = [p for _s, _e, p in _frame_spans(wal_path.read_bytes())]
        updates = [p for p in payloads if p.get("op") == "update"]
        assert updates, "workload must log updates"
        deltas = [p for p in updates if "deltas" in p]
        assert deltas, "delta path must emit 'deltas' records"
        # Each batched statement is ONE frame carrying a pk -> delta list,
        # and the delta carries only changed columns, not full rows.
        frame = next(p for p in deltas if len(p["deltas"]) > 1)
        for _pk, delta in frame["deltas"]:
            assert set(delta) < {"title", "views", "score", "email"}

    def test_header_carries_format_version(self, tmp_path):
        snap, wal_path, _states = _wal_workload(tmp_path, delta_writes=True)
        header = _frame_spans(wal_path.read_bytes())[0][2]
        assert header["t"] == _T_HEADER and header["fmt"] == _WAL_FORMAT

    def test_delta_log_smaller_than_full_row_log(self, tmp_path):
        _snap, delta_wal, _ = _wal_workload(tmp_path, delta_writes=True)
        _snap2, full_wal, _ = _wal_workload(tmp_path / "full", delta_writes=False)
        assert delta_wal.stat().st_size < full_wal.stat().st_size

    @pytest.mark.parametrize("delta_writes", [True, False])
    def test_every_byte_boundary_recovers_a_committed_prefix(
        self, tmp_path, delta_writes
    ):
        snap, wal_path, states = _wal_workload(tmp_path, delta_writes)
        blob = wal_path.read_bytes()
        commit_ends = [
            end for _s, end, p in _frame_spans(blob) if p.get("t") == _T_COMMIT
        ]
        work = tmp_path / "crash"
        work.mkdir(exist_ok=True)
        crash_snap = work / "app.jsonl"
        shutil.copy(snap, crash_snap)
        crash_wal = default_wal_path(crash_snap)
        for cut in range(len(blob) + 1):
            crash_wal.write_bytes(blob[:cut])
            expected_commits = sum(1 for end in commit_ends if end <= cut)
            recovered = recover_database(crash_snap, crash_wal)
            assert contents(recovered) == states[expected_commits], (
                f"cut at byte {cut} (delta_writes={delta_writes})"
            )
            recovered.assert_integrity()

    def test_delta_and_full_row_logs_recover_to_same_state(self, tmp_path):
        snap_d, _wal_d, states_d = _wal_workload(tmp_path / "d", delta_writes=True)
        snap_f, _wal_f, states_f = _wal_workload(tmp_path / "f", delta_writes=False)
        assert states_d == states_f
        assert contents(recover_database(snap_d)) == contents(recover_database(snap_f))


class TestFormatGate:
    def _craft_log(self, path, header, records):
        with path.open("wb") as handle:
            _write_frame(handle, header)
            for record in records:
                _write_frame(handle, record)

    def test_pre_delta_format_log_recovers(self, tmp_path):
        """A fmt-1 log — no 'fmt' header key, full-row 'updates' records —
        written by the previous release must still replay."""
        snap = tmp_path / "app.jsonl"
        db = Database(Schema(parse_schema(DDL)))
        db.insert("users", {"id": 1, "name": "old", "email": "o@x", "score": 1})
        save_database(db, snap)
        wal_path = default_wal_path(snap)
        self._craft_log(
            wal_path,
            {"t": _T_HEADER, "version": _WAL_VERSION, "gen": 0},  # note: no "fmt"
            [
                {
                    "t": _T_STMT,
                    "op": "update",
                    "table": "users",
                    "updates": [
                        [1, {"id": 1, "name": "new", "email": None, "score": 7}]
                    ],
                },
                {"t": _T_COMMIT, "n": 1},
            ],
        )
        recovered = recover_database(snap)
        assert recovered.get("users", 1) == {
            "id": 1, "name": "new", "email": None, "score": 7,
        }

    def test_future_format_is_rejected(self, tmp_path):
        snap = tmp_path / "app.jsonl"
        db = Database(Schema(parse_schema(DDL)))
        save_database(db, snap)
        wal_path = default_wal_path(snap)
        self._craft_log(
            wal_path,
            {"t": _T_HEADER, "version": _WAL_VERSION, "fmt": _WAL_FORMAT + 1, "gen": 0},
            [],
        )
        with pytest.raises(WalCorruptionError):
            recover_database(snap)


# -- engine-level differential: apply + reveal under both write paths -------------


class TestEngineDifferential:
    def _run(self, delta_writes: bool):
        from tests.conftest import blog_scrub_spec, make_blog_db
        from repro.core.engine import Disguiser
        from repro.vault.memory_vault import MemoryVault

        db = make_blog_db()
        db.delta_writes = delta_writes
        engine = Disguiser(db, vault=MemoryVault(), seed=7)
        engine.register(blog_scrub_spec())
        report = engine.apply("BlogScrub", uid=2)
        disguised = contents(db)
        engine.reveal(report.disguise_id, check_integrity=True)
        return disguised, contents(db)

    def test_apply_and_reveal_match_full_row_path(self):
        delta = self._run(True)
        legacy = self._run(False)
        assert delta[0] == legacy[0], "disguised states diverge"
        assert delta[1] == legacy[1], "revealed states diverge"

    def test_reveal_restores_original_rows(self):
        from tests.conftest import make_blog_db

        _disguised, revealed = self._run(True)
        original = contents(make_blog_db())
        assert {t: revealed[t] for t in original} == original
