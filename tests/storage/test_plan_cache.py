"""Plan-cache behavior and stale-plan regression tests.

The cache maps (table, predicate, schema generation) to an access-path
template plus compiled predicate. Anything that changes what a plan may
legally assume — index create/drop, table create/drop, schema evolution —
bumps the generation, and a stale entry must never execute. Each test
here performs the DDL *after* a scan has populated the cache, then checks
the next scan both returns correct rows and reflects the new schema.
"""

from repro.storage.compile import PlanCache, compile_predicate
from repro.storage.database import Database
from repro.storage.evolve import RenameColumn, RenameTable, apply_change
from repro.storage.predicate import ColumnRef, Comparison, InList, Literal
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.sql import parse_where
from repro.storage.table import Table
from repro.storage.types import ColumnType as T


def make_table(n: int = 60) -> Table:
    schema = TableSchema(
        "items",
        [
            Column("id", T.INTEGER, nullable=False),
            Column("kind", T.TEXT),
            Column("score", T.INTEGER),
            Column("flag", T.BOOL),
        ],
        primary_key="id",
    )
    table = Table(schema)
    for i in range(1, n + 1):
        table.insert(
            {"id": i, "kind": f"k{i % 5}", "score": i, "flag": i % 2 == 0}
        )
    return table


def make_db(n: int = 60) -> Database:
    table = make_table(n)
    db = Database(Schema([table.schema]))
    for row in table.rows():
        db.insert("items", dict(row))
    return db


def brute(table: Table, pred, params=None):
    bound = params or {}
    return sorted(
        row["id"] for row in table.rows() if pred.test(dict(row), bound)
    )


def scan_ids(table: Table, pred, params=None):
    return sorted(row["id"] for row in table.scan(pred, params))


class TestCacheAccounting:
    def test_second_scan_hits(self):
        table = make_table()
        pred = parse_where("score = 7")
        table.scan(pred)
        misses = table._plans.misses
        hits = table._plans.hits
        table.scan(pred)
        assert table._plans.hits == hits + 1
        assert table._plans.misses == misses

    def test_param_template_reused_across_bindings(self):
        table = make_table()
        pred = parse_where("score = $S")
        assert scan_ids(table, pred, {"S": 5}) == [5]
        hits = table._plans.hits
        assert scan_ids(table, pred, {"S": 9}) == [9]
        assert scan_ids(table, pred, {"S": None}) == []
        assert table._plans.hits == hits + 2  # one template, many bindings

    def test_unhashable_predicate_not_cached(self):
        table = make_table()
        pred = Comparison("=", ColumnRef("score"), Literal([1, 2]))
        before = len(table._plans)
        assert scan_ids(table, pred) == []
        assert len(table._plans) == before

    def test_eviction_bounds_size(self):
        cache = PlanCache()
        for i in range(cache.MAXSIZE + 50):
            cache.store("t", parse_where(f"score = {i}"), None, None)
        assert len(cache) <= cache.MAXSIZE

    def test_bump_invalidates_lookup(self):
        cache = PlanCache()
        pred = parse_where("score = 1")
        cache.store("t", pred, None, None)
        assert cache.lookup("t", pred) is not None
        cache.bump()
        assert cache.lookup("t", pred) is None
        assert len(cache) == 0

    def test_equal_predicates_with_distinct_literal_types_distinct_entries(self):
        # Literal(True) == Literal(1) as frozen dataclasses; the cache must
        # not hand one predicate the other's compiled form.
        table = make_table(10)
        evens = scan_ids(table, parse_where("flag = TRUE"))
        assert evens == [2, 4, 6, 8, 10]
        # flag = 1: int literal is not comparable to a bool column value.
        assert scan_ids(table, parse_where("flag = 1")) == []
        # And again in the opposite fill order, on a fresh cache.
        table2 = make_table(10)
        assert scan_ids(table2, parse_where("flag = 1")) == []
        assert scan_ids(table2, parse_where("flag = TRUE")) == evens


class TestIndexDDLInvalidation:
    def test_create_index_picked_up_by_cached_plan(self):
        table = make_table()
        pred = parse_where("kind = 'k3'")
        expected = brute(table, pred)
        assert scan_ids(table, pred) == expected
        assert table.last_plan == "full"  # kind is unindexed
        table.create_index("kind")
        assert scan_ids(table, pred) == expected
        assert table.last_plan == "eq(kind)"  # stale "no path" plan evicted

    def test_drop_index_never_executes_stale_probe(self):
        table = make_table()
        table.create_index("kind")
        pred = parse_where("kind = 'k2'")
        expected = brute(table, pred)
        assert scan_ids(table, pred) == expected
        assert table.last_plan == "eq(kind)"
        table.drop_index("kind")
        assert scan_ids(table, pred) == expected
        assert table.last_plan == "full"

    def test_drop_absent_index_does_not_invalidate(self):
        table = make_table()
        table.scan(parse_where("score = 1"))
        generation = table._plans.generation
        table.drop_index("kind")  # never existed: no-op
        assert table._plans.generation == generation


class TestSchemaEvolutionInvalidation:
    def test_rename_column_invalidates_plans(self):
        db = make_db()
        pred = parse_where("score = 7")
        assert sorted(r["id"] for r in db.select("items", pred)) == [7]
        generation = db.plans.generation
        apply_change(db, RenameColumn("items", "score", "points"))
        assert db.plans.generation > generation
        renamed = parse_where("points = 7")
        assert sorted(r["id"] for r in db.select("items", renamed)) == [7]

    def test_rename_table_invalidates_plans(self):
        db = make_db()
        db.select("items", parse_where("score = 3"))
        generation = db.plans.generation
        apply_change(db, RenameTable("items", "things"))
        assert db.plans.generation > generation
        assert sorted(r["id"] for r in db.select("things", parse_where("score = 3"))) == [3]

    def test_create_and_drop_table_bump(self):
        db = make_db()
        generation = db.plans.generation
        db.create_table(
            TableSchema(
                "extra",
                [Column("id", T.INTEGER, nullable=False)],
                primary_key="id",
            )
        )
        assert db.plans.generation == generation + 1
        db.drop_table("extra")
        assert db.plans.generation == generation + 2

    def test_tables_share_database_cache(self):
        db = make_db()
        assert db.table("items")._plans is db.plans


class TestExplain:
    def test_explain_reports_cached_and_generation(self):
        db = make_db()
        report = db.explain("items", "score = 5")
        assert report["cached"] is False
        report = db.explain("items", "score = 5")
        assert report["cached"] is True
        assert report["generation"] == db.plans.generation
        assert report["plan"] == "eq(id)" or "score" in report["plan"] or report["plan"] == "full"

    def test_explain_does_not_mutate_results(self):
        db = make_db()
        db.explain("items", "score > 50")
        assert sorted(r["id"] for r in db.select("items", parse_where("score > 50"))) == list(range(51, 61))


class TestCompiledEntrySemantics:
    def test_cached_entry_reuses_compiled_predicate(self):
        table = make_table()
        pred = parse_where("score > 10 AND kind = 'k1'")
        table.scan(pred)
        entry = table._plans.lookup("items", pred)
        assert entry is not None
        assert entry.compiled is compile_predicate(pred)

    def test_subclassed_predicate_scans_via_interpreter(self):
        table = make_table(20)

        class Odd(InList):
            def eval3(self, row, params):
                from repro.storage.predicate import Tristate
                return Tristate.TRUE if row["id"] % 2 else Tristate.FALSE

        pred = Odd(ColumnRef("id"), (Literal(1),))
        assert scan_ids(table, pred) == list(range(1, 21, 2))
        entry = table._plans.lookup("items", pred)
        assert entry is not None and entry.compiled is None
