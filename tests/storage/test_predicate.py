"""Unit tests for the predicate AST and SQL three-valued logic."""

import pytest

from repro.errors import StorageError, UnknownColumnError
from repro.storage.predicate import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Comparison,
    FalseP,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Param,
    Tristate,
    TrueP,
    column_equals,
    column_equals_param,
)

ROW = {"a": 1, "b": "hello", "c": None, "d": 2.5, "e": True}


def t3(pred, row=ROW, params=None):
    return pred.eval3(row, params or {})


class TestComparison:
    def test_equality(self):
        assert column_equals("a", 1).test(ROW)
        assert not column_equals("a", 2).test(ROW)

    def test_ordering(self):
        assert Comparison("<", ColumnRef("a"), Literal(5)).test(ROW)
        assert Comparison(">=", ColumnRef("d"), Literal(2.5)).test(ROW)
        assert not Comparison(">", ColumnRef("a"), Literal(1)).test(ROW)

    def test_null_yields_unknown(self):
        assert t3(column_equals("c", 1)) is Tristate.UNKNOWN
        assert t3(Comparison("!=", ColumnRef("c"), Literal(1))) is Tristate.UNKNOWN
        assert t3(Comparison("=", ColumnRef("a"), Literal(None))) is Tristate.UNKNOWN

    def test_cross_type_equality_is_false_not_error(self):
        assert t3(column_equals("b", 1)) is Tristate.FALSE
        assert t3(Comparison("!=", ColumnRef("b"), Literal(1))) is Tristate.TRUE

    def test_cross_type_ordering_raises(self):
        with pytest.raises(StorageError):
            Comparison("<", ColumnRef("b"), Literal(1)).test(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(StorageError):
            Comparison("~~", ColumnRef("a"), Literal(1))

    def test_missing_column_raises(self):
        with pytest.raises(UnknownColumnError):
            column_equals("ghost", 1).test(ROW)

    def test_params(self):
        pred = column_equals_param("a", "UID")
        assert pred.test(ROW, {"UID": 1})
        assert not pred.test(ROW, {"UID": 9})
        with pytest.raises(StorageError):
            pred.test(ROW)  # unbound

    def test_columns_and_params_introspection(self):
        pred = And(column_equals_param("a", "UID"), column_equals("b", "x"))
        assert pred.columns() == {"a", "b"}
        assert pred.params() == {"UID"}


class TestBooleanLogic:
    def test_and_kleene(self):
        true = TrueP()
        false = FalseP()
        unknown = column_equals("c", 1)  # NULL comparison
        assert t3(And(true, true)) is Tristate.TRUE
        assert t3(And(true, false)) is Tristate.FALSE
        assert t3(And(false, unknown)) is Tristate.FALSE
        assert t3(And(true, unknown)) is Tristate.UNKNOWN

    def test_or_kleene(self):
        true = TrueP()
        false = FalseP()
        unknown = column_equals("c", 1)
        assert t3(Or(false, false)) is Tristate.FALSE
        assert t3(Or(false, true)) is Tristate.TRUE
        assert t3(Or(true, unknown)) is Tristate.TRUE
        assert t3(Or(false, unknown)) is Tristate.UNKNOWN

    def test_not_kleene(self):
        unknown = column_equals("c", 1)
        assert t3(Not(TrueP())) is Tristate.FALSE
        assert t3(Not(FalseP())) is Tristate.TRUE
        assert t3(Not(unknown)) is Tristate.UNKNOWN

    def test_operator_sugar(self):
        pred = column_equals("a", 1) & ~column_equals("b", "nope")
        assert pred.test(ROW)
        pred2 = column_equals("a", 9) | column_equals("e", True)
        assert pred2.test(ROW)

    def test_short_circuit_and_does_not_read_right(self):
        # right side references a missing column; FALSE left short-circuits
        pred = And(FalseP(), column_equals("ghost", 1))
        assert t3(pred) is Tristate.FALSE


class TestInList:
    def test_membership(self):
        pred = InList(ColumnRef("a"), (Literal(1), Literal(2)))
        assert pred.test(ROW)
        assert not InList(ColumnRef("a"), (Literal(3),)).test(ROW)

    def test_negated(self):
        pred = InList(ColumnRef("a"), (Literal(3),), negated=True)
        assert pred.test(ROW)

    def test_null_value_unknown(self):
        pred = InList(ColumnRef("c"), (Literal(1),))
        assert t3(pred) is Tristate.UNKNOWN

    def test_null_item_semantics(self):
        # 1 IN (2, NULL) is UNKNOWN; 1 IN (1, NULL) is TRUE
        unknown = InList(ColumnRef("a"), (Literal(2), Literal(None)))
        assert t3(unknown) is Tristate.UNKNOWN
        found = InList(ColumnRef("a"), (Literal(1), Literal(None)))
        assert t3(found) is Tristate.TRUE
        # NOT IN with a NULL item is never TRUE
        not_in = InList(ColumnRef("a"), (Literal(2), Literal(None)), negated=True)
        assert t3(not_in) is Tristate.UNKNOWN


class TestIsNull:
    def test_is_null(self):
        assert IsNull(ColumnRef("c")).test(ROW)
        assert not IsNull(ColumnRef("a")).test(ROW)

    def test_is_not_null(self):
        assert IsNull(ColumnRef("a"), negated=True).test(ROW)
        assert not IsNull(ColumnRef("c"), negated=True).test(ROW)


class TestLike:
    def test_percent_wildcard(self):
        assert Like(ColumnRef("b"), "hel%").test(ROW)
        assert Like(ColumnRef("b"), "%llo").test(ROW)
        assert not Like(ColumnRef("b"), "help%").test(ROW)

    def test_underscore_wildcard(self):
        assert Like(ColumnRef("b"), "h_llo").test(ROW)
        assert not Like(ColumnRef("b"), "h_lo").test(ROW)

    def test_literal_regex_chars_escaped(self):
        row = {"b": "a.c"}
        assert Like(ColumnRef("b"), "a.c").test(row)
        assert not Like(ColumnRef("b"), "a.c").test({"b": "abc"})

    def test_null_unknown(self):
        assert t3(Like(ColumnRef("c"), "%")) is Tristate.UNKNOWN

    def test_non_string_false(self):
        assert t3(Like(ColumnRef("a"), "%")) is Tristate.FALSE

    def test_negated(self):
        assert Like(ColumnRef("b"), "xyz%", negated=True).test(ROW)


class TestBetween:
    def test_inclusive_bounds(self):
        assert Between(ColumnRef("a"), Literal(1), Literal(3)).test(ROW)
        assert Between(ColumnRef("a"), Literal(0), Literal(1)).test(ROW)
        assert not Between(ColumnRef("a"), Literal(2), Literal(3)).test(ROW)

    def test_negated(self):
        assert Between(ColumnRef("a"), Literal(5), Literal(9), negated=True).test(ROW)

    def test_null_unknown(self):
        assert t3(Between(ColumnRef("c"), Literal(0), Literal(9))) is Tristate.UNKNOWN


class TestArithmetic:
    def test_basic_ops(self):
        expr = BinOp("+", ColumnRef("a"), Literal(2))
        assert Comparison("=", expr, Literal(3)).test(ROW)
        assert Comparison("=", BinOp("*", ColumnRef("d"), Literal(2)), Literal(5.0)).test(ROW)
        assert Comparison("=", BinOp("%", Literal(7), Literal(3)), Literal(1)).test(ROW)

    def test_null_propagates(self):
        expr = BinOp("+", ColumnRef("c"), Literal(1))
        assert t3(Comparison("=", expr, Literal(1))) is Tristate.UNKNOWN

    def test_division_by_zero_is_null(self):
        expr = BinOp("/", Literal(1), Literal(0))
        assert t3(Comparison("=", expr, Literal(1))) is Tristate.UNKNOWN

    def test_non_numeric_raises(self):
        with pytest.raises(StorageError):
            Comparison("=", BinOp("+", ColumnRef("b"), Literal(1)), Literal(0)).test(ROW)


class TestStringification:
    def test_round_trippable_rendering(self):
        pred = And(
            column_equals_param("a", "UID"),
            Or(Like(ColumnRef("b"), "x%"), IsNull(ColumnRef("c"))),
        )
        text = str(pred)
        assert "$UID" in text and "LIKE" in text and "IS NULL" in text

    def test_literal_escaping(self):
        assert str(Literal("it's")) == "'it''s'"
        assert str(Literal(None)) == "NULL"
