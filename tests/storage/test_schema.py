"""Unit tests for schema definitions and cross-table validation."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.storage.schema import Column, FKAction, ForeignKey, Schema, TableSchema
from repro.storage.types import ColumnType as T


def users_table() -> TableSchema:
    return TableSchema(
        "users",
        [Column("id", T.INTEGER, nullable=False), Column("name", T.TEXT, pii=True)],
        primary_key="id",
    )


def posts_table() -> TableSchema:
    return TableSchema(
        "posts",
        [
            Column("id", T.INTEGER, nullable=False),
            Column("uid", T.INTEGER),
            Column("body", T.TEXT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("uid", "users", "id")],
    )


class TestTableSchema:
    def test_column_lookup(self):
        table = users_table()
        assert table.column("name").ctype is T.TEXT
        assert table.has_column("id")
        assert not table.has_column("missing")
        with pytest.raises(UnknownColumnError):
            table.column("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", T.INTEGER, nullable=False), Column("a", T.TEXT)],
                primary_key="a",
            )

    def test_pk_must_exist_and_be_not_null(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", T.INTEGER, nullable=False)], primary_key="b")
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", T.INTEGER, nullable=True)], primary_key="a")

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", T.INTEGER, nullable=False)],
                primary_key="a",
                foreign_keys=[ForeignKey("ghost", "users", "id")],
            )

    def test_two_fks_on_one_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", T.INTEGER, nullable=False), Column("b", T.INTEGER)],
                primary_key="a",
                foreign_keys=[
                    ForeignKey("b", "users", "id"),
                    ForeignKey("b", "posts", "id"),
                ],
            )

    def test_foreign_key_for(self):
        table = posts_table()
        fk = table.foreign_key_for("uid")
        assert fk is not None and fk.parent_table == "users"
        assert table.foreign_key_for("body") is None

    def test_pii_columns(self):
        assert [c.name for c in users_table().pii_columns()] == ["name"]

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("bad name", T.TEXT)

    def test_bad_default_rejected(self):
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            Column("a", T.INTEGER, default="not an int")


class TestNormalizeRow:
    def test_fills_defaults_and_nulls(self):
        table = TableSchema(
            "t",
            [
                Column("id", T.INTEGER, nullable=False),
                Column("n", T.INTEGER, default=7),
                Column("s", T.TEXT),
            ],
            primary_key="id",
        )
        row = table.normalize_row({"id": 1})
        assert row == {"id": 1, "n": 7, "s": None}

    def test_unknown_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            users_table().normalize_row({"id": 1, "ghost": 2})

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError):
            users_table().normalize_row({"name": "x"})  # id missing


class TestSchema:
    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            Schema([users_table(), users_table()])

    def test_table_lookup(self):
        schema = Schema([users_table()])
        assert schema.table("users").name == "users"
        with pytest.raises(UnknownTableError):
            schema.table("ghost")

    def test_validate_missing_parent(self):
        schema = Schema([posts_table()])  # users table absent
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_fk_must_target_pk(self):
        bad = TableSchema(
            "posts",
            [Column("id", T.INTEGER, nullable=False), Column("uid", T.INTEGER)],
            primary_key="id",
            foreign_keys=[ForeignKey("uid", "users", "name")],
        )
        schema = Schema([users_table(), bad])
        with pytest.raises(SchemaError):
            schema.validate()

    def test_referencing(self):
        schema = Schema([users_table(), posts_table()])
        refs = schema.referencing("users")
        assert len(refs) == 1
        assert refs[0][0].name == "posts"
        assert schema.referencing("posts") == []

    def test_fk_graph(self):
        schema = Schema([users_table(), posts_table()])
        graph = schema.fk_graph()
        assert graph.has_edge("posts", "users")
        assert set(graph.nodes) == {"users", "posts"}

    def test_object_type_count(self):
        schema = Schema([users_table(), posts_table()])
        assert schema.object_type_count() == 2

    def test_fk_action_values(self):
        assert FKAction("SET NULL") is FKAction.SET_NULL
        assert FKAction("CASCADE") is FKAction.CASCADE
