"""Unit tests for transactions: undo log, nesting, context manager."""

import pytest

from repro.errors import TransactionError


class TestBasicTransactions:
    def test_rollback_insert(self, blog_db):
        blog_db.begin()
        blog_db.insert("users", {"id": 9, "name": "X", "email": "x@x"})
        blog_db.rollback()
        assert blog_db.get("users", 9) is None

    def test_rollback_update(self, blog_db):
        blog_db.begin()
        blog_db.update_by_pk("users", 1, {"name": "Changed"})
        blog_db.rollback()
        assert blog_db.get("users", 1)["name"] == "Ada"

    def test_rollback_delete_restores_row_and_indexes(self, blog_db):
        blog_db.begin()
        blog_db.delete("comments", "user_id = 2")
        blog_db.rollback()
        assert blog_db.count("comments", "user_id = 2") == 2
        # index-accelerated lookup still works after restore
        rows = blog_db.table("comments").referencing_rows("user_id", 2)
        assert len(rows) == 2

    def test_rollback_cascade_delete(self, blog_db):
        blog_db.begin()
        blog_db.delete_by_pk("posts", 11)  # cascades 2 comments
        blog_db.rollback()
        assert blog_db.get("posts", 11) is not None
        assert blog_db.count("comments", "post_id = 11") == 2
        assert blog_db.check_integrity() == []

    def test_commit_keeps_changes(self, blog_db):
        blog_db.begin()
        blog_db.insert("users", {"id": 9, "name": "X", "email": "x@x"})
        blog_db.commit()
        assert blog_db.get("users", 9) is not None

    def test_commit_without_begin(self, blog_db):
        with pytest.raises(TransactionError):
            blog_db.commit()

    def test_rollback_without_begin(self, blog_db):
        with pytest.raises(TransactionError):
            blog_db.rollback()

    def test_in_transaction_flag(self, blog_db):
        assert not blog_db.in_transaction
        blog_db.begin()
        assert blog_db.in_transaction
        blog_db.commit()
        assert not blog_db.in_transaction


class TestNestedTransactions:
    def test_inner_rollback_keeps_outer(self, blog_db):
        blog_db.begin()
        blog_db.insert("users", {"id": 8, "name": "Outer", "email": "o@x"})
        blog_db.begin()
        blog_db.insert("users", {"id": 9, "name": "Inner", "email": "i@x"})
        blog_db.rollback()  # inner only
        assert blog_db.get("users", 9) is None
        assert blog_db.get("users", 8) is not None
        blog_db.commit()
        assert blog_db.get("users", 8) is not None

    def test_outer_rollback_undoes_committed_inner(self, blog_db):
        blog_db.begin()
        blog_db.begin()
        blog_db.insert("users", {"id": 9, "name": "Inner", "email": "i@x"})
        blog_db.commit()  # merges into outer undo log
        blog_db.rollback()  # outer
        assert blog_db.get("users", 9) is None


class TestContextManager:
    def test_commits_on_success(self, blog_db):
        with blog_db.transaction():
            blog_db.insert("users", {"id": 9, "name": "X", "email": "x@x"})
        assert blog_db.get("users", 9) is not None

    def test_rolls_back_on_exception(self, blog_db):
        with pytest.raises(ValueError):
            with blog_db.transaction():
                blog_db.insert("users", {"id": 9, "name": "X", "email": "x@x"})
                raise ValueError("boom")
        assert blog_db.get("users", 9) is None

    def test_mixed_operations_restored_in_order(self, blog_db):
        with pytest.raises(RuntimeError):
            with blog_db.transaction():
                blog_db.update_by_pk("posts", 10, {"title": "new"})
                blog_db.delete("comments", "post_id = 10")
                blog_db.insert(
                    "comments", {"id": 200, "post_id": 10, "user_id": 1, "body": "x"}
                )
                raise RuntimeError
        assert blog_db.get("posts", 10)["title"] == "p1"
        assert blog_db.count("comments", "post_id = 10") == 1
        assert blog_db.get("comments", 200) is None
        assert blog_db.check_integrity() == []
