"""Unit tests for the write-ahead log: framing, group commit, replay.

The crash-injection suite (byte-level corruption) lives in
``test_crash_injection.py``; this file covers the happy paths and the
transactional semantics of the redo mirror.
"""

from __future__ import annotations

import pytest

from repro import Database, Disguiser, Schema, parse_schema
from repro.errors import StorageError, TransactionError
from repro.storage.persist import save_database
from repro.storage.wal import (
    WalCorruptionError,
    WalDatabase,
    WriteAheadLog,
    default_wal_path,
    open_in_place,
    recover_database,
)

DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII,
  avatar BLOB,
  disabled BOOL NOT NULL DEFAULT FALSE
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id) ON DELETE CASCADE,
  title TEXT NOT NULL,
  score INT NOT NULL DEFAULT 0
);
"""


def fresh_db() -> Database:
    db = Database(Schema(parse_schema(DDL)))
    db.insert_many(
        "users",
        [
            {"id": i, "name": f"u{i}", "email": f"u{i}@x.io", "avatar": bytes([i])}
            for i in range(1, 6)
        ],
    )
    db.insert_many(
        "posts",
        [{"id": i, "user_id": 1 + i % 5, "title": f"p{i}"} for i in range(1, 11)],
    )
    return db


def contents(db: Database) -> dict:
    return {
        name: sorted((dict(r) for r in db.table(name).rows()), key=lambda r: str(r))
        for name in db.table_names
    }


@pytest.fixture
def snap(tmp_path):
    path = tmp_path / "app.jsonl"
    save_database(fresh_db(), path)
    return path


class TestRedoMirror:
    def test_committed_statements_replay_exactly(self, snap):
        with open_in_place(snap, fsync="always") as handle:
            db = handle.db
            with db.transaction():
                db.update_where("posts", "user_id = 1", {"title": "redacted"})
                db.delete_where("posts", "user_id = 2")
                db.insert("users", {"id": 9, "name": "new", "email": "n@x.io"})
                db.update_by_pk("users", 3, {"email": None})
            expected = contents(db)
        assert contents(recover_database(snap)) == expected

    def test_rolled_back_transaction_leaves_no_trace(self, snap):
        with open_in_place(snap) as handle:
            db = handle.db
            db.begin()
            db.insert("users", {"id": 50, "name": "ghost", "email": "g@x"})
            db.delete_where("posts", "user_id = 1")
            db.rollback()
            expected = contents(db)
        recovered = recover_database(snap)
        assert recovered.get("users", 50) is None
        assert contents(recovered) == expected

    def test_nested_savepoints(self, snap):
        with open_in_place(snap, fsync="always") as handle:
            db = handle.db
            db.begin()
            db.insert("users", {"id": 20, "name": "outer", "email": "o@x"})
            db.begin()
            db.insert("users", {"id": 21, "name": "inner-rolled", "email": "i@x"})
            db.rollback()
            db.begin()
            db.insert("users", {"id": 22, "name": "inner-kept", "email": "k@x"})
            db.commit()
            db.commit()
            expected = contents(db)
        recovered = recover_database(snap)
        assert recovered.get("users", 20) is not None
        assert recovered.get("users", 21) is None
        assert recovered.get("users", 22) is not None
        assert contents(recovered) == expected

    def test_cascading_delete_replays(self, snap):
        with open_in_place(snap, fsync="always") as handle:
            db = handle.db
            db.delete_by_pk("users", 1)  # cascades into posts
            expected = contents(db)
        assert contents(recover_database(snap)) == expected

    def test_autocommit_outside_transaction(self, snap):
        with open_in_place(snap) as handle:
            handle.db.insert("users", {"id": 30, "name": "auto", "email": "a@x"})
        assert recover_database(snap).get("users", 30) is not None

    def test_blob_values_round_trip(self, snap):
        with open_in_place(snap, fsync="always") as handle:
            handle.db.update_by_pk("users", 2, {"avatar": b"\x00\xff\x10"})
        assert recover_database(snap).get("users", 2)["avatar"] == b"\x00\xff\x10"

    def test_pk_change_replays(self, snap):
        with open_in_place(snap) as handle:
            db = handle.db
            db.delete_where("posts", "user_id = 3")
            db.update_by_pk("users", 3, {"id": 300})
            expected = contents(db)
        assert contents(recover_database(snap)) == expected

    def test_ddl_replays_and_survives_rollback(self, snap):
        from repro.storage.schema import Column, TableSchema
        from repro.storage.types import ColumnType

        with open_in_place(snap) as handle:
            db = handle.db
            db.begin()
            db.create_table(
                TableSchema(
                    "audit", [Column("id", ColumnType.INTEGER, nullable=False)], "id"
                )
            )
            db.insert("audit", {"id": 1})
            db.rollback()  # DDL survives, the insert does not (mirrors undo log)
        recovered = recover_database(snap)
        assert recovered.has_table("audit")
        assert len(recovered.table("audit")) == 0

    def test_ddl_stays_in_statement_order(self, snap):
        """A transaction that fills a table then drops it must log the
        records in that order — not hoist the DDL ahead of buffered DML
        (drop-then-insert would fail replay on a valid log)."""
        from repro.storage.schema import Column, TableSchema
        from repro.storage.types import ColumnType

        with open_in_place(snap) as handle:
            db = handle.db
            with db.transaction():
                db.create_table(
                    TableSchema(
                        "scratch",
                        [Column("id", ColumnType.INTEGER, nullable=False)],
                        "id",
                    )
                )
                db.insert("scratch", {"id": 1})
                db.drop_table("scratch")
                db.insert("users", {"id": 70, "name": "after-ddl", "email": "a@x"})
            expected = contents(db)
        recovered = recover_database(snap)
        assert not recovered.has_table("scratch")
        assert recovered.get("users", 70) is not None
        assert contents(recovered) == expected

    def test_rolled_back_ddl_keeps_relative_order(self, snap):
        """Two DDL records in a rolled-back transaction survive in order:
        create-then-drop must not replay as drop-then-create."""
        from repro.storage.schema import Column, TableSchema
        from repro.storage.types import ColumnType

        with open_in_place(snap) as handle:
            db = handle.db
            db.begin()
            db.create_table(
                TableSchema(
                    "temp", [Column("id", ColumnType.INTEGER, nullable=False)], "id"
                )
            )
            db.insert("temp", {"id": 1})
            db.drop_table("temp")
            db.rollback()
            expected = contents(db)
        recovered = recover_database(snap)
        assert not recovered.has_table("temp")
        assert contents(recovered) == expected

    def test_id_watermark_restored(self, snap):
        with open_in_place(snap) as handle:
            db = handle.db
            allocated = db.next_id("users")
            db.insert("users", {"id": allocated, "name": "hi", "email": "h@x"})
            db.delete_by_pk("users", allocated)
        recovered = recover_database(snap)
        assert recovered.next_id("users") > allocated

    def test_disguise_apply_reveal_cycle_recovers(self, snap, tmp_path):
        from repro import Decorrelate, Default, DisguiseSpec, FakeName, Remove, TableDisguise
        from repro.vault.file_vault import FileVault

        spec = DisguiseSpec(
            "WalScrub",
            [
                TableDisguise(
                    "users",
                    transformations=[Remove("id = $UID")],
                    generate_placeholder={
                        "name": FakeName(),
                        "email": Default(None),
                        "disabled": Default(True),
                    },
                ),
                TableDisguise(
                    "posts",
                    transformations=[
                        Decorrelate("user_id = $UID", foreign_key="user_id")
                    ],
                ),
            ],
        )
        with open_in_place(snap, fsync="always") as handle:
            engine = Disguiser(handle.db, vault=FileVault(tmp_path / "v"), seed=5)
            engine.apply(spec, uid=2)
            expected = contents(handle.db)
        recovered = recover_database(snap)
        assert contents(recovered) == expected
        recovered.assert_integrity()
        # Continue the lifecycle on the recovered database: reveal works.
        with WalDatabase(snap) as handle:
            engine = Disguiser(handle.db, vault=FileVault(tmp_path / "v"), seed=5)
            engine.register(spec)
            engine.reveal(1)
            assert handle.db.get("users", 2)["name"] == "u2"


class TestGroupCommit:
    def test_fsync_policies_sync_counts(self, snap):
        for policy, expect in (("always", lambda s: s >= 5), ("never", lambda s: s == 0)):
            wal_path = default_wal_path(snap)
            wal_path.unlink(missing_ok=True)
            with open_in_place(snap, fsync=policy) as handle:
                for i in range(5):
                    handle.db.update_by_pk("users", 1, {"name": f"v{i}"})
                assert expect(handle.wal.syncs), (policy, handle.wal.syncs)

    def test_batch_policy_groups_syncs(self, snap):
        with open_in_place(snap, fsync="batch", batch_commits=4) as handle:
            for i in range(8):
                handle.db.update_by_pk("users", 1, {"name": f"v{i}"})
            assert handle.wal.syncs == 2
        assert recover_database(snap).get("users", 1)["name"] == "v7"

    def test_bad_policy_rejected(self, snap):
        with pytest.raises(StorageError):
            open_in_place(snap, fsync="sometimes")

    def test_commit_units_accumulate(self, snap):
        with open_in_place(snap) as handle:
            db = handle.db
            with db.transaction():
                db.update_by_pk("users", 1, {"name": "a"})
                db.update_by_pk("users", 2, {"name": "b"})
            db.update_by_pk("users", 3, {"name": "c"})
        units = WriteAheadLog.read_units(default_wal_path(snap))
        assert [len(u) for u in units] == [2, 1]


class TestCheckpoint:
    def test_checkpoint_truncates_and_preserves_state(self, snap):
        handle = open_in_place(snap)
        handle.db.insert("users", {"id": 40, "name": "ck", "email": "c@x"})
        wal_path = default_wal_path(snap)
        before = wal_path.stat().st_size
        handle.checkpoint()
        assert wal_path.stat().st_size < before
        assert WriteAheadLog.read_units(wal_path) == []
        handle.db.insert("users", {"id": 41, "name": "post", "email": "p@x"})
        handle.close()
        recovered = recover_database(snap)
        assert recovered.get("users", 40) is not None
        assert recovered.get("users", 41) is not None

    def test_checkpoint_mid_transaction_rejected(self, snap):
        with open_in_place(snap) as handle:
            handle.db.begin()
            with pytest.raises(StorageError):
                handle.checkpoint()
            handle.db.rollback()

    def test_hook_attach_mid_transaction_rejected(self):
        db = fresh_db()
        db.begin()
        with pytest.raises(TransactionError):
            db.set_redo_hook(object())
        db.rollback()


class TestBootstrap:
    def test_recover_without_snapshot_bootstraps_from_ddl(self, tmp_path):
        snap = tmp_path / "new.jsonl"
        with open_in_place(snap) as handle:
            for table_schema in parse_schema(DDL):
                handle.db.create_table(table_schema)
            handle.db.insert("users", {"id": 1, "name": "first", "email": "f@x"})
        assert not snap.exists()
        recovered = recover_database(snap)
        assert recovered.get("users", 1)["name"] == "first"

    def test_missing_wal_is_fine(self, snap):
        recovered = recover_database(snap)
        assert contents(recovered) == contents(fresh_db())

    def test_unknown_redo_op_raises(self, snap, tmp_path):
        wal = WriteAheadLog(default_wal_path(snap))
        wal.on_statement({"op": "insert", "table": "users", "rows": []})
        wal.close()
        # Tamper: a structurally valid log whose record names a bogus op.
        from repro.storage import wal as wal_mod

        units = WriteAheadLog.read_units(default_wal_path(snap))
        units[0][0]["op"] = "explode"
        with pytest.raises(WalCorruptionError):
            wal_mod.replay_into(fresh_db(), units)


class TestDeferSyncScope:
    def test_defer_sync_is_thread_scoped(self, tmp_path):
        """One thread deferring its fsyncs must not strip another's policy.

        Service workers set defer_sync and later meet the commit_barrier
        leader fsync; a non-worker thread committing through the same log
        never calls the barrier, so its fsync='always' durability has to
        survive the workers' opt-in.
        """
        import threading

        wal = WriteAheadLog(tmp_path / "db.wal", fsync="always")
        done = threading.Event()

        def worker():
            wal.defer_sync = True
            wal.on_statement({"op": "insert", "table": "users", "rows": []})
            done.set()

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert done.wait(5.0)
        thread.join(5.0)
        assert wal.syncs == 0            # the opted-in thread deferred
        assert wal.defer_sync is False   # the flag did not leak here
        wal.on_statement({"op": "insert", "table": "users", "rows": []})
        assert wal.syncs == 1            # this thread's policy still holds
        wal.sync()
        wal.close()
