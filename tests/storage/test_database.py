"""Unit tests for the Database: statements, FK enforcement, integrity."""

import pytest

from repro.errors import (
    ForeignKeyError,
    IntegrityViolation,
    NoSuchRowError,
    UnknownTableError,
)
from repro.storage.database import Database, QueryStats
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.types import ColumnType as T


class TestStatements:
    def test_select_where_string(self, blog_db):
        rows = blog_db.select("posts", "user_id = 2")
        assert sorted(r["id"] for r in rows) == [11, 12]

    def test_select_with_params(self, blog_db):
        rows = blog_db.select("posts", "user_id = $UID", {"UID": 3})
        assert [r["id"] for r in rows] == [13]

    def test_get_point_lookup(self, blog_db):
        assert blog_db.get("users", 2)["name"] == "Bea"
        assert blog_db.get("users", 99) is None

    def test_count(self, blog_db):
        assert blog_db.count("comments", "user_id = 2") == 2
        assert blog_db.count("comments") == 4

    def test_insert_returns_normalized_row(self, blog_db):
        row = blog_db.insert("posts", {"id": 20, "user_id": 1, "title": "t"})
        assert row["score"] == 0 and row["body"] is None

    def test_update_by_predicate(self, blog_db):
        n = blog_db.update("posts", "user_id = 2", {"score": 42})
        assert n == 2
        assert all(r["score"] == 42 for r in blog_db.select("posts", "user_id = 2"))

    def test_update_by_pk(self, blog_db):
        new = blog_db.update_by_pk("users", 1, {"name": "Ada L"})
        assert new["name"] == "Ada L"
        with pytest.raises(NoSuchRowError):
            blog_db.update_by_pk("users", 99, {"name": "x"})

    def test_delete_by_predicate(self, blog_db):
        n = blog_db.delete("comments", "user_id = 2")
        assert n == 2
        assert blog_db.count("comments") == 2

    def test_unknown_table(self, blog_db):
        with pytest.raises(UnknownTableError):
            blog_db.select("ghosts")

    def test_row_counts_and_total(self, blog_db):
        counts = blog_db.row_counts()
        assert counts["users"] == 3 and counts["posts"] == 4
        assert blog_db.total_rows() == 3 + 4 + 4 + 2

    def test_next_id(self, blog_db):
        assert blog_db.next_id("users") == 4
        assert blog_db.next_id("posts") == 14
        empty = Database(
            Schema([TableSchema("t", [Column("id", T.INTEGER, nullable=False)], "id")])
        )
        assert empty.next_id("t") == 1


class TestForeignKeys:
    def test_insert_dangling_fk_rejected(self, blog_db):
        with pytest.raises(ForeignKeyError):
            blog_db.insert("posts", {"id": 30, "user_id": 99, "title": "t"})

    def test_insert_null_fk_allowed_when_nullable(self, blog_db):
        # follows has NOT NULL fks; use a table with nullable fk via schema
        blog_db.insert("posts", {"id": 31, "user_id": 1, "title": "ok"})

    def test_update_to_dangling_fk_rejected(self, blog_db):
        with pytest.raises(ForeignKeyError):
            blog_db.update_by_pk("posts", 10, {"user_id": 99})

    def test_delete_restrict(self, blog_db):
        # users referenced by posts (RESTRICT)
        with pytest.raises(ForeignKeyError):
            blog_db.delete_by_pk("users", 1)

    def test_delete_cascade(self, blog_db):
        # comments cascade with their post
        assert blog_db.count("comments", "post_id = 11") == 2
        blog_db.delete_by_pk("posts", 11)
        assert blog_db.count("comments", "post_id = 11") == 0

    def test_pk_change_blocked_while_referenced(self, blog_db):
        with pytest.raises(ForeignKeyError):
            blog_db.update_by_pk("users", 2, {"id": 20})

    def test_set_null_action(self):
        schema = Schema(
            [
                TableSchema(
                    "users", [Column("id", T.INTEGER, nullable=False)], "id"
                ),
                TableSchema(
                    "posts",
                    [
                        Column("id", T.INTEGER, nullable=False),
                        Column("uid", T.INTEGER),
                    ],
                    "id",
                    [__import__("repro.storage.schema", fromlist=["ForeignKey"]).ForeignKey(
                        "uid", "users", "id",
                        __import__("repro.storage.schema", fromlist=["FKAction"]).FKAction.SET_NULL,
                    )],
                ),
            ]
        )
        db = Database(schema)
        db.insert("users", {"id": 1})
        db.insert("posts", {"id": 10, "uid": 1})
        db.delete_by_pk("users", 1)
        assert db.get("posts", 10)["uid"] is None


class TestIntegrityChecker:
    def test_clean_database(self, blog_db):
        assert blog_db.check_integrity() == []
        blog_db.assert_integrity()

    def test_detects_dangles_after_raw_table_mutation(self, blog_db):
        # Bypass statement-level checks via the raw Table API.
        blog_db.table("posts").update_by_pk(10, {"user_id": 999})
        problems = blog_db.check_integrity()
        assert len(problems) == 1 and "posts.user_id" in problems[0]
        with pytest.raises(IntegrityViolation):
            blog_db.assert_integrity()


class TestQueryStats:
    def test_counts_by_kind(self, blog_db):
        blog_db.stats.reset()
        blog_db.select("users")
        blog_db.insert("users", {"id": 9, "name": "X", "email": "x@x"})
        blog_db.update_by_pk("users", 9, {"name": "Y"})
        blog_db.delete_by_pk("users", 9)
        stats = blog_db.stats
        assert stats.selects >= 1
        assert stats.inserts == 1
        assert stats.updates == 1
        assert stats.deletes == 1
        assert stats.total == stats.selects + stats.writes

    def test_snapshot_delta(self, blog_db):
        before = blog_db.stats.snapshot()
        blog_db.select("users")
        blog_db.select("posts")
        delta = blog_db.stats.delta(before)
        assert delta.selects == 2 and delta.writes == 0

    def test_reset(self):
        stats = QueryStats(1, 2, 3, 4)
        stats.reset()
        assert stats.total == 0


class TestDDLOperations:
    def test_create_and_drop_table(self, blog_db):
        table = TableSchema("extra", [Column("id", T.INTEGER, nullable=False)], "id")
        blog_db.create_table(table)
        assert blog_db.has_table("extra")
        blog_db.insert("extra", {"id": 1})
        blog_db.drop_table("extra")
        assert not blog_db.has_table("extra")
        with pytest.raises(UnknownTableError):
            blog_db.drop_table("extra")
