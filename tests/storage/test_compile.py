"""Differential tests: compiled predicates must match the interpreter.

The closure compiler (:mod:`repro.storage.compile`) re-implements the
whole predicate language, so its correctness bar is *bit-identical
observable behaviour*: for any predicate, row, and parameter binding, the
compiled form must produce the same tristate result — or raise the same
exception type with the same message — as ``Predicate.eval3``. The fuzz
suite below checks that over hundreds of random (predicate, row) cases
including NULLs, parameters, arithmetic, and LIKE; a second property test
checks plan equivalence end-to-end (cost-based planned scans == forced
full scans).
"""

import random

import pytest

from repro.errors import StorageError, UnknownColumnError
from repro.storage.compile import (
    CompiledPredicate,
    PlanCache,
    clear_compile_cache,
    compile_predicate,
    matcher,
)
from repro.storage.predicate import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Comparison,
    FalseP,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Tristate,
    TrueP,
)
from repro.storage.sql import parse_where

from tests.storage.test_planner import make_table


def outcome(fn):
    """(kind, payload) for a call: its result, or its exception type+text."""
    try:
        return "ok", fn()
    except Exception as exc:  # noqa: BLE001 - parity includes exact type
        return "err", (type(exc), str(exc))


def assert_parity(pred: Predicate, row, params):
    compiled = compile_predicate(pred)
    assert compiled is not None, f"no compiled form for {pred!r}"
    want = outcome(lambda: pred.eval3(row, params))
    got = outcome(lambda: compiled.eval3(row, params))
    assert got == want, (
        f"divergence on {pred!r} row={row!r} params={params!r}:\n"
        f"interpreted={want!r}\ncompiled={got!r}\n--- source ---\n{compiled.source}"
    )


class TestNodeSemantics:
    """Hand-picked cases per node type, covering the tristate edges."""

    @pytest.mark.parametrize(
        "where,row,params,expected",
        [
            ("uid = 3", {"uid": 3}, {}, Tristate.TRUE),
            ("uid = 3", {"uid": 4}, {}, Tristate.FALSE),
            ("uid = 3", {"uid": None}, {}, Tristate.UNKNOWN),
            ("uid != 3", {"uid": None}, {}, Tristate.UNKNOWN),
            # cross-type equality is FALSE, inequality TRUE (never an error)
            ("uid = 'x'", {"uid": 3}, {}, Tristate.FALSE),
            ("uid != 'x'", {"uid": 3}, {}, Tristate.TRUE),
            # bool never equals int per is_comparable
            ("flag = 1", {"flag": True}, {}, Tristate.FALSE),
            ("flag = TRUE", {"flag": True}, {}, Tristate.TRUE),
            ("uid = $U", {"uid": 7}, {"U": 7}, Tristate.TRUE),
            ("uid = $U", {"uid": 7}, {"U": None}, Tristate.UNKNOWN),
            # AND/OR Kleene truth table spot checks
            ("uid = 1 AND score = 2", {"uid": 1, "score": None}, {}, Tristate.UNKNOWN),
            ("uid = 1 AND score = 2", {"uid": 2, "score": None}, {}, Tristate.FALSE),
            ("uid = 1 OR score = 2", {"uid": None, "score": 2}, {}, Tristate.TRUE),
            ("uid = 1 OR score = 2", {"uid": None, "score": 3}, {}, Tristate.UNKNOWN),
            ("NOT uid = 1", {"uid": None}, {}, Tristate.UNKNOWN),
            # IN with NULL items: found beats NULL, NULL beats not-found
            ("uid IN (1, NULL, 3)", {"uid": 3}, {}, Tristate.TRUE),
            ("uid IN (1, NULL, 3)", {"uid": 4}, {}, Tristate.UNKNOWN),
            ("uid IN (1, 3)", {"uid": 4}, {}, Tristate.FALSE),
            ("uid NOT IN (1, NULL)", {"uid": 1}, {}, Tristate.FALSE),
            ("uid NOT IN (1, NULL)", {"uid": 2}, {}, Tristate.UNKNOWN),
            ("uid IN (1, NULL)", {"uid": None}, {}, Tristate.UNKNOWN),
            # IS NULL is never UNKNOWN
            ("uid IS NULL", {"uid": None}, {}, Tristate.TRUE),
            ("uid IS NOT NULL", {"uid": None}, {}, Tristate.FALSE),
            # LIKE: non-string operand is FALSE even under NOT LIKE
            ("title LIKE 'a%'", {"title": "abc"}, {}, Tristate.TRUE),
            ("title LIKE 'a_c'", {"title": "abc"}, {}, Tristate.TRUE),
            ("title LIKE 'a%'", {"title": None}, {}, Tristate.UNKNOWN),
            ("title LIKE 'a%'", {"title": 5}, {}, Tristate.FALSE),
            ("title NOT LIKE 'a%'", {"title": 5}, {}, Tristate.FALSE),
            ("title NOT LIKE 'a%'", {"title": "zzz"}, {}, Tristate.TRUE),
            # BETWEEN (and its NOT) with NULL endpoints/operands
            ("score BETWEEN 1 AND 10", {"score": 5}, {}, Tristate.TRUE),
            ("score BETWEEN 1 AND 10", {"score": 11}, {}, Tristate.FALSE),
            ("score BETWEEN 1 AND 10", {"score": None}, {}, Tristate.UNKNOWN),
            ("score NOT BETWEEN 1 AND 10", {"score": 0}, {}, Tristate.TRUE),
            ("score BETWEEN 1 AND NULL", {"score": 0}, {}, Tristate.FALSE),
            ("score BETWEEN 1 AND NULL", {"score": 5}, {}, Tristate.UNKNOWN),
            # arithmetic: NULL-propagating, / and % by zero yield NULL
            ("score + 1 = 10", {"score": 9}, {}, Tristate.TRUE),
            ("score + 1 = 10", {"score": None}, {}, Tristate.UNKNOWN),
            ("score / 0 = 1", {"score": 9}, {}, Tristate.UNKNOWN),
            ("score % 0 = 1", {"score": 9}, {}, Tristate.UNKNOWN),
            ("score * 2 + 1 = 7", {"score": 3}, {}, Tristate.TRUE),
            ("10 - score >= 8", {"score": 2}, {}, Tristate.TRUE),
            ("TRUE", {}, {}, Tristate.TRUE),
            ("FALSE", {}, {}, Tristate.FALSE),
        ],
    )
    def test_tristate(self, where, row, params, expected):
        pred = parse_where(where)
        assert pred.eval3(row, params) is expected  # fixture sanity
        assert_parity(pred, row, params)

    @pytest.mark.parametrize(
        "where,row,params,exc",
        [
            # ordering across types raises; equality does not
            ("uid > 'x'", {"uid": 3}, {}, StorageError),
            ("uid <= $U", {"uid": 3}, {"U": "s"}, StorageError),
            # arithmetic on non-numeric raises
            ("title + 1 = 2", {"title": "x"}, {}, StorageError),
            # unbound parameter raises where the interpreter would evaluate it
            ("uid = $MISSING", {"uid": 3}, {}, StorageError),
            # missing column raises UnknownColumnError
            ("nope = 1", {"uid": 3}, {}, UnknownColumnError),
        ],
    )
    def test_error_parity(self, where, row, params, exc):
        pred = parse_where(where)
        with pytest.raises(exc):
            pred.eval3(row, params)
        assert_parity(pred, row, params)

    def test_short_circuit_suppresses_errors_identically(self):
        # FALSE AND <raising> never evaluates the right arm in either form.
        for where in ("FALSE AND uid = $MISSING", "uid = 1 OR score = $MISSING"):
            assert_parity(parse_where(where), {"uid": 1, "score": 2}, {})

    def test_params_bound_late(self):
        compiled = compile_predicate(parse_where("uid = $U"))
        assert compiled.bind({"U": 1})({"uid": 1}) is True
        assert compiled.bind({"U": 2})({"uid": 1}) is False
        assert compiled.bind({"U": None})({"uid": 1}) is None

    def test_unsupported_subclass_falls_back(self):
        class Weird(Predicate):
            def eval3(self, row, params):
                return Tristate.TRUE

        assert compile_predicate(Weird()) is None
        assert compile_predicate(And(TrueP(), Weird())) is None
        # matcher() still works via the interpreter fallback
        assert matcher(Weird())({}) is True

    def test_unhashable_literal_compiles_uncached(self):
        pred = Comparison("=", ColumnRef("tags"), Literal([1, 2]))
        compiled = compile_predicate(pred)
        assert isinstance(compiled, CompiledPredicate)
        # Same-type values are comparable; parity with the interpreter.
        assert_parity(pred, {"tags": [1, 2]}, {})
        assert_parity(pred, {"tags": [3]}, {})
        assert_parity(pred, {"tags": "x"}, {})

    def test_equal_predicates_with_distinct_literal_types_not_conflated(self):
        # True == 1 == 1.0 (with matching hashes) makes these predicates
        # *equal* as frozen dataclasses; the compile cache must still give
        # each its own type-specialized form.
        clear_compile_cache()
        row = {"flag": True}
        for text, expected in (
            ("flag = 1", Tristate.FALSE),
            ("flag = TRUE", Tristate.TRUE),
            ("flag = 1.0", Tristate.FALSE),
        ):
            pred = parse_where(text)
            assert pred.eval3(row, {}) is expected
            assert_parity(pred, row, {})

    def test_compile_cache_reuses_objects(self):
        clear_compile_cache()
        a = compile_predicate(parse_where("uid = 3 AND score > 1"))
        b = compile_predicate(parse_where("uid = 3 AND score > 1"))
        assert a is b

    def test_nonfinite_literals_round_trip(self):
        for value in (float("inf"), float("-inf"), 1.5, -0.0):
            pred = Comparison(">", ColumnRef("x"), Literal(value))
            assert_parity(pred, {"x": 1.0}, {})


# --------------------------------------------------------------------------
# Differential fuzz: >= 500 random (predicate, row) cases
# --------------------------------------------------------------------------

_COLUMNS = ("id", "uid", "score", "title", "ratio")
_STRINGS = ("alpha", "beta", "a%b", "", "Alpha")
_PATTERNS = ("a%", "%a", "_lpha", "%", "a_c", "alpha")


def _fuzz_expr(rng: random.Random, depth: int):
    kind = rng.randrange(8)
    if kind < 3:
        return ColumnRef(rng.choice(_COLUMNS))
    if kind < 5:
        value = rng.choice(
            [None, True, False, rng.randrange(-20, 120),
             rng.uniform(-5, 5), rng.choice(_STRINGS)]
        )
        return Literal(value)
    if kind == 5:
        return Param(rng.choice(["U", "V", "MISSING"]))
    if depth <= 0:
        return Literal(rng.randrange(-5, 50))
    return BinOp(
        rng.choice(["+", "-", "*", "/", "%"]),
        _fuzz_expr(rng, depth - 1),
        _fuzz_expr(rng, depth - 1),
    )


def _fuzz_pred(rng: random.Random, depth: int):
    if depth <= 0:
        kind = rng.randrange(7)
        if kind == 0:
            return rng.choice([TrueP(), FalseP()])
        if kind == 1:
            return IsNull(_fuzz_expr(rng, 1), negated=rng.random() < 0.5)
        if kind == 2:
            return Like(
                _fuzz_expr(rng, 0), rng.choice(_PATTERNS), negated=rng.random() < 0.5
            )
        if kind == 3:
            items = tuple(_fuzz_expr(rng, 0) for _ in range(rng.randrange(0, 4)))
            return InList(_fuzz_expr(rng, 1), items, negated=rng.random() < 0.5)
        if kind == 4:
            return Between(
                _fuzz_expr(rng, 1),
                _fuzz_expr(rng, 0),
                _fuzz_expr(rng, 0),
                negated=rng.random() < 0.5,
            )
        return Comparison(
            rng.choice(["=", "!=", "<", "<=", ">", ">="]),
            _fuzz_expr(rng, 1),
            _fuzz_expr(rng, 1),
        )
    kind = rng.randrange(4)
    if kind == 0:
        return Not(_fuzz_pred(rng, depth - 1))
    op = And if kind == 1 else Or
    return op(_fuzz_pred(rng, depth - 1), _fuzz_pred(rng, depth - 1))


def _fuzz_row(rng: random.Random):
    row = {}
    for col in _COLUMNS:
        if rng.random() < 0.15 and col != "id":
            continue  # sometimes the column is absent entirely
        row[col] = rng.choice(
            [None, rng.randrange(-10, 120), rng.uniform(-3, 3),
             rng.choice(_STRINGS), True, False]
        )
    return row


def test_differential_fuzz_interpreted_vs_compiled():
    rng = random.Random(20260808)
    cases = 0
    for trial in range(220):
        pred = _fuzz_pred(rng, rng.randrange(0, 4))
        params = {"U": rng.choice([None, 3, "alpha", True, 2.5]), "V": rng.randrange(50)}
        for _ in range(3):
            assert_parity(pred, _fuzz_row(rng), params)
            cases += 1
    assert cases >= 500


def test_differential_fuzz_against_table_rows():
    """Same fuzz over realistic stored rows via Table.scan's two filters."""
    table = make_table(n=120, seed=5)
    rows = [dict(row) for row in table.rows()]
    rng = random.Random(77)
    cases = 0
    for _ in range(150):
        pred = _fuzz_pred(rng, rng.randrange(0, 3))
        params = {"U": rng.choice([None, 7, "beta"]), "V": rng.randrange(100)}
        for row in rng.sample(rows, 4):
            assert_parity(pred, row, params)
            cases += 1
    assert cases >= 500


# --------------------------------------------------------------------------
# Plan equivalence: cost-based planned scans == forced full scans
# --------------------------------------------------------------------------


def test_plan_equivalence_random_predicates():
    from tests.storage.test_planner import _random_predicate

    table = make_table(n=400, seed=13)
    rng = random.Random(4242)
    params = {"U": 9}
    for trial in range(250):
        pred = _random_predicate(rng, depth=rng.randrange(1, 4))
        planned = sorted(row["id"] for row in table.scan(pred, params))
        brute = sorted(
            row["id"] for row in table.rows() if pred.test(dict(row), params)
        )
        assert planned == brute, f"trial {trial}: {pred!r} plan={table.last_plan}"


def test_plan_equivalence_reports_estimates():
    table = make_table(n=400, seed=13)
    report = table.explain(parse_where("uid = 3"))
    assert report["plan"] == "eq(uid)"
    assert report["table_rows"] == 400
    assert report["estimated_rows"] > 0
    assert report["compiled"] is True
    # scan records what explain predicted
    table.scan(parse_where("uid = 3"))
    assert table.last_plan == "eq(uid)"
    assert table.last_estimate == report["estimated_rows"]


def test_plan_cache_standalone_table_store_and_hit():
    cache = PlanCache()
    table = make_table(n=50)
    table._plans = cache
    pred = parse_where("uid = 1")
    table.scan(pred)
    misses = cache.misses
    table.scan(pred)
    assert cache.hits >= 1
    assert cache.misses == misses  # second scan did not miss
