"""Property tests: the query layer agrees with a reference implementation."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage.database import Database
from repro.storage.query import parse_select
from repro.storage.schema import Column, ForeignKey, Schema, TableSchema
from repro.storage.types import ColumnType as T


def make_db(users, posts) -> Database:
    schema = Schema(
        [
            TableSchema(
                "users",
                [Column("id", T.INTEGER, nullable=False), Column("score", T.INTEGER)],
                "id",
            ),
            TableSchema(
                "posts",
                [
                    Column("id", T.INTEGER, nullable=False),
                    Column("uid", T.INTEGER),
                    Column("rank", T.INTEGER),
                ],
                "id",
                [ForeignKey("uid", "users", "id")],
            ),
        ]
    )
    db = Database(schema)
    for pk, score in users:
        db.insert("users", {"id": pk, "score": score})
    user_ids = [pk for pk, _ in users]
    for pk, uid_index, rank in posts:
        uid = user_ids[uid_index % len(user_ids)] if user_ids else None
        db.insert("posts", {"id": pk, "uid": uid, "rank": rank})
    return db


users_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.one_of(st.none(), st.integers(-5, 5))),
    min_size=1,
    max_size=8,
    unique_by=lambda t: t[0],
)
posts_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 7), st.integers(-5, 5)),
    max_size=12,
    unique_by=lambda t: t[0],
)


@settings(max_examples=60)
@given(users=users_strategy, posts=posts_strategy, threshold=st.integers(-5, 5))
def test_join_where_matches_reference(users, posts, threshold):
    db = make_db(users, posts)
    sql = (
        "SELECT p.id FROM posts p JOIN users u ON p.uid = u.id "
        "WHERE u.score > $T"
    )
    got = sorted(r["id"] for r in parse_select(sql).run(db, {"T": threshold}))
    score_of = {pk: score for pk, score in users}
    expected = sorted(
        row["id"]
        for row in db.table("posts").rows()
        if row["uid"] is not None
        and score_of.get(row["uid"]) is not None
        and score_of[row["uid"]] > threshold
    )
    assert got == expected


@settings(max_examples=60)
@given(users=users_strategy, posts=posts_strategy, limit=st.integers(0, 6),
       offset=st.integers(0, 4))
def test_order_limit_offset_matches_reference(users, posts, limit, offset):
    db = make_db(users, posts)
    sql = f"SELECT id FROM posts ORDER BY rank DESC, id LIMIT {limit} OFFSET {offset}"
    got = [r["id"] for r in parse_select(sql).run(db)]
    reference = sorted(
        db.table("posts").rows(),
        key=lambda row: (-row["rank"], row["id"]),
    )
    expected = [row["id"] for row in reference][offset : offset + limit]
    assert got == expected


@settings(max_examples=60)
@given(users=users_strategy, posts=posts_strategy)
def test_count_star_matches_len(users, posts):
    db = make_db(users, posts)
    count = parse_select("SELECT COUNT(*) FROM posts").run(db)
    assert count == len(posts)
