"""Planner correctness and batched-statement rollback tests.

The planner may only ever *narrow* the candidate rows a predicate is
evaluated against, so the gold standard is equivalence with a full scan.
The property test below generates random predicates over every shape the
planner understands (and several it does not) and checks the planned
``scan()`` returns exactly the rows a brute-force filter selects.
"""

import random

import pytest

from repro.errors import ForeignKeyError, NoSuchRowError
from repro.storage.database import Database
from repro.storage.planner import (
    EmptyPath,
    EqProbe,
    MultiProbe,
    RangeProbe,
    UnionPath,
    extract_path,
)
from repro.storage.predicate import (
    And,
    Between,
    ColumnRef,
    Comparison,
    FalseP,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
)
from repro.storage.schema import Column, FKAction, ForeignKey, Schema, TableSchema
from repro.storage.sql import parse_where
from repro.storage.table import Table
from repro.storage.types import ColumnType as T


def make_table(n: int = 200, seed: int = 7) -> Table:
    schema = TableSchema(
        "posts",
        [
            Column("id", T.INTEGER, nullable=False),
            Column("uid", T.INTEGER),
            Column("score", T.INTEGER, default=0),
            Column("title", T.TEXT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("uid", "users", "id")],
    )
    table = Table(schema)
    table.create_index("score")
    rng = random.Random(seed)
    for i in range(1, n + 1):
        table.insert(
            {
                "id": i,
                "uid": rng.choice([None, *range(20)]),
                "score": rng.randrange(100),
                "title": rng.choice(["alpha", "beta", "gamma", None]),
            }
        )
    return table


def full_scan(table: Table, pred, params=None):
    bound = params or {}
    return [dict(row) for row in table.rows() if pred.test(dict(row), bound)]


class TestExtractPath:
    INDEXED = {"id", "uid", "score"}.__contains__

    def test_equality_probe(self):
        path = extract_path(parse_where("uid = 3"), {}, self.INDEXED)
        assert path == EqProbe("uid", 3)

    def test_param_equality_probe(self):
        path = extract_path(parse_where("uid = $U"), {"U": 9}, self.INDEXED)
        assert path == EqProbe("uid", 9)

    def test_reversed_operands(self):
        path = extract_path(parse_where("5 <= score"), {}, self.INDEXED)
        assert path == RangeProbe("score", lo=5)

    def test_in_list_probe(self):
        path = extract_path(parse_where("uid IN (1, 2, 3)"), {}, self.INDEXED)
        assert path == MultiProbe("uid", (1, 2, 3))

    def test_or_of_equalities_unions(self):
        path = extract_path(
            parse_where("uid = 1 OR score = 2 OR uid = 3"), {}, self.INDEXED
        )
        assert isinstance(path, UnionPath)
        assert len(path.paths) == 3

    def test_or_with_unplannable_arm_scans(self):
        assert (
            extract_path(parse_where("uid = 1 OR title = 'x'"), {}, self.INDEXED)
            is None
        )

    def test_range_probe(self):
        path = extract_path(parse_where("score > 10"), {}, self.INDEXED)
        assert path == RangeProbe("score", lo=10, lo_incl=False)

    def test_between_probe(self):
        path = extract_path(
            parse_where("score BETWEEN 10 AND 20"), {}, self.INDEXED
        )
        assert path == RangeProbe("score", lo=10, hi=20)

    def test_and_picks_cheapest_arm(self):
        path = extract_path(
            parse_where("score > 10 AND uid = 3"), {}, self.INDEXED
        )
        assert path == EqProbe("uid", 3)

    def test_false_is_empty(self):
        assert isinstance(extract_path(FalseP(), {}, self.INDEXED), EmptyPath)

    def test_eq_null_is_empty(self):
        path = extract_path(
            Comparison("=", ColumnRef("uid"), Literal(None)), {}, self.INDEXED
        )
        assert isinstance(path, EmptyPath)

    def test_is_null_probes_null_bucket(self):
        path = extract_path(parse_where("uid IS NULL"), {}, self.INDEXED)
        assert path == EqProbe("uid", None)

    def test_unindexed_column_scans(self):
        assert extract_path(parse_where("title = 'x'"), {}, self.INDEXED) is None

    def test_inequality_scans(self):
        assert extract_path(parse_where("uid != 3"), {}, self.INDEXED) is None

    def test_unbound_param_scans(self):
        assert extract_path(parse_where("uid = $MISSING"), {}, self.INDEXED) is None


class TestScanEquivalence:
    """Planned scans must return exactly what a full scan returns."""

    @pytest.mark.parametrize(
        "where,params",
        [
            ("uid = 3", None),
            ("uid = $U", {"U": 5}),
            ("uid IN (1, 2, 3, 99)", None),
            ("uid = 1 OR uid = 2", None),
            ("uid = 1 OR score = 50", None),
            ("score > 90", None),
            ("score >= 90", None),
            ("score < 5", None),
            ("score <= 5", None),
            ("30 < score AND score < 40", None),
            ("score BETWEEN 30 AND 40", None),
            ("uid IS NULL", None),
            ("uid IS NOT NULL", None),
            ("uid = 3 AND title = 'alpha'", None),
            ("title = 'alpha' OR uid = 3", None),
            ("NOT (uid = 3)", None),
            ("score > 200", None),
            ("uid = 1 AND uid = 2", None),
        ],
    )
    def test_fixed_predicates(self, where, params):
        table = make_table()
        pred = parse_where(where)
        planned = [dict(row) for row in table.scan(pred, params)]
        assert planned == full_scan(table, pred, params)

    def test_empty_in_list_matches_nothing(self):
        table = make_table()
        pred = InList(ColumnRef("uid"), ())
        assert table.scan(pred) == full_scan(table, pred) == []

    def test_random_predicates_match_full_scan(self):
        table = make_table(n=300, seed=11)
        rng = random.Random(99)
        params = {"U": 7}
        for trial in range(250):
            pred = _random_predicate(rng, depth=rng.randrange(1, 4))
            planned = sorted(row["id"] for row in table.scan(pred, params))
            reference = sorted(
                row["id"] for row in full_scan(table, pred, params)
            )
            assert planned == reference, f"trial {trial}: {pred!r}"

    def test_planned_scan_examines_fewer_rows(self):
        table = make_table(n=500, seed=3)
        table.rows_examined = 0
        table.scan(parse_where("uid = 3"))
        assert table.rows_examined < 100
        assert table.last_plan == "eq(uid)"


_INT_COLS = ("id", "uid", "score")


def _random_leaf(rng: random.Random):
    kind = rng.randrange(6)
    if kind == 0:  # comparison on an int column
        column = rng.choice(_INT_COLS)
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        value = rng.randrange(-10, 320)
        if rng.random() < 0.5:
            return Comparison(op, ColumnRef(column), Literal(value))
        mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        return Comparison(mirror[op], Literal(value), ColumnRef(column))
    if kind == 1:  # comparison on the unindexed text column
        op = rng.choice(["=", "!="])
        return Comparison(
            op, ColumnRef("title"), Literal(rng.choice(["alpha", "beta", "zeta"]))
        )
    if kind == 2:
        column = rng.choice(_INT_COLS)
        items = tuple(
            Literal(rng.choice([None, rng.randrange(-5, 120)]))
            for _ in range(rng.randrange(0, 5))
        )
        return InList(ColumnRef(column), items, negated=rng.random() < 0.3)
    if kind == 3:
        column = rng.choice(_INT_COLS)
        lo = rng.randrange(-10, 100)
        return Between(
            ColumnRef(column),
            Literal(lo),
            Literal(lo + rng.randrange(0, 50)),
            negated=rng.random() < 0.3,
        )
    if kind == 4:
        return IsNull(
            ColumnRef(rng.choice(["uid", "title"])), negated=rng.random() < 0.5
        )
    return Comparison("=", ColumnRef("uid"), Param("U"))


def _random_predicate(rng: random.Random, depth: int):
    if depth <= 1:
        return _random_leaf(rng)
    kind = rng.randrange(3)
    if kind == 0:
        return And(_random_predicate(rng, depth - 1), _random_predicate(rng, depth - 1))
    if kind == 1:
        return Or(_random_predicate(rng, depth - 1), _random_predicate(rng, depth - 1))
    return Not(_random_predicate(rng, depth - 1))


def make_db(on_delete: FKAction = FKAction.CASCADE) -> Database:
    schema = Schema(
        [
            TableSchema(
                "users",
                [
                    Column("id", T.INTEGER, nullable=False),
                    Column("name", T.TEXT),
                ],
                primary_key="id",
            ),
            TableSchema(
                "posts",
                [
                    Column("id", T.INTEGER, nullable=False),
                    Column("uid", T.INTEGER),
                    Column("score", T.INTEGER, default=0),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("uid", "users", "id", on_delete=on_delete)
                ],
            ),
        ]
    )
    db = Database(schema)
    for uid in range(1, 6):
        db.insert("users", {"id": uid, "name": f"u{uid}"})
    for i in range(1, 41):
        db.insert("posts", {"id": i, "uid": 1 + i % 5, "score": i})
    return db


def db_state(db: Database):
    return {
        table: sorted(
            (dict(row) for row in db.table(table).scan()),
            key=lambda row: repr(row),
        )
        for table in db.table_names
    }


class TestBatchedStatements:
    def test_insert_many_and_rollback(self):
        db = make_db()
        before = db_state(db)
        db.begin()
        stored = db.insert_many(
            "posts", [{"id": 100 + i, "uid": 1, "score": i} for i in range(10)]
        )
        assert len(stored) == 10
        assert db.get("posts", 105) is not None
        db.rollback()
        assert db_state(db) == before
        assert db.check_integrity() == []
        # indexes survived the rollback
        assert db.select("posts", "uid = 1") == [
            row for row in db.select("posts") if row["uid"] == 1
        ]

    def test_insert_many_rejects_dangling_fk(self):
        db = make_db()
        with pytest.raises(ForeignKeyError):
            db.insert_many("posts", [{"id": 900, "uid": 999}])

    def test_update_where_batches_and_rolls_back(self):
        db = make_db()
        before = db_state(db)
        db.begin()
        count = db.update_where("posts", "uid = 2", {"score": -1})
        assert count == len([r for r in before["posts"] if r["uid"] == 2])
        assert all(
            row["score"] == -1 for row in db.select("posts", "uid = 2")
        )
        db.rollback()
        assert db_state(db) == before
        assert db.check_integrity() == []

    def test_update_where_is_one_statement(self):
        db = make_db()
        snap = db.stats.snapshot()
        db.update_where("posts", "score <= 100", {"score": 0})
        delta = db.stats.delta(snap)
        assert delta.updates == 40  # row accounting stays linear
        assert delta.statements == 1  # ...but the whole UPDATE is one statement

    def test_update_many_checks_changed_fks(self):
        db = make_db()
        with pytest.raises(ForeignKeyError):
            db.update_many("posts", [(1, {"uid": 777})])

    def test_delete_where_cascades_and_rolls_back(self):
        db = make_db()
        before = db_state(db)
        db.begin()
        deleted = db.delete_many("users", [2, 3])
        assert deleted == 2
        assert db.select("posts", "uid = 2") == []
        assert db.check_integrity() == []
        db.rollback()
        assert db_state(db) == before
        assert db.check_integrity() == []
        assert db.select("posts", "uid = 2") != []

    def test_delete_where_restrict_raises(self):
        db = make_db(on_delete=FKAction.RESTRICT)
        with pytest.raises(ForeignKeyError):
            db.delete_where("users", "id = 1")

    def test_delete_many_missing_pk_raises(self):
        db = make_db()
        with pytest.raises(NoSuchRowError):
            db.delete_many("posts", [1, 99999])

    def test_nested_savepoint_rollback_of_batch(self):
        db = make_db()
        db.begin()
        db.update_where("posts", "uid = 1", {"score": 500})
        mid = db_state(db)
        db.begin()
        db.delete_where("posts", "uid = 1")
        db.insert_many("posts", [{"id": 300, "uid": 4}])
        db.rollback()
        assert db_state(db) == mid
        db.commit()
        assert all(row["score"] == 500 for row in db.select("posts", "uid = 1"))


class TestMaxPkCache:
    def test_next_id_monotonic_through_batches(self):
        db = make_db()
        first = db.next_id("posts")
        assert first == 41
        db.insert_many("posts", [{"id": first, "uid": 1}])
        assert db.next_id("posts") == first + 1
        db.delete_many("posts", [first + 0])
        # deleting the max never recycles ids
        assert db.next_id("posts") == first + 2

    def test_max_pk_tracks_deletes_of_max(self):
        table = make_table(n=10)
        assert table.max_pk() == 10
        table.delete_by_pk(10)
        assert table.max_pk() == 9
        table.insert({"id": 50, "uid": 1, "score": 0, "title": None})
        assert table.max_pk() == 50
