"""Unit tests for WHERE-clause and CREATE TABLE parsing."""

import pytest

from repro.errors import ParseError
from repro.storage.predicate import (
    And,
    Between,
    Comparison,
    InList,
    IsNull,
    Like,
    Not,
    Or,
    TrueP,
)
from repro.storage.schema import FKAction
from repro.storage.sql import parse_create_table, parse_schema, parse_where
from repro.storage.types import ColumnType as T


class TestParseWhere:
    def test_simple_equality(self):
        pred = parse_where("contactId = 19")
        assert isinstance(pred, Comparison)
        assert pred.test({"contactId": 19})
        assert not pred.test({"contactId": 20})

    def test_param(self):
        pred = parse_where("contactId = $UID")
        assert pred.params() == {"UID"}
        assert pred.test({"contactId": 7}, {"UID": 7})

    def test_precedence_and_binds_tighter_than_or(self):
        pred = parse_where("a = 1 OR a = 2 AND b = 3")
        # equivalent to a=1 OR (a=2 AND b=3)
        assert pred.test({"a": 1, "b": 0})
        assert pred.test({"a": 2, "b": 3})
        assert not pred.test({"a": 2, "b": 0})

    def test_parentheses(self):
        pred = parse_where("(a = 1 OR a = 2) AND b = 3")
        assert not pred.test({"a": 1, "b": 0})
        assert pred.test({"a": 2, "b": 3})

    def test_not(self):
        pred = parse_where("NOT a = 1")
        assert isinstance(pred, Not)
        assert pred.test({"a": 2})

    def test_comparison_operators(self):
        assert parse_where("a <> 1").test({"a": 2})
        assert parse_where("a != 1").test({"a": 2})
        assert parse_where("a <= 1").test({"a": 1})
        assert parse_where("a >= 1.5").test({"a": 2})

    def test_in_list(self):
        pred = parse_where("a IN (1, 2, 3)")
        assert isinstance(pred, InList)
        assert pred.test({"a": 2})
        assert parse_where("a NOT IN (1, 2)").test({"a": 3})

    def test_is_null(self):
        assert parse_where("a IS NULL").test({"a": None})
        assert parse_where("a IS NOT NULL").test({"a": 1})

    def test_like(self):
        pred = parse_where("email LIKE '%@example.com'")
        assert isinstance(pred, Like)
        assert pred.test({"email": "x@example.com"})
        assert parse_where("name NOT LIKE 'anon%'").test({"name": "Bea"})

    def test_between(self):
        pred = parse_where("a BETWEEN 1 AND 3")
        assert isinstance(pred, Between)
        assert pred.test({"a": 2})
        assert parse_where("a NOT BETWEEN 1 AND 3").test({"a": 5})

    def test_true_false_literals(self):
        assert isinstance(parse_where("TRUE"), TrueP)
        assert parse_where("disabled = FALSE").test({"disabled": False})

    def test_string_literal_with_escaped_quote(self):
        pred = parse_where("name = 'O''Brien'")
        assert pred.test({"name": "O'Brien"})

    def test_arithmetic(self):
        assert parse_where("a + 1 = 3").test({"a": 2})
        assert parse_where("a * 2 > b").test({"a": 3, "b": 5})
        assert parse_where("-a = 0 - 2").test({"a": 2})

    def test_qualified_column_stripped(self):
        pred = parse_where("Review.contactId = 5")
        assert pred.test({"contactId": 5})

    def test_numbers(self):
        assert parse_where("a = 2.5").test({"a": 2.5})
        assert parse_where("a = .5").test({"a": 0.5})

    def test_predicate_passthrough(self):
        pred = parse_where("a = 1")
        assert parse_where(pred) is pred

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_where("a = 1 garbage extra")

    def test_unterminated_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_where("(a = 1")

    def test_bare_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_where("a +")

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse_where("a = #")

    def test_nested_logic(self):
        pred = parse_where(
            "(a = 1 AND NOT (b IS NULL OR c IN (1,2))) OR d LIKE 'x_%'"
        )
        assert pred.test({"a": 1, "b": 2, "c": 3, "d": "nah"})
        assert pred.test({"a": 0, "b": None, "c": 1, "d": "xy!"})


class TestParseCreateTable:
    def test_basic_table(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL)"
        )
        assert table.name == "t"
        assert table.primary_key == "id"
        assert not table.column("id").nullable
        assert not table.column("name").nullable

    def test_inline_references(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, "
            "uid INT REFERENCES users(id) ON DELETE CASCADE)"
        )
        fk = table.foreign_key_for("uid")
        assert fk.parent_table == "users"
        assert fk.on_delete is FKAction.CASCADE

    def test_set_null_action(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, "
            "uid INT REFERENCES users(id) ON DELETE SET NULL)"
        )
        assert table.foreign_key_for("uid").on_delete is FKAction.SET_NULL

    def test_default_action_is_restrict(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, uid INT REFERENCES users(id))"
        )
        assert table.foreign_key_for("uid").on_delete is FKAction.RESTRICT

    def test_table_level_clauses(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT, uid INT, PRIMARY KEY (id), "
            "FOREIGN KEY (uid) REFERENCES users(id) ON DELETE CASCADE)"
        )
        assert table.primary_key == "id"
        assert table.foreign_key_for("uid").on_delete is FKAction.CASCADE

    def test_defaults(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, n INT DEFAULT 5, "
            "s TEXT DEFAULT 'hi', f REAL DEFAULT 0.5, b BOOL DEFAULT TRUE)"
        )
        assert table.column("n").default == 5
        assert table.column("s").default == "hi"
        assert table.column("f").default == 0.5
        assert table.column("b").default is True

    def test_pii_marker(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, email TEXT PII)"
        )
        assert table.column("email").pii
        assert not table.column("id").pii

    def test_varchar_length(self):
        table = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY, s VARCHAR(255))"
        )
        assert table.column("s").ctype is T.TEXT

    def test_no_primary_key_rejected(self):
        with pytest.raises(ParseError):
            parse_create_table("CREATE TABLE t (a INT)")

    def test_two_primary_keys_rejected(self):
        with pytest.raises(ParseError):
            parse_create_table(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)"
            )

    def test_not_create_table_rejected(self):
        with pytest.raises(ParseError):
            parse_create_table("DROP TABLE t")


class TestParseSchema:
    def test_multiple_statements_and_comments(self):
        tables = parse_schema(
            """
            -- users come first
            CREATE TABLE users (id INT PRIMARY KEY, name TEXT);
            CREATE TABLE posts (
              id INT PRIMARY KEY,
              uid INT NOT NULL REFERENCES users(id) -- author
            );
            """
        )
        assert [t.name for t in tables] == ["users", "posts"]

    def test_semicolon_inside_string_default(self):
        tables = parse_schema(
            "CREATE TABLE t (id INT PRIMARY KEY, s TEXT DEFAULT 'a;b');"
        )
        assert tables[0].column("s").default == "a;b"
