"""Crash-injection: recovery under torn, truncated, and corrupted logs.

The contract (ISSUE 2 / DESIGN.md "Recovery invariants"):

* Truncating the WAL at *any* byte boundary — the crash signature of a
  torn append — must recover exactly the state after the last commit
  frame wholly on disk: prefix-consistent, passing ``assert_integrity``.
* A CRC failure in the final frame is a torn tail and is discarded; a CRC
  failure with well-formed frames after it is real corruption and raises.
* Under ``fsync='always'``, data is on disk before the commit call
  returns: recovering from a byte-for-byte copy taken at ack time always
  reproduces every acked commit.
"""

from __future__ import annotations

import shutil
import struct
import zlib

import pytest

from repro import Database, Schema, parse_schema
from repro.errors import StorageError
from repro.storage.persist import save_database
from repro.storage.wal import (
    WalCorruptionError,
    default_wal_path,
    open_in_place,
    recover_database,
)

DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id) ON DELETE CASCADE,
  title TEXT NOT NULL
);
"""

_FRAME_HEADER = struct.Struct("<II")


def contents(db: Database) -> dict:
    return {
        name: sorted((dict(r) for r in db.table(name).rows()), key=lambda r: str(r))
        for name in db.table_names
    }


def frame_spans(blob: bytes) -> list[tuple[int, int, dict]]:
    """(start, end, payload) for every frame in a well-formed log."""
    import json

    spans = []
    offset = 0
    while offset < len(blob):
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        body = blob[start : start + length]
        assert zlib.crc32(body) == crc, "harness bug: seed log must be clean"
        spans.append((offset, start + length, json.loads(body.decode())))
        offset = start + length
    return spans


@pytest.fixture
def workload(tmp_path):
    """A snapshot + WAL written under fsync=always, with the acked state
    recorded after every commit."""
    snap = tmp_path / "app.jsonl"
    db = Database(Schema(parse_schema(DDL)))
    db.insert_many("users", [{"id": i, "name": f"u{i}", "email": f"u{i}@x"} for i in range(1, 5)])
    db.insert_many("posts", [{"id": i, "user_id": 1 + i % 4, "title": f"p{i}"} for i in range(1, 9)])
    save_database(db, snap)

    handle = open_in_place(snap, fsync="always")
    live = handle.db
    states = [contents(live)]  # state after 0 commits

    def step(fn):
        fn()
        states.append(contents(live))

    step(lambda: live.insert("users", {"id": 10, "name": "new", "email": "n@x"}))
    step(lambda: live.update_where("posts", "user_id = 1", {"title": "redacted"}))

    def tx():
        with live.transaction():
            live.delete_by_pk("users", 2)  # cascades into posts
            live.insert("posts", {"id": 50, "user_id": 10, "title": "fresh"})

    step(tx)
    step(lambda: live.update_by_pk("users", 3, {"email": None}))
    step(lambda: live.delete_where("posts", "user_id = 4"))
    # Simulate a crash: no close(), the file is whatever fsync left behind.
    handle.wal._handle.flush()
    return snap, default_wal_path(snap), states


class TestTruncation:
    def test_every_byte_boundary_recovers_a_committed_prefix(self, workload, tmp_path):
        snap, wal_path, states = workload
        blob = wal_path.read_bytes()
        spans = frame_spans(blob)
        # commits_on_disk[t] = commit frames wholly within blob[:t]
        commit_ends = [end for _s, end, payload in spans if payload.get("t") == "commit"]

        work = tmp_path / "crash"
        work.mkdir()
        crash_snap = work / "app.jsonl"
        shutil.copy(snap, crash_snap)
        crash_wal = default_wal_path(crash_snap)

        for cut in range(len(blob) + 1):
            crash_wal.write_bytes(blob[:cut])
            expected_commits = sum(1 for end in commit_ends if end <= cut)
            recovered = recover_database(crash_snap, crash_wal)
            assert contents(recovered) == states[expected_commits], (
                f"cut at byte {cut}: expected state after {expected_commits} commits"
            )
            recovered.assert_integrity()

    def test_empty_wal_file_recovers_snapshot(self, workload):
        snap, wal_path, states = workload
        wal_path.write_bytes(b"")
        assert contents(recover_database(snap)) == states[0]


class TestBitFlips:
    def _flip(self, path, offset, bit=0x01):
        blob = bytearray(path.read_bytes())
        blob[offset] ^= bit
        path.write_bytes(bytes(blob))

    def test_flip_in_final_frame_discards_the_torn_tail(self, workload):
        snap, wal_path, states = workload
        blob = wal_path.read_bytes()
        spans = frame_spans(blob)
        final_start, final_end, payload = spans[-1]
        assert payload.get("t") == "commit"
        # Corrupt a payload byte of the final (commit) frame: its unit is
        # no longer acked-on-disk in full, so recovery drops it.
        self._flip(wal_path, final_start + _FRAME_HEADER.size)
        recovered = recover_database(snap)
        assert contents(recovered) == states[len(states) - 2]
        recovered.assert_integrity()

    def test_flip_mid_log_raises_cleanly(self, workload):
        snap, wal_path, _states = workload
        blob = wal_path.read_bytes()
        spans = frame_spans(blob)
        # A payload byte of a frame in the middle of the log (valid frames
        # follow it): that is not a crash artifact.
        mid_start, _mid_end, _payload = spans[len(spans) // 2]
        self._flip(wal_path, mid_start + _FRAME_HEADER.size)
        with pytest.raises(WalCorruptionError):
            recover_database(snap)

    def test_flip_every_byte_of_final_record_never_corrupts_silently(self, workload):
        """Exhaustive over the final record: recovery either reproduces an
        acked state or raises a clean StorageError — never garbage."""
        snap, wal_path, states = workload
        blob = wal_path.read_bytes()
        spans = frame_spans(blob)
        final_start, final_end, _payload = spans[-1]
        for offset in range(final_start, final_end):
            wal_path.write_bytes(blob)  # restore
            self._flip(wal_path, offset)
            try:
                recovered = recover_database(snap)
            except StorageError:
                continue  # clean refusal is acceptable
            got = contents(recovered)
            assert got in states, f"flip at byte {offset} produced a state never acked"
            recovered.assert_integrity()
        wal_path.write_bytes(blob)


class TestReopenAfterCrash:
    def test_recover_append_recover_at_every_cut(self, workload, tmp_path):
        """Reopening a torn log for writes must trim the debris so commits
        appended *after* the crash survive the *next* recovery."""
        snap, wal_path, states = workload
        blob = wal_path.read_bytes()
        spans = frame_spans(blob)
        commit_ends = [end for _s, end, payload in spans if payload.get("t") == "commit"]

        work = tmp_path / "reopen"
        work.mkdir()
        crash_snap = work / "app.jsonl"
        crash_wal = default_wal_path(crash_snap)

        # Every cut severity: clean log, torn mid-frame, torn mid-unit.
        for cut in range(0, len(blob) + 1, 7):
            shutil.copy(snap, crash_snap)
            crash_wal.write_bytes(blob[:cut])
            expected_commits = sum(1 for end in commit_ends if end <= cut)
            with open_in_place(crash_snap, fsync="always") as handle:
                assert contents(handle.db) == states[expected_commits]
                handle.db.insert(
                    "users", {"id": 99, "name": "post-crash", "email": "pc@x"}
                )
            recovered = recover_database(crash_snap)
            assert recovered.get("users", 99) is not None, (
                f"cut at byte {cut}: commit appended after reopen was lost"
            )
            got = contents(recovered)
            got["users"] = [r for r in got["users"] if r["id"] != 99]
            assert got == states[expected_commits], (
                f"cut at byte {cut}: pre-crash prefix not preserved"
            )
            recovered.assert_integrity()

    def test_trailing_unsealed_statements_not_resealed_by_next_commit(
        self, workload, tmp_path
    ):
        """Statement frames with no commit frame are an unacked transaction;
        a commit appended after reopen must not adopt them."""
        snap, wal_path, states = workload
        blob = wal_path.read_bytes()
        spans = frame_spans(blob)
        # Cut just past the last *statement* frame, beheading its commit.
        stmt_ends = [end for _s, end, p in spans if p.get("t") == "stmt"]
        crash_snap = tmp_path / "unsealed" / "app.jsonl"
        crash_snap.parent.mkdir()
        shutil.copy(snap, crash_snap)
        crash_wal = default_wal_path(crash_snap)
        crash_wal.write_bytes(blob[: stmt_ends[-1]])
        with open_in_place(crash_snap, fsync="always") as handle:
            handle.db.update_by_pk("users", 1, {"name": "sealed"})
        recovered = recover_database(crash_snap)
        assert recovered.get("users", 1)["name"] == "sealed"
        # The beheaded unit (delete_where on posts) must not have leaked in.
        assert contents(recovered)["posts"] == states[-2]["posts"]

    def test_checkpoint_crash_window_skips_stale_log(self, workload):
        """Crash after the checkpoint snapshot is installed but before the
        log truncates: the stale log's generation predates the snapshot's,
        so recovery must skip the replay instead of double-applying."""
        from repro.storage.persist import save_database_atomic

        snap, wal_path, states = workload
        handle = open_in_place(snap, fsync="always")
        expected = contents(handle.db)
        # First half of checkpoint(): install the snapshot, bump the stamp —
        # then "crash" before wal.truncate() runs.
        save_database_atomic(handle.db, snap, generation=handle.wal.generation + 1)
        del handle  # no close(): the stale WAL stays on disk
        assert wal_path.exists() and wal_path.stat().st_size > 100
        recovered = recover_database(snap)
        assert contents(recovered) == expected
        recovered.assert_integrity()
        # Reopening for writes resets the stale log and keeps working.
        with open_in_place(snap, fsync="always") as handle2:
            assert contents(handle2.db) == expected
            handle2.db.insert("users", {"id": 77, "name": "after", "email": "a@x"})
        assert recover_database(snap).get("users", 77) is not None

    def test_log_newer_than_snapshot_raises(self, workload):
        """A log stamped with a generation the snapshot never reached means
        the log's base snapshot is gone: corruption, not a crash artifact."""
        snap, wal_path, _states = workload
        handle = open_in_place(snap)
        handle.checkpoint()  # snapshot gen 1, log gen 1
        handle.db.insert("users", {"id": 60, "name": "x", "email": "x@x"})
        handle.close()
        # Regress the snapshot to a stamp below the log's.
        db = recover_database(snap)
        save_database(db, snap)  # no generation stamp → generation 0
        with pytest.raises(WalCorruptionError):
            recover_database(snap)


class TestAckedDurability:
    def test_fsync_always_never_loses_acked_commits(self, tmp_path):
        """Every commit is wholly on disk at ack time: a copy of the file
        taken immediately after each statement recovers that statement."""
        snap = tmp_path / "app.jsonl"
        db = Database(Schema(parse_schema(DDL)))
        db.insert("users", {"id": 1, "name": "a", "email": "a@x"})
        save_database(db, snap)

        work = tmp_path / "copy"
        work.mkdir()
        crash_snap = work / "app.jsonl"
        shutil.copy(snap, crash_snap)
        crash_wal = default_wal_path(crash_snap)

        handle = open_in_place(snap, fsync="always")
        wal_path = default_wal_path(snap)
        for i in range(2, 12):
            handle.db.insert("users", {"id": i, "name": f"u{i}", "email": f"{i}@x"})
            # ack point: snapshot the file exactly as it is now, no close()
            crash_wal.write_bytes(wal_path.read_bytes())
            recovered = recover_database(crash_snap, crash_wal)
            assert recovered.get("users", i) is not None, (
                f"commit {i} was acked but lost"
            )
        handle.close()
