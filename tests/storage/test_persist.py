"""Unit tests for JSON-lines snapshot persistence."""

import io

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.persist import (
    dump_rows,
    load_database,
    load_rows,
    save_database,
)
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.types import ColumnType as T


class TestSaveLoad:
    def test_round_trip(self, blog_db, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_database(blog_db, path)
        reloaded = load_database(path)
        assert reloaded.row_counts() == blog_db.row_counts()
        assert reloaded.get("users", 2)["name"] == "Bea"
        assert reloaded.check_integrity() == []

    def test_schema_round_trip(self, blog_db, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_database(blog_db, path)
        reloaded = load_database(path)
        users = reloaded.table("users").schema
        assert users.primary_key == "id"
        assert users.column("name").pii
        comments = reloaded.table("comments").schema
        fk = comments.foreign_key_for("post_id")
        assert fk.parent_table == "posts"

    def test_blob_and_datetime_round_trip(self, tmp_path):
        schema = Schema(
            [
                TableSchema(
                    "t",
                    [
                        Column("id", T.INTEGER, nullable=False),
                        Column("data", T.BLOB),
                        Column("at", T.DATETIME),
                    ],
                    "id",
                )
            ]
        )
        db = Database(schema)
        db.insert("t", {"id": 1, "data": b"\x00\xffbin", "at": 1234.5})
        db.insert("t", {"id": 2, "data": None, "at": None})
        path = tmp_path / "s.jsonl"
        save_database(db, path)
        reloaded = load_database(path)
        assert reloaded.get("t", 1) == {"id": 1, "data": b"\x00\xffbin", "at": 1234.5}
        assert reloaded.get("t", 2)["data"] is None

    def test_mutations_after_reload_work(self, blog_db, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_database(blog_db, path)
        reloaded = load_database(path)
        reloaded.insert("users", {"id": 9, "name": "New", "email": "n@x"})
        assert reloaded.next_id("users") == 10

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(StorageError):
            load_database(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"$header": {"version": 99}}\n')
        with pytest.raises(StorageError):
            load_database(path)

    def test_unrecognized_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"$header": {"version": 1, "tables": []}}\n{"$bogus": 1}\n'
        )
        with pytest.raises(StorageError):
            load_database(path)


class TestRowDump:
    def test_dump_load_rows(self):
        rows = [{"a": 1, "b": b"\x01"}, {"a": None, "b": None}]
        buffer = io.StringIO()
        dump_rows(rows, buffer)
        buffer.seek(0)
        assert load_rows(buffer) == rows


class TestBatchedLoad:
    def test_load_uses_one_batched_insert_per_table(self, tmp_path, monkeypatch):
        """Snapshot load goes through insert_rows once per table, so it
        benefits from grouped index maintenance instead of per-row inserts."""
        from repro.storage.table import Table

        db = Database(
            Schema(
                [
                    TableSchema(
                        "users",
                        [Column("id", T.INTEGER, nullable=False), Column("name", T.TEXT)],
                        primary_key="id",
                    )
                ]
            )
        )
        for i in range(20):
            db.insert("users", {"id": i, "name": f"u{i}"})
        path = tmp_path / "snap.jsonl"
        save_database(db, path)

        calls = []
        real_insert_rows = Table.insert_rows
        real_insert = Table.insert

        def spy_insert_rows(self, rows):
            rows = list(rows)
            calls.append(("insert_rows", self.name, len(rows)))
            return real_insert_rows(self, rows)

        def spy_insert(self, values):
            calls.append(("insert", self.name, 1))
            return real_insert(self, values)

        monkeypatch.setattr(Table, "insert_rows", spy_insert_rows)
        monkeypatch.setattr(Table, "insert", spy_insert)
        loaded = load_database(path)
        assert calls == [("insert_rows", "users", 20)]
        assert loaded.row_counts() == {"users": 20}
