"""Property-based tests (hypothesis) for the storage substrate.

Invariants:

* predicate evaluation follows Kleene three-valued logic exactly;
* index-accelerated scans agree with brute-force filtering;
* any interleaving of inserts/updates/deletes inside a rolled-back
  transaction leaves the table exactly as before;
* snapshot persistence round-trips arbitrary typed rows.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.database import Database
from repro.storage.predicate import (
    And,
    ColumnRef,
    Comparison,
    FalseP,
    Literal,
    Not,
    Or,
    Tristate,
    TrueP,
)
from repro.storage.persist import load_database, save_database
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.types import ColumnType as T


def simple_schema() -> Schema:
    return Schema(
        [
            TableSchema(
                "t",
                [
                    Column("id", T.INTEGER, nullable=False),
                    Column("x", T.INTEGER),
                    Column("s", T.TEXT),
                ],
                "id",
            )
        ]
    )


# -- three-valued logic ------------------------------------------------------------

tristates = st.sampled_from([Tristate.TRUE, Tristate.FALSE, Tristate.UNKNOWN])


class _Fixed:
    """A leaf predicate with a forced truth value."""

    def __init__(self, value: Tristate) -> None:
        self.value = value

    def eval3(self, row, params):
        return self.value


def _wrap(value: Tristate) -> _Fixed:
    return _Fixed(value)


@given(a=tristates, b=tristates)
def test_and_matches_kleene_truth_table(a, b):
    rank = {Tristate.FALSE: 0, Tristate.UNKNOWN: 1, Tristate.TRUE: 2}
    expected = min((a, b), key=lambda v: rank[v])
    assert And(_wrap(a), _wrap(b)).eval3({}, {}) is expected


@given(a=tristates, b=tristates)
def test_or_matches_kleene_truth_table(a, b):
    rank = {Tristate.FALSE: 0, Tristate.UNKNOWN: 1, Tristate.TRUE: 2}
    expected = max((a, b), key=lambda v: rank[v])
    assert Or(_wrap(a), _wrap(b)).eval3({}, {}) is expected


@given(a=tristates)
def test_double_negation(a):
    assert Not(Not(_wrap(a))).eval3({}, {}) is a


@given(a=tristates, b=tristates)
def test_de_morgan(a, b):
    lhs = Not(And(_wrap(a), _wrap(b))).eval3({}, {})
    rhs = Or(Not(_wrap(a)), Not(_wrap(b))).eval3({}, {})
    assert lhs is rhs


# -- comparisons over concrete values -------------------------------------------------

values = st.one_of(st.none(), st.integers(-100, 100))


@given(x=values, y=values)
def test_comparison_null_semantics(x, y):
    pred = Comparison("=", Literal(x), Literal(y))
    result = pred.eval3({}, {})
    if x is None or y is None:
        assert result is Tristate.UNKNOWN
    else:
        assert result is (Tristate.TRUE if x == y else Tristate.FALSE)


@given(x=values)
def test_excluded_middle_fails_only_for_null(x):
    # x = 1 OR NOT (x = 1) is TRUE for non-null x, UNKNOWN for NULL.
    pred = Or(
        Comparison("=", Literal(x), Literal(1)),
        Not(Comparison("=", Literal(x), Literal(1))),
    )
    expected = Tristate.UNKNOWN if x is None else Tristate.TRUE
    assert pred.eval3({}, {}) is expected


# -- index-accelerated scans agree with brute force ---------------------------------------

rows_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.one_of(st.none(), st.integers(0, 5))),
    max_size=30,
    unique_by=lambda t: t[0],
)


@settings(max_examples=60)
@given(rows=rows_strategy, probe=st.integers(0, 5))
def test_indexed_scan_matches_full_scan(rows, probe):
    db = Database(simple_schema())
    table = db.table("t")
    table.create_index("x")
    for pk, x in rows:
        table.insert({"id": pk, "x": x})
    pred = Comparison("=", ColumnRef("x"), Literal(probe))
    indexed = sorted(r["id"] for r in table.scan(pred))
    brute = sorted(pk for pk, x in rows if x == probe)
    assert indexed == brute


# -- transactional atomicity ------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 20), st.integers(0, 5)),
        st.tuples(st.just("update"), st.integers(0, 20), st.integers(0, 5)),
        st.tuples(st.just("delete"), st.integers(0, 20), st.integers(0, 5)),
    ),
    max_size=25,
)


@settings(max_examples=60)
@given(initial=rows_strategy, ops=operations)
def test_rollback_is_identity(initial, ops):
    db = Database(simple_schema())
    for pk, x in initial:
        db.insert("t", {"id": pk, "x": x})
    before = sorted(
        (r["id"], r["x"], r["s"]) for r in db.table("t").rows()
    )
    db.begin()
    for op, pk, x in ops:
        try:
            if op == "insert":
                db.insert("t", {"id": pk, "x": x})
            elif op == "update":
                db.update_by_pk("t", pk, {"x": x})
            else:
                db.delete_by_pk("t", pk)
        except Exception:
            pass  # constraint failures are fine; rollback must still restore
    db.rollback()
    after = sorted((r["id"], r["x"], r["s"]) for r in db.table("t").rows())
    assert after == before


# -- persistence round trip -----------------------------------------------------------------

text_values = st.one_of(st.none(), st.text(max_size=20))


@settings(max_examples=40)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 1000), st.one_of(st.none(), st.integers()), text_values),
        max_size=20,
        unique_by=lambda t: t[0],
    )
)
def test_snapshot_round_trip(rows, tmp_path_factory):
    db = Database(simple_schema())
    for pk, x, s in rows:
        db.insert("t", {"id": pk, "x": x, "s": s})
    path = tmp_path_factory.mktemp("snap") / "db.jsonl"
    save_database(db, path)
    reloaded = load_database(path)
    original = sorted((r["id"], r["x"], r["s"]) for r in db.table("t").rows())
    restored = sorted((r["id"], r["x"], r["s"]) for r in reloaded.table("t").rows())
    assert restored == original
