"""Unit tests for the column type system."""

import pytest

from repro.errors import TypeMismatchError
from repro.storage.types import ColumnType, coerce, is_comparable, parse_type


class TestParseType:
    def test_canonical_names(self):
        assert parse_type("INTEGER") is ColumnType.INTEGER
        assert parse_type("TEXT") is ColumnType.TEXT
        assert parse_type("BOOL") is ColumnType.BOOL
        assert parse_type("REAL") is ColumnType.REAL
        assert parse_type("DATETIME") is ColumnType.DATETIME
        assert parse_type("BLOB") is ColumnType.BLOB

    def test_aliases(self):
        assert parse_type("INT") is ColumnType.INTEGER
        assert parse_type("BIGINT") is ColumnType.INTEGER
        assert parse_type("VARCHAR") is ColumnType.TEXT
        assert parse_type("DOUBLE") is ColumnType.REAL
        assert parse_type("BOOLEAN") is ColumnType.BOOL
        assert parse_type("TIMESTAMP") is ColumnType.DATETIME

    def test_length_suffix_ignored(self):
        assert parse_type("VARCHAR(255)") is ColumnType.TEXT
        assert parse_type("CHAR( 8 )") is ColumnType.TEXT

    def test_case_insensitive(self):
        assert parse_type("int") is ColumnType.INTEGER
        assert parse_type("Varchar") is ColumnType.TEXT

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_type("GEOMETRY")


class TestCoerce:
    def test_null_passes_all_types(self):
        for ctype in ColumnType:
            assert coerce(None, ctype) is None

    def test_integer(self):
        assert coerce(5, ColumnType.INTEGER) == 5
        assert coerce(True, ColumnType.INTEGER) == 1
        assert coerce(5.0, ColumnType.INTEGER) == 5

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce(5.5, ColumnType.INTEGER)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("5", ColumnType.INTEGER)

    def test_real_widens_int(self):
        value = coerce(3, ColumnType.REAL)
        assert value == 3.0
        assert isinstance(value, float)

    def test_text(self):
        assert coerce("hi", ColumnType.TEXT) == "hi"
        with pytest.raises(TypeMismatchError):
            coerce(5, ColumnType.TEXT)

    def test_bool(self):
        assert coerce(True, ColumnType.BOOL) is True
        assert coerce(0, ColumnType.BOOL) is False
        assert coerce(1, ColumnType.BOOL) is True
        with pytest.raises(TypeMismatchError):
            coerce(2, ColumnType.BOOL)

    def test_datetime_accepts_numbers(self):
        assert coerce(100, ColumnType.DATETIME) == 100.0
        assert coerce(1.5, ColumnType.DATETIME) == 1.5
        with pytest.raises(TypeMismatchError):
            coerce(True, ColumnType.DATETIME)

    def test_blob(self):
        assert coerce(b"x", ColumnType.BLOB) == b"x"
        assert coerce(bytearray(b"y"), ColumnType.BLOB) == b"y"
        with pytest.raises(TypeMismatchError):
            coerce("not bytes", ColumnType.BLOB)


class TestIsComparable:
    def test_numbers_compare(self):
        assert is_comparable(1, 2.5)
        assert is_comparable(1.0, 2)

    def test_bools_only_with_bools(self):
        assert is_comparable(True, False)
        assert not is_comparable(True, 1)
        assert not is_comparable(0, False)

    def test_strings(self):
        assert is_comparable("a", "b")
        assert not is_comparable("a", 1)

    def test_bytes(self):
        assert is_comparable(b"a", b"b")
        assert not is_comparable(b"a", "a")
