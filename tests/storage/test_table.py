"""Unit tests for table storage, indexes, and index-accelerated scans."""

import pytest

from repro.errors import ConstraintError, NoSuchRowError, UnknownColumnError
from repro.storage.index import HashIndex, UniqueIndex
from repro.storage.predicate import column_equals, column_equals_param
from repro.storage.schema import Column, ForeignKey, TableSchema
from repro.storage.sql import parse_where
from repro.storage.table import Table
from repro.storage.types import ColumnType as T


def make_table() -> Table:
    schema = TableSchema(
        "posts",
        [
            Column("id", T.INTEGER, nullable=False),
            Column("uid", T.INTEGER),
            Column("title", T.TEXT),
            Column("score", T.INTEGER, default=0),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("uid", "users", "id")],
    )
    return Table(schema)


class TestIndexes:
    def test_hash_index_basics(self):
        index = HashIndex("uid")
        index.insert(1, 10)
        index.insert(1, 11)
        index.insert(2, 12)
        assert index.lookup(1) == {10, 11}
        assert index.lookup(9) == frozenset()
        index.remove(1, 10)
        assert index.lookup(1) == {11}
        assert len(index) == 2

    def test_hash_index_remove_last_clears_bucket(self):
        index = HashIndex("uid")
        index.insert(1, 10)
        index.remove(1, 10)
        assert list(index.values()) == []

    def test_unique_index_rejects_duplicates(self):
        index = UniqueIndex("id")
        index.insert(1, 10)
        with pytest.raises(ConstraintError):
            index.insert(1, 11)
        assert index.lookup(1) == 10
        assert 1 in index

    def test_unique_index_remove_checks_rid(self):
        index = UniqueIndex("id")
        index.insert(1, 10)
        index.remove(1, 99)  # wrong rid: no-op
        assert index.lookup(1) == 10
        index.remove(1, 10)
        assert index.lookup(1) is None


class TestTableMutation:
    def test_insert_and_get(self):
        table = make_table()
        table.insert({"id": 1, "uid": 7, "title": "a"})
        row = table.get(1)
        assert row == {"id": 1, "uid": 7, "title": "a", "score": 0}
        assert table.get(99) is None
        assert len(table) == 1

    def test_insert_duplicate_pk_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        with pytest.raises(ConstraintError):
            table.insert({"id": 1})

    def test_rows_are_copies(self):
        table = make_table()
        table.insert({"id": 1, "title": "a"})
        row = table.get(1)
        row["title"] = "mutated"
        assert table.get(1)["title"] == "a"

    def test_delete(self):
        table = make_table()
        table.insert({"id": 1, "uid": 7})
        old = table.delete_by_pk(1)
        assert old["uid"] == 7
        assert table.get(1) is None
        with pytest.raises(NoSuchRowError):
            table.delete_by_pk(1)

    def test_update(self):
        table = make_table()
        table.insert({"id": 1, "uid": 7, "title": "a"})
        old, new = table.update_by_pk(1, {"title": "b"})
        assert old["title"] == "a" and new["title"] == "b"
        assert table.get(1)["title"] == "b"

    def test_update_unknown_column_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        with pytest.raises(UnknownColumnError):
            table.update_by_pk(1, {"ghost": 1})

    def test_update_pk_change_reindexes(self):
        table = make_table()
        table.insert({"id": 1, "uid": 7})
        table.update_by_pk(1, {"id": 2})
        assert table.get(1) is None
        assert table.get(2)["uid"] == 7

    def test_update_pk_collision_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        table.insert({"id": 2})
        with pytest.raises(ConstraintError):
            table.update_by_pk(1, {"id": 2})

    def test_fk_index_maintained_through_updates(self):
        table = make_table()
        table.insert({"id": 1, "uid": 7})
        table.insert({"id": 2, "uid": 7})
        assert [r["id"] for r in table.referencing_rows("uid", 7)] == [1, 2]
        table.update_by_pk(1, {"uid": 8})
        assert [r["id"] for r in table.referencing_rows("uid", 7)] == [2]
        table.delete_by_pk(2)
        assert table.referencing_rows("uid", 7) == []


class TestScan:
    def test_scan_all(self):
        table = make_table()
        for i in range(5):
            table.insert({"id": i, "uid": i % 2})
        assert len(table.scan()) == 5

    def test_scan_with_predicate(self):
        table = make_table()
        for i in range(6):
            table.insert({"id": i, "uid": i % 2, "score": i})
        rows = table.scan(parse_where("uid = 1 AND score > 2"))
        assert sorted(r["id"] for r in rows) == [3, 5]

    def test_scan_uses_pk_index(self):
        table = make_table()
        for i in range(10):
            table.insert({"id": i})
        rows = table.scan(column_equals("id", 4))
        assert [r["id"] for r in rows] == [4]

    def test_scan_uses_fk_index_with_param(self):
        table = make_table()
        for i in range(10):
            table.insert({"id": i, "uid": i % 3})
        rows = table.scan(column_equals_param("uid", "UID"), {"UID": 2})
        assert sorted(r["id"] for r in rows) == [2, 5, 8]

    def test_count(self):
        table = make_table()
        for i in range(4):
            table.insert({"id": i, "uid": 1})
        assert table.count(column_equals("uid", 1)) == 4
        assert table.count() == 4

    def test_create_and_drop_secondary_index(self):
        table = make_table()
        for i in range(4):
            table.insert({"id": i, "title": "t" + str(i % 2)})
        table.create_index("title")
        assert table.has_indexed("title")
        rows = table.scan(column_equals("title", "t1"))
        assert sorted(r["id"] for r in rows) == [1, 3]
        table.drop_index("title")
        assert not table.has_indexed("title")
        # still correct via full scan
        rows = table.scan(column_equals("title", "t1"))
        assert sorted(r["id"] for r in rows) == [1, 3]

    def test_create_index_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_table().create_index("ghost")

    def test_max_pk(self):
        table = make_table()
        assert table.max_pk() is None
        table.insert({"id": 5})
        table.insert({"id": 2})
        assert table.max_pk() == 5
