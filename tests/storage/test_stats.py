"""Statistics and cost-model tests: sketches, incremental maintenance,
and the planner decisions they steer.

The cost model is advisory — a wrong estimate may only ever pick a slower
plan, never change results — so these tests check two things separately:
(1) the statistics themselves track mutations (exact counters exactly,
sketches within tolerance), and (2) `choose_path` uses them to fix the
orderings the shape-based ranking got wrong (equality probe on a skewed
column losing to a tight range probe, wide probes demoted to full scans).
"""

import random

from repro.storage.planner import (
    ChoicePath,
    EmptyPath,
    EqProbe,
    MultiProbe,
    RangeProbe,
    UnionPath,
    choose_path,
    estimate_rows,
)
from repro.storage.schema import Column, TableSchema
from repro.storage.sql import parse_where
from repro.storage.stats import KMV_K, ColumnStats, TableStatistics, _KMV
from repro.storage.table import Table
from repro.storage.types import ColumnType as T


# --------------------------------------------------------------------------
# KMV distinct sketch
# --------------------------------------------------------------------------


class TestKMV:
    def test_exact_below_k(self):
        sketch = _KMV()
        for i in range(KMV_K - 1):
            sketch.add(i)
        assert sketch.estimate() == KMV_K - 1

    def test_duplicates_do_not_inflate(self):
        sketch = _KMV()
        for _ in range(10):
            for i in range(20):
                sketch.add(i)
        assert sketch.estimate() == 20

    def test_estimate_within_tolerance_at_scale(self):
        # KMV with k=64 has relative std error ~1/sqrt(k-1) ~= 13%; allow 3x.
        sketch = _KMV()
        n = 20_000
        for i in range(n):
            sketch.add(f"value-{i}")
        estimate = sketch.estimate()
        assert 0.6 * n <= estimate <= 1.4 * n

    def test_unhashable_values_ignored(self):
        sketch = _KMV()
        sketch.add([1, 2])
        assert sketch.estimate() == 0
        sketch.add("ok")
        assert sketch.estimate() == 1


# --------------------------------------------------------------------------
# Per-column and per-table incremental maintenance
# --------------------------------------------------------------------------


class TestColumnStats:
    def test_null_counting(self):
        stats = ColumnStats()
        stats.on_insert(None)
        stats.on_insert(None)
        stats.on_insert(5)
        assert stats.nulls == 2
        stats.on_delete(None)
        assert stats.nulls == 1

    def test_bounds_track_inserts(self):
        stats = ColumnStats()
        for v in (5, 1, 9, 3):
            stats.on_insert(v)
        assert stats.bounds() == (1, 9)

    def test_deleting_extremum_goes_lazy(self):
        stats = ColumnStats()
        for v in (1, 5, 9):
            stats.on_insert(v)
        stats.on_delete(9)
        assert stats.bounds() is None  # stale until refresh

    def test_deleting_interior_value_keeps_bounds(self):
        stats = ColumnStats()
        for v in (1, 5, 9):
            stats.on_insert(v)
        stats.on_delete(5)
        assert stats.bounds() == (1, 9)

    def test_unorderable_mix_disables_bounds(self):
        stats = ColumnStats()
        stats.on_insert(1)
        stats.on_insert("abc")  # int < str raises TypeError
        assert stats.bounds() is None
        stats.on_insert(100)  # stays disabled, no crash
        assert stats.bounds() is None


class TestTableStatistics:
    def test_row_count_follows_mutations(self):
        stats = TableStatistics(["a"])
        for i in range(5):
            stats.on_insert({"a": i})
        assert stats.row_count == 5
        stats.on_delete({"a": 0})
        assert stats.row_count == 4

    def test_update_skips_unchanged_columns(self):
        stats = TableStatistics(["a", "b"])
        stats.on_insert({"a": 1, "b": None})
        stats.on_update({"a": 1, "b": None}, {"a": 1, "b": 7})
        assert stats.null_count("b") == 0
        assert stats.null_count("a") == 0
        assert stats.min_max("b") == (7, 7)

    def test_update_distinguishes_value_types(self):
        # True == 1 but type differs: the update must not be skipped.
        stats = TableStatistics(["a"])
        stats.on_insert({"a": True})
        stats.on_update({"a": True}, {"a": 1})
        assert stats.distinct_estimate("a") >= 1

    def test_refresh_rebuilds_lazy_bounds(self):
        stats = TableStatistics(["a"])
        for v in (1, 5, 9):
            stats.on_insert({"a": v})
        stats.on_delete({"a": 9})
        assert stats.min_max("a") is None
        stats.refresh([{"a": 1}, {"a": 5}])
        assert stats.min_max("a") == (1, 5)
        assert stats.row_count == 2

    def test_unknown_column_reads_are_none(self):
        stats = TableStatistics(["a"])
        assert stats.distinct_estimate("zzz") is None
        assert stats.null_count("zzz") is None
        assert stats.min_max("zzz") is None


# --------------------------------------------------------------------------
# Table integration + cost model
# --------------------------------------------------------------------------


def skew_table(n: int = 400) -> Table:
    """cat: indexed, two-valued (heavy skew); score: indexed, unique."""
    schema = TableSchema(
        "events",
        [
            Column("id", T.INTEGER, nullable=False),
            Column("cat", T.INTEGER),
            Column("score", T.INTEGER),
            Column("note", T.TEXT),
        ],
        primary_key="id",
    )
    table = Table(schema)
    table.create_index("cat")
    table.create_index("score")
    rng = random.Random(11)
    for i in range(1, n + 1):
        table.insert(
            {
                "id": i,
                "cat": i % 2,
                "score": i,
                "note": rng.choice(["x", "y", None]),
            }
        )
    return table


class TestCostModel:
    def test_eq_probe_estimate_uses_distinct(self):
        table = skew_table(400)
        est = estimate_rows(EqProbe("cat", 1), table)
        assert 150 <= est <= 250  # ~400/2

    def test_null_probe_estimate_uses_null_count(self):
        table = skew_table(400)
        nulls = sum(1 for row in table.rows() if row["note"] is None)
        assert estimate_rows(EqProbe("note", None), table) == float(nulls)

    def test_range_estimate_interpolates(self):
        table = skew_table(400)
        est = estimate_rows(RangeProbe("score", lo=1, hi=40), table)
        assert 20 <= est <= 60  # ~10% of 400

    def test_multiprobe_scales_with_list(self):
        table = skew_table(400)
        one = estimate_rows(EqProbe("score", 5), table)
        three = estimate_rows(MultiProbe("score", (5, 6, 7)), table)
        assert abs(three - 3 * one) < 1e-9

    def test_union_sums_and_caps(self):
        table = skew_table(400)
        union = UnionPath((EqProbe("cat", 0), EqProbe("cat", 1)))
        assert estimate_rows(union, table) <= 400.0

    def test_empty_table_estimates_zero(self):
        table = skew_table(0)
        assert estimate_rows(EqProbe("cat", 1), table) == 0.0

    def test_choice_picks_cheapest_by_estimate(self):
        table = skew_table(400)
        # Shape-based ranking would pick the eq probe (rank 0 < rank 2);
        # statistics know it touches half the table while the range probe
        # touches ~10 rows.
        choice = ChoicePath(
            (EqProbe("cat", 1), RangeProbe("score", lo=10, hi=19))
        )
        path, estimate = choose_path(choice, table)
        assert isinstance(path, RangeProbe)
        assert estimate < 50

    def test_wide_probe_demoted_to_full_scan(self):
        table = skew_table(400)
        path, estimate = choose_path(RangeProbe("score", lo=1), table)
        assert path is None  # estimate > 90% of rows: full scan is cheaper
        assert estimate == 400.0

    def test_empty_path_short_circuits(self):
        table = skew_table(50)
        path, estimate = choose_path(EmptyPath(), table)
        assert isinstance(path, EmptyPath)
        assert estimate == 0.0


class TestScanUsesStatistics:
    def test_scan_picks_range_over_skewed_eq(self):
        table = skew_table(400)
        pred = parse_where("cat = 1 AND score BETWEEN 10 AND 19")
        result = table.scan(pred)
        assert table.last_plan.startswith("range(")
        expected = [
            dict(row)
            for row in table.rows()
            if row["cat"] == 1 and 10 <= row["score"] <= 19
        ]
        assert sorted(r["id"] for r in result) == sorted(r["id"] for r in expected)

    def test_last_estimate_recorded(self):
        table = skew_table(400)
        table.scan(parse_where("cat = 1"))
        assert 150 <= table.last_estimate <= 250

    def test_explain_matches_scan(self):
        table = skew_table(400)
        pred = parse_where("score BETWEEN 30 AND 34")
        report = table.explain(pred)
        table.scan(pred)
        assert report["plan"] == table.last_plan
        assert report["estimated_rows"] == table.last_estimate
        assert report["table_rows"] == 400
        assert report["compiled"] is True

    def test_stats_survive_update_and_delete(self):
        table = skew_table(100)
        table.update_by_pk(1, {"note": None})
        table.delete_by_pk(2)
        assert table.statistics.row_count == 99
        nulls = sum(1 for row in table.rows() if row["note"] is None)
        assert table.stat_null_count("note") == nulls

    def test_indexed_columns_report_exact_distinct(self):
        table = skew_table(300)
        assert table.stat_distinct("cat") == 2     # exact from the hash index
        assert table.stat_distinct("score") == 300
        assert table.stat_distinct("id") == 300    # pk index

    def test_index_key_bounds_exact(self):
        table = skew_table(50)
        assert table.stat_min_max("score") == (1, 50)
        table.delete_by_pk(50)
        assert table.stat_min_max("score") == (1, 49)  # index, not lazy stats
