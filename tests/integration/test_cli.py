"""Integration tests for the command-line disguising tool."""

import json

import pytest

from repro.cli import main
from repro.storage.persist import load_database, save_database

from tests.conftest import make_blog_db

SCRUB_DOC = {
    "disguise_name": "CliScrub",
    "tables": {
        "users": {
            "generate_placeholder": [
                ["name", "fake_name"],
                ["email", ["default", None]],
                ["disabled", ["default", True]],
            ],
            "transformations": [{"op": "remove", "pred": "id = $UID"}],
        },
        "posts": {
            "transformations": [
                {"op": "decorrelate", "pred": "user_id = $UID", "foreign_key": "user_id"}
            ]
        },
        "comments": {
            "transformations": [
                {"op": "decorrelate", "pred": "user_id = $UID", "foreign_key": "user_id"}
            ]
        },
        "follows": {
            "transformations": [
                {"op": "remove", "pred": "follower_id = $UID OR followee_id = $UID"}
            ]
        },
    },
}


@pytest.fixture
def workspace(tmp_path):
    db_path = tmp_path / "app.jsonl"
    save_database(make_blog_db(), db_path)
    spec_path = tmp_path / "scrub.json"
    spec_path.write_text(json.dumps(SCRUB_DOC))
    vault_dir = tmp_path / "vaults"
    return db_path, spec_path, vault_dir


def run(*argv) -> int:
    return main([str(a) for a in argv])


class TestCliLifecycle:
    def test_apply_then_history_then_reveal(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace

        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "2", "--check-integrity")
        out = capsys.readouterr().out
        assert code == 0
        assert "CliScrub(uid=2)" in out
        assert "disguise id: 1" in out

        db = load_database(db_path)
        assert db.get("users", 2) is None

        code = run("history", "--db", db_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "CliScrub" in out and "yes" in out

        code = run("vault", "--vault-dir", vault_dir, "--owner", "2")
        out = capsys.readouterr().out
        assert code == 0
        assert "entr" in out
        assert '"op": "remove"' in out

        code = run("reveal", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--did", "1", "--check-integrity")
        out = capsys.readouterr().out
        assert code == 0
        assert "reveal CliScrub" in out

        db = load_database(db_path)
        assert db.get("users", 2)["name"] == "Bea"

    def test_explain(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        code = run("explain", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "2")
        out = capsys.readouterr().out
        assert code == 0
        assert "plan for 'CliScrub'" in out
        assert "decorrelate" in out
        # explain must not have modified the snapshot
        db = load_database(db_path)
        assert db.get("users", 2) is not None

    def test_check_clean_and_violation(self, workspace, capsys, tmp_path):
        db_path, _, _ = workspace
        assert run("check", "--db", db_path) == 0
        out = capsys.readouterr().out
        assert "ok:" in out
        # corrupt the snapshot: point a post at a missing user
        db = load_database(db_path)
        db.table("posts").update_by_pk(10, {"user_id": 999})
        save_database(db, db_path)
        assert run("check", "--db", db_path) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_irreversible_apply(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "2", "--irreversible")
        assert code == 0
        capsys.readouterr()
        code = run("reveal", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--did", "1")
        err = capsys.readouterr().err
        assert code == 1
        assert "irreversibly" in err

    def test_unknown_did_errors(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        code = run("reveal", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--did", "42")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_history(self, workspace, capsys):
        db_path, _, _ = workspace
        assert run("history", "--db", db_path) == 0
        assert "no disguise" in capsys.readouterr().out

    def test_audit_detects_and_clears(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        # before any disguise: Bea is fully present
        code = run("audit", "--db", db_path, "--user-table", "users",
                   "--uid", "2", "--identifier", "bea@x.io")
        assert code == 1
        assert "LEAK" in capsys.readouterr().out
        run("apply", "--db", db_path, "--vault-dir", vault_dir,
            "--spec", spec_path, "--uid", "2")
        capsys.readouterr()
        code = run("audit", "--db", db_path, "--user-table", "users",
                   "--uid", "2", "--identifier", "bea@x.io")
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_name_selects_among_multiple_specs(self, workspace, capsys, tmp_path):
        db_path, spec_path, vault_dir = workspace
        other = dict(SCRUB_DOC)
        other = json.loads(json.dumps(SCRUB_DOC))
        other["disguise_name"] = "OtherScrub"
        other_path = tmp_path / "other.json"
        other_path.write_text(json.dumps(other))
        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--spec", other_path,
                   "--name", "OtherScrub", "--uid", "3")
        out = capsys.readouterr().out
        assert code == 0 and "OtherScrub(uid=3)" in out

    def test_scan_pii(self, workspace, capsys):
        db_path, _, _ = workspace
        code = run("scan-pii", "--db", db_path)
        out = capsys.readouterr().out
        # blog users carry declared-PII emails -> findings
        assert code == 1 and "PII:" in out


class TestCliWalMode:
    def test_wal_apply_defers_snapshot_rewrite(self, workspace, capsys):
        from repro.storage.wal import default_wal_path

        db_path, spec_path, vault_dir = workspace
        snapshot_before = db_path.read_bytes()
        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "2", "--wal")
        assert code == 0
        assert "CliScrub(uid=2)" in capsys.readouterr().out
        # The delta went to the log; the snapshot was not rewritten.
        assert db_path.read_bytes() == snapshot_before
        assert default_wal_path(db_path).stat().st_size > 0

    def test_readers_recover_through_pending_wal(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        run("apply", "--db", db_path, "--vault-dir", vault_dir,
            "--spec", spec_path, "--uid", "2", "--wal")
        capsys.readouterr()
        code = run("history", "--db", db_path)
        out = capsys.readouterr().out
        assert code == 0 and "CliScrub" in out
        assert run("check", "--db", db_path) == 0
        assert "ok:" in capsys.readouterr().out

    def test_checkpoint_folds_wal_into_snapshot(self, workspace, capsys):
        from repro.storage.persist import load_database
        from repro.storage.wal import WriteAheadLog, default_wal_path

        db_path, spec_path, vault_dir = workspace
        run("apply", "--db", db_path, "--vault-dir", vault_dir,
            "--spec", spec_path, "--uid", "2", "--wal")
        capsys.readouterr()
        code = run("checkpoint", "--db", db_path)
        out = capsys.readouterr().out
        assert code == 0 and "checkpoint" in out
        # The log is now empty and the snapshot alone carries the disguise.
        assert WriteAheadLog.read_units(default_wal_path(db_path)) == []
        assert load_database(db_path).get("users", 2) is None

    def test_wal_reveal_round_trip(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        run("apply", "--db", db_path, "--vault-dir", vault_dir,
            "--spec", spec_path, "--uid", "2", "--wal", "--fsync", "always")
        capsys.readouterr()
        code = run("reveal", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--did", "1", "--wal")
        assert code == 0
        assert "reveal CliScrub" in capsys.readouterr().out
        code = run("checkpoint", "--db", db_path)
        capsys.readouterr()
        assert code == 0
        from repro.storage.persist import load_database

        assert load_database(db_path).get("users", 2)["name"] == "Bea"

    def test_non_wal_write_performs_implicit_checkpoint(self, workspace, capsys):
        from repro.storage.persist import load_database
        from repro.storage.wal import default_wal_path

        db_path, spec_path, vault_dir = workspace
        run("apply", "--db", db_path, "--vault-dir", vault_dir,
            "--spec", spec_path, "--uid", "2", "--wal")
        capsys.readouterr()
        # A plain (non --wal) write folds the pending log and removes it,
        # so the two modes can be mixed without double-replay.
        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "3")
        capsys.readouterr()
        assert code == 0
        assert not default_wal_path(db_path).exists()
        db = load_database(db_path)
        assert db.get("users", 2) is None and db.get("users", 3) is None

    def test_non_wal_write_is_atomic_and_supersedes_stale_wal(
        self, workspace, capsys, monkeypatch
    ):
        """The implicit checkpoint's crash discipline: the snapshot is
        installed via rename (never rewritten in place), with a generation
        stamp past the pending log's — so if the crash lands between the
        install and the unlink, the surviving stale log is skipped by
        recovery instead of replaying over the new snapshot."""
        from pathlib import Path

        from repro.storage.persist import load_database, read_snapshot_generation
        from repro.storage.wal import default_wal_path, recover_database

        db_path, spec_path, vault_dir = workspace
        run("apply", "--db", db_path, "--vault-dir", vault_dir,
            "--spec", spec_path, "--uid", "2", "--wal", "--fsync", "always")
        capsys.readouterr()
        stale_wal = default_wal_path(db_path).read_bytes()

        # Simulate the crash window: make the unlink a no-op.
        monkeypatch.setattr(Path, "unlink", lambda self, missing_ok=False: None)
        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "3")
        monkeypatch.undo()
        capsys.readouterr()
        assert code == 0
        wal_path = default_wal_path(db_path)
        assert wal_path.exists() and wal_path.read_bytes() == stale_wal
        # No leftover temp file from the atomic install.
        assert not db_path.with_suffix(db_path.suffix + ".tmp").exists()
        assert read_snapshot_generation(db_path) > 0
        # Recovery reads through the stale log without double-applying.
        db = recover_database(db_path)
        assert db.get("users", 2) is None and db.get("users", 3) is None
        db.assert_integrity()
        # And a later WAL write resets the stale log and keeps going.
        code = run("apply", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--uid", "4", "--wal")
        capsys.readouterr()
        assert code == 0
        assert recover_database(db_path).get("users", 4) is None


class TestCliService:
    def test_submit_serve_jobs_round_trip(self, workspace, capsys):
        """submit queues durably, serve drains with workers, jobs reports."""
        db_path, spec_path, vault_dir = workspace

        for uid in ("2", "3"):
            code = run("submit", "--db", db_path, "apply",
                       "--spec-name", "CliScrub", "--uid", uid)
            out = capsys.readouterr().out
            assert code == 0 and "queued job" in out

        code = run("jobs", "--db", db_path)
        out = capsys.readouterr().out
        assert code == 0
        assert out.count('"state": "pending"') == 2

        code = run("serve", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--workers", "2", "--wal")
        out = capsys.readouterr().out
        assert code == 0
        metrics = json.loads(out)
        assert metrics["jobs_done"] == 2 and metrics["jobs_dead"] == 0
        assert metrics["queue_depth"] == 0

        code = run("jobs", "--db", db_path, "--state", "done")
        out = capsys.readouterr().out
        assert code == 0
        assert out.count('"state": "done"') == 2
        dids = [json.loads(line)["result"]["did"] for line in out.splitlines()]

        from repro.storage.wal import recover_database
        db = recover_database(db_path)
        assert db.get("users", 2) is None and db.get("users", 3) is None
        db.assert_integrity()

        # Queue reveals for both disguises and drain them the same way.
        for did in dids:
            assert run("submit", "--db", db_path, "reveal",
                       "--did", str(did)) == 0
        capsys.readouterr()
        code = run("serve", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--workers", "2", "--wal")
        capsys.readouterr()
        assert code == 0
        db = recover_database(db_path)
        assert db.get("users", 2)["name"] == "Bea"

    def test_serve_reports_dead_jobs(self, workspace, capsys):
        db_path, spec_path, vault_dir = workspace
        assert run("submit", "--db", db_path, "reveal", "--did", "99") == 0
        capsys.readouterr()
        code = run("serve", "--db", db_path, "--vault-dir", vault_dir,
                   "--spec", spec_path, "--workers", "1")
        captured = capsys.readouterr()
        assert code == 1
        assert "dead-lettered" in captured.err

    def test_jobs_without_queue(self, workspace, capsys):
        db_path, _, _ = workspace
        assert run("jobs", "--db", db_path) == 0
        assert "no job queue" in capsys.readouterr().out
