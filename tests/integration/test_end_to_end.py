"""Integration: the full paper §6 scenario on the HotCRP case study."""

import pytest

from repro import Disguiser
from repro.apps.hotcrp import (
    HotcrpPopulation,
    all_disguises,
    check_invariants,
    generate_hotcrp,
    scrub_assertions,
    user_footprint,
)


@pytest.fixture
def conference():
    db = generate_hotcrp(
        population=HotcrpPopulation(users=60, pc_members=8, papers=40, reviews=160),
        seed=11,
    )
    engine = Disguiser(db, seed=4)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


class TestSection6Scenario:
    """The exact experiment sequence of the paper's evaluation."""

    def test_independent_then_composed(self, conference):
        db, engine = conference
        # Two independent GDPR+ disguises for different PC members.
        r1 = engine.apply("HotCRP-GDPR+", uid=2, assertions=scrub_assertions())
        r2 = engine.apply("HotCRP-GDPR+", uid=3, assertions=scrub_assertions())
        assert r1.recorrelated == 0 and r2.recorrelated == 0
        # Now ConfAnon, then GDPR+ for a third member on top of it.
        anon = engine.apply("HotCRP-ConfAnon")
        composed = engine.apply(
            "HotCRP-GDPR+", uid=4, assertions=scrub_assertions(), optimize=False
        )
        assert composed.recorrelated > 0  # vault reveal functions were used
        assert check_invariants(db) == []
        # Everyone's privacy goals hold simultaneously.
        for uid in (2, 3, 4):
            assert all(v == 0 for v in user_footprint(db, uid).values())

    def test_optimized_composition_same_outcome(self, conference):
        db, engine = conference
        engine.apply("HotCRP-ConfAnon")
        report = engine.apply(
            "HotCRP-GDPR+", uid=4, assertions=scrub_assertions(), optimize=True
        )
        assert report.redundant_skipped > 0
        assert all(v == 0 for v in user_footprint(db, 4).values())
        assert check_invariants(db) == []

    def test_returning_user_after_confanon(self, conference):
        """§4.2: reversal of GDPR must not reintroduce identifiable reviews
        if ConfAnon has occurred since GDPR was applied."""
        db, engine = conference
        scrub = engine.apply("HotCRP-GDPR+", uid=2)
        engine.apply("HotCRP-ConfAnon")
        engine.reveal(scrub.disguise_id, check_integrity=True)
        # The account is back, but anonymized per the active ConfAnon:
        bea = db.get("ContactInfo", 2)
        assert bea is not None
        assert bea["firstName"] == "[redacted]"
        # Reviews remain unlinkable to her:
        assert db.count("PaperReview", "contactId = 2") == 0
        assert check_invariants(db) == []

    def test_unwind_everything(self, conference):
        db, engine = conference
        counts_before = {
            t: db.count(t) for t in db.table_names if not t.startswith("_")
        }
        names_before = sorted(c["firstName"] for c in db.select("ContactInfo"))
        dids = [
            engine.apply("HotCRP-GDPR+", uid=2).disguise_id,
            engine.apply("HotCRP-ConfAnon").disguise_id,
            engine.apply("HotCRP-GDPR+", uid=5, optimize=False).disguise_id,
        ]
        for did in reversed(dids):
            engine.reveal(did, check_integrity=True)
        assert {
            t: db.count(t) for t in db.table_names if not t.startswith("_")
        } == counts_before
        assert sorted(c["firstName"] for c in db.select("ContactInfo")) == names_before
        assert engine.vault.size() == 0


class TestScrubThenHardDelete:
    def test_gdpr_after_gdpr_plus(self, conference):
        """A scrubbed user later demands full deletion: the hard GDPR
        composes over the scrub, deleting the decorrelated reviews too."""
        db, engine = conference
        reviews_before = db.count("PaperReview")
        mine = db.count("PaperReview", "contactId = 2")
        scrub = engine.apply("HotCRP-GDPR+", uid=2)
        hard = engine.apply("HotCRP-GDPR", uid=2, optimize=False)
        # the scrub decorrelated the reviews; the hard delete recorrelates
        # them through the vault and removes them for good
        assert hard.recorrelated > 0
        assert db.count("PaperReview") == reviews_before - mine
        assert check_invariants(db) == []


class TestPersistenceIntegration:
    def test_disguised_database_round_trips_through_snapshot(self, conference, tmp_path):
        from repro import load_database, save_database
        from repro.vault import TableVault

        db = generate_hotcrp(
            population=HotcrpPopulation(users=30, pc_members=4, papers=20, reviews=60),
            seed=13,
        )
        vault_db = __import__("repro").Database()
        engine = Disguiser(db, vault=TableVault(vault_db), seed=9)
        for spec in all_disguises():
            engine.register(spec)
        report = engine.apply("HotCRP-GDPR+", uid=2)
        # Snapshot both databases (app + vault), reload, re-attach, reveal.
        app_path, vault_path = tmp_path / "app.jsonl", tmp_path / "vault.jsonl"
        save_database(db, app_path)
        save_database(vault_db, vault_path)
        db2 = load_database(app_path)
        vault2 = TableVault(load_database(vault_path))
        engine2 = Disguiser(db2, vault=vault2, seed=9)
        for spec in all_disguises():
            engine2.register(spec)
        reveal = engine2.reveal(report.disguise_id, check_integrity=True)
        assert reveal.rows_reinserted > 0
        assert db2.get("ContactInfo", 2) is not None
        assert check_invariants(db2) == []
