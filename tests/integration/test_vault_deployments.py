"""Integration: the engine across vault deployment models (paper §4.2)."""

import pytest

from repro import Database, Disguiser
from repro.apps.hotcrp import (
    HotcrpPopulation,
    all_disguises,
    check_invariants,
    generate_hotcrp,
)
from repro.crypto.threshold import escrow_key
from repro.crypto.cipher import SecretKey
from repro.errors import DisguiseError, VaultError
from repro.vault import (
    EncryptedVault,
    FileVault,
    MemoryVault,
    MultiTierVault,
    TableVault,
)


def small_conference():
    return generate_hotcrp(
        population=HotcrpPopulation(users=25, pc_members=4, papers=15, reviews=45),
        seed=21,
    )


def engine_with(vault):
    db = small_conference()
    engine = Disguiser(db, vault=vault, seed=3)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


class TestAcrossDeployments:
    @pytest.mark.parametrize(
        "vault_factory",
        [
            lambda tmp: MemoryVault(),
            lambda tmp: TableVault(),
            lambda tmp: TableVault(Database()),
            lambda tmp: FileVault(tmp / "vaults"),
            lambda tmp: MultiTierVault(MemoryVault(), MemoryVault()),
        ],
        ids=["memory", "table", "table-own-db", "file", "multitier"],
    )
    def test_apply_and_reveal(self, vault_factory, tmp_path):
        db, engine = engine_with(vault_factory(tmp_path))
        report = engine.apply("HotCRP-GDPR+", uid=2)
        assert db.get("ContactInfo", 2) is None
        engine.reveal(report.disguise_id, check_integrity=True)
        assert db.get("ContactInfo", 2) is not None
        assert check_invariants(db) == []


class TestEncryptedDeployment:
    def test_user_key_gates_reveal(self, tmp_path):
        vault = EncryptedVault(MemoryVault())
        key = vault.register_owner(2)
        db, engine = engine_with(vault)
        report = engine.apply("HotCRP-GDPR+", uid=2)  # writing needs no unlock
        with pytest.raises(VaultError):
            engine.reveal(report.disguise_id)  # reading does
        vault.unlock(2, key)
        engine.reveal(report.disguise_id, check_integrity=True)
        assert db.get("ContactInfo", 2) is not None

    def test_escrow_recovers_lost_key(self):
        vault = EncryptedVault(MemoryVault())
        key = SecretKey.generate()
        vault.register_owner(2, key=key, escrow=escrow_key(key))
        db, engine = engine_with(vault)
        report = engine.apply("HotCRP-GDPR+", uid=2)
        vault.lock(2)
        del key  # the user lost it (footnote 1's scenario)
        vault.unlock_via_escrow(2, "app", "third_party")
        engine.reveal(report.disguise_id, check_integrity=True)
        assert db.get("ContactInfo", 2) is not None

    def test_composition_requires_unlock_under_full_encryption(self):
        """With the user's prior disguise in an encrypted vault, composing a
        second disguise for them needs their key — the tension §4.2's
        multi-tier design resolves."""
        vault = EncryptedVault(MemoryVault())
        key = vault.register_owner(2)
        db, engine = engine_with(vault)
        engine.apply("HotCRP-GDPR+", uid=2)
        with pytest.raises(VaultError):
            engine.apply("HotCRP-GDPR", uid=2)  # compose reads the vault
        vault.unlock(2, key)
        engine.apply("HotCRP-GDPR", uid=2)


class TestMultiTierDeployment:
    def test_paper_layout(self):
        """First tier: global vault, tool-accessible. Second tier: per-user
        encrypted vaults for user-invoked disguises."""
        user_tier = EncryptedVault(MemoryVault())
        vault = MultiTierVault(user_tier, MemoryVault())
        for uid in range(1, 26):
            user_tier.register_owner(uid)
        db, engine = engine_with(vault)
        # ConfAnon (automatic) entries land in the accessible tier...
        engine.apply("HotCRP-ConfAnon")
        assert vault.shared_entries_for(2)
        # ...so composing a user's GDPR+ on top needs NO user key:
        report = engine.apply("HotCRP-GDPR+", uid=2, optimize=False)
        assert report.recorrelated > 0
        assert check_invariants(db) == []

    def test_global_reveal_infeasible_with_locked_user_tier(self):
        """Complete reversal of a user-invoked disguise class across all
        users' locked vaults fails — the §4.2 infeasibility argument."""
        user_tier = EncryptedVault(MemoryVault())
        vault = MultiTierVault(user_tier, MemoryVault())
        user_tier.register_owner(2)
        db, engine = engine_with(vault)
        report = engine.apply("HotCRP-GDPR+", uid=2)
        with pytest.raises(VaultError):
            engine.reveal(report.disguise_id)


class TestExpiry:
    def test_expired_disguise_becomes_irreversible(self):
        db, engine = engine_with(MemoryVault())
        r1 = engine.apply("HotCRP-GDPR+", uid=2)
        r2 = engine.apply("HotCRP-GDPR+", uid=3)
        # Retention policy: drop entries older than r2's epoch.
        dropped = engine.vault.expire_before(r2.disguise_id)
        assert dropped > 0
        with pytest.raises(DisguiseError):
            engine.reveal(r1.disguise_id)
        # r2 is still reversible.
        engine.reveal(r2.disguise_id, check_integrity=True)
        assert db.get("ContactInfo", 3) is not None
