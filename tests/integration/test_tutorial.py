"""TUTORIAL.md's code blocks must execute cleanly, in order."""

import pathlib
import re

TUTORIAL = pathlib.Path(__file__).resolve().parents[2] / "TUTORIAL.md"


def test_tutorial_blocks_execute():
    source = TUTORIAL.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", source, re.DOTALL)
    assert len(blocks) >= 3
    namespace: dict = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
    # the last block ends with Bea restored
    assert namespace["db"].get("users", 2)["handle"] == "bea"
