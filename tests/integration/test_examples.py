"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a refactor that breaks one
should fail the suite, not a reader.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should narrate what they do"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "hotcrp_user_scrub.py",
        "lobsters_gdpr.py",
        "data_decay.py",
        "vault_deployments.py",
    } <= names
