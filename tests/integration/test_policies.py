"""Integration: expiration and decay policies over the HotCRP case study."""

import pytest

from repro import (
    DecayPolicy,
    DecayStage,
    Disguiser,
    ExpirationPolicy,
    PolicyScheduler,
    SimClock,
)
from repro.apps.hotcrp import (
    HotcrpPopulation,
    all_disguises,
    check_invariants,
    generate_hotcrp,
    user_activity,
)


@pytest.fixture
def world():
    db = generate_hotcrp(
        population=HotcrpPopulation(users=20, pc_members=4, papers=12, reviews=36),
        seed=17,
    )
    engine = Disguiser(db, seed=6)
    for spec in all_disguises():
        engine.register(spec)
    clock = SimClock(start=100_000.0)
    scheduler = PolicyScheduler(engine, clock)
    return db, engine, clock, scheduler


class TestExpirationOnHotcrp:
    def test_inactive_users_scrubbed_and_restored_on_return(self, world):
        db, engine, clock, scheduler = world
        scheduler.add(
            ExpirationPolicy(
                "inactive-scrub",
                "HotCRP-GDPR+",
                inactive_for=150_000.0,
                activity=user_activity,
            )
        )
        assert scheduler.tick() == []  # nobody idle long enough yet
        clock.advance(200_000)
        actions = scheduler.tick()
        assert actions  # long-inactive users got scrubbed
        scrubbed = {a.uid for a in actions}
        for uid in scrubbed:
            assert db.get("ContactInfo", uid) is None
        assert check_invariants(db) == []
        # One scrubbed user returns: fake a fresh login signal.
        returning = sorted(scrubbed)[0]

        def activity_with_return(database):
            activity = dict(user_activity(database))
            activity[returning] = clock.now
            return activity

        scheduler._expirations[0].activity = activity_with_return
        actions = scheduler.tick()
        reveals = [a for a in actions if a.kind == "reveal"]
        assert [a.uid for a in reveals] == [returning]
        assert db.get("ContactInfo", returning) is not None
        assert check_invariants(db) == []


class TestDecayOnHotcrp:
    def test_two_stage_decay_composes(self, world):
        db, engine, clock, scheduler = world
        baseline = {uid: 100_000.0 for uid in (2, 3)}
        scheduler.add(
            DecayPolicy(
                "review-decay",
                stages=(
                    DecayStage(age=50_000.0, spec_name="HotCRP-GDPR+"),
                    DecayStage(age=90_000.0, spec_name="HotCRP-GDPR"),
                ),
                activity=lambda database: baseline,
            )
        )
        clock.advance(60_000)
        first = scheduler.tick()
        assert {(a.spec_name, a.uid) for a in first} == {
            ("HotCRP-GDPR+", 2), ("HotCRP-GDPR+", 3),
        }
        reviews_mid = db.count("PaperReview")
        assert reviews_mid > 0  # stage 1 kept (decorrelated) reviews
        clock.advance(40_000)
        second = scheduler.tick()
        assert {(a.spec_name, a.uid) for a in second} == {
            ("HotCRP-GDPR", 2), ("HotCRP-GDPR", 3),
        }
        # stage 2 (hard GDPR) composed over stage 1, deleting the
        # previously decorrelated reviews via vault recorrelation
        assert db.count("PaperReview") < reviews_mid
        assert check_invariants(db) == []
