"""Failure injection: the engine must stay atomic when components fail.

A disguise spans two stores — the application database (transactional) and
the vault (possibly external). The engine journals vault writes and
compensates them when the database transaction aborts; these tests inject
failures at each stage and assert that neither store leaks partial state.
"""

from __future__ import annotations

import pytest

from repro import Disguiser
from repro.errors import VaultError
from repro.vault.entry import VaultEntry
from repro.vault.memory_vault import MemoryVault

from tests.conftest import blog_anon_spec, blog_scrub_spec, make_blog_db


class FlakyVault(MemoryVault):
    """Fails the Nth write (put/replace), then recovers."""

    def __init__(self, fail_on_write: int = -1) -> None:
        super().__init__()
        self.fail_on_write = fail_on_write
        self.write_count = 0

    def _tick(self) -> None:
        self.write_count += 1
        if self.write_count == self.fail_on_write:
            raise VaultError("injected vault failure")

    def _put(self, entry: VaultEntry) -> None:
        self._tick()
        super()._put(entry)

    def _replace(self, entry: VaultEntry) -> None:
        self._tick()
        super()._replace(entry)


def snapshot(db):
    return {
        name: sorted(tuple(sorted(row.items())) for row in db.table(name).rows())
        for name in db.table_names
    }


class TestVaultFailureDuringApply:
    @pytest.mark.parametrize("fail_on", [1, 3, 7])
    def test_apply_aborts_cleanly(self, fail_on):
        db = make_blog_db()
        vault = FlakyVault(fail_on_write=fail_on)
        engine = Disguiser(db, vault=vault)
        engine.register(blog_scrub_spec())
        before = snapshot(db)
        with pytest.raises(VaultError):
            engine.apply("BlogScrub", uid=2)
        # database rolled back exactly, vault compensated to empty
        assert snapshot(db) == before
        assert vault.size() == 0
        assert engine.history.records() == []

    def test_engine_usable_after_failure(self):
        db = make_blog_db()
        vault = FlakyVault(fail_on_write=2)
        engine = Disguiser(db, vault=vault)
        engine.register(blog_scrub_spec())
        with pytest.raises(VaultError):
            engine.apply("BlogScrub", uid=2)
        # next attempt (no injected failure left) succeeds fully
        report = engine.apply("BlogScrub", uid=2, check_integrity=True)
        assert db.get("users", 2) is None
        assert vault.size() == report.vault_entries_written

    def test_composition_failure_compensates_replacements(self):
        db = make_blog_db()
        vault = FlakyVault()
        engine = Disguiser(db, vault=vault)
        engine.register(blog_anon_spec())
        engine.register(blog_scrub_spec())
        engine.apply("BlogAnon")
        entries_before = {
            e.entry_id: e.to_json() for e in vault.all_entries()
        }
        before = snapshot(db)
        # fail late: during the composed apply's vault traffic
        vault.fail_on_write = vault.write_count + 5
        with pytest.raises(VaultError):
            engine.apply("BlogScrub", uid=2, optimize=False)
        assert snapshot(db) == before
        # BlogAnon's entries are back to their exact pre-attempt state
        entries_after = {e.entry_id: e.to_json() for e in vault.all_entries()}
        assert entries_after == entries_before


class TestVaultFailureDuringReveal:
    def test_reveal_aborts_cleanly(self):
        db = make_blog_db()
        vault = FlakyVault()
        engine = Disguiser(db, vault=vault)
        engine.register(blog_scrub_spec())
        engine.register(blog_anon_spec())
        scrub = engine.apply("BlogScrub", uid=2)
        engine.apply("BlogAnon")
        disguised = snapshot(db)
        entries_before = {e.entry_id: e.to_json() for e in vault.all_entries()}
        # chain reveal replaces later entries; fail on one of those writes
        vault.fail_on_write = vault.write_count + 2
        with pytest.raises(VaultError):
            engine.reveal(scrub.disguise_id)
        assert snapshot(db) == disguised
        entries_after = {e.entry_id: e.to_json() for e in vault.all_entries()}
        assert entries_after == entries_before
        # the disguise is still active and still revealable afterwards
        record = engine.history.get(scrub.disguise_id)
        assert record.active
        engine.reveal(scrub.disguise_id, check_integrity=True)
        assert db.get("users", 2) is not None


class TestAssertionRollbackLeavesNoTrace:
    def test_vault_and_history_clean_after_revert(self):
        from repro import PrivacyAssertion
        from repro.errors import AssertionFailure

        db = make_blog_db()
        engine = Disguiser(db)
        engine.register(blog_scrub_spec())
        impossible = PrivacyAssertion("never", table="users", pred="TRUE")
        before = snapshot(db)
        with pytest.raises(AssertionFailure):
            engine.apply("BlogScrub", uid=2, assertions=[impossible])
        assert snapshot(db) == before
        assert engine.vault.size() == 0
