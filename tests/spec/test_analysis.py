"""Unit tests for static spec analysis: validation, interactions, redundancy."""

import pytest

from repro.errors import SpecError
from repro.spec.analysis import (
    find_interactions,
    redundant_decorrelations,
    validate_spec,
)
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import Default, FakeName
from repro.spec.transform import Decorrelate, Modify, Remove, named_modifier
from repro.storage.schema import Schema
from repro.storage.sql import parse_schema

DDL = """
CREATE TABLE users (id INT PRIMARY KEY, name TEXT PII, email TEXT PII, bio TEXT);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  body TEXT
);
CREATE TABLE likes (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  post_id INT NOT NULL REFERENCES posts(id)
);
"""


def schema() -> Schema:
    s = Schema(parse_schema(DDL))
    s.validate()
    return s


def _null(pred, column):
    fn, label = named_modifier("null")
    return Modify(pred, column=column, fn=fn, label=label)


def full_delete_spec() -> DisguiseSpec:
    return DisguiseSpec(
        "Delete",
        [
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={"name": FakeName(), "email": Default(None)},
            ),
            TableDisguise("posts", transformations=[Remove("user_id = $UID")]),
            TableDisguise("likes", transformations=[Remove("user_id = $UID")]),
        ],
    )


class TestValidateSpec:
    def test_clean_spec_no_errors(self):
        warnings = validate_spec(full_delete_spec(), schema())
        assert warnings == []

    def test_unknown_table_rejected(self):
        spec = DisguiseSpec("d", [TableDisguise("ghost")])
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_unknown_predicate_column_rejected(self):
        spec = DisguiseSpec(
            "d", [TableDisguise("users", transformations=[Remove("ghost = 1")])]
        )
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_unknown_modify_column_rejected(self):
        spec = DisguiseSpec(
            "d", [TableDisguise("users", transformations=[_null("TRUE", "ghost")])]
        )
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_decorrelate_must_target_fk(self):
        spec = DisguiseSpec(
            "d",
            [
                TableDisguise(
                    "posts",
                    transformations=[Decorrelate("TRUE", foreign_key="body")],
                )
            ],
        )
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_decorrelate_requires_placeholder_recipe(self):
        spec = DisguiseSpec(
            "d",
            [
                TableDisguise(
                    "posts",
                    transformations=[Decorrelate("TRUE", foreign_key="user_id")],
                )
            ],
        )
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_unknown_generator_column_rejected(self):
        spec = DisguiseSpec(
            "d",
            [TableDisguise("users", generate_placeholder={"ghost": Default(None)})],
        )
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_unknown_owner_column_rejected(self):
        spec = DisguiseSpec("d", [TableDisguise("users", owner_column="ghost")])
        with pytest.raises(SpecError):
            validate_spec(spec, schema())

    def test_warns_on_unaddressed_children(self):
        spec = DisguiseSpec(
            "d",
            [
                TableDisguise("users", transformations=[Remove("id = $UID")]),
                TableDisguise("posts", transformations=[Remove("user_id = $UID")]),
                # likes not addressed
            ],
        )
        warnings = validate_spec(spec, schema())
        assert any(w.table == "likes" for w in warnings)

    def test_warns_on_untouched_pii(self):
        spec = DisguiseSpec(
            "d",
            [TableDisguise("users", transformations=[_null("TRUE", "email")])],
        )
        warnings = validate_spec(spec, schema())
        # name is PII and untouched; email is modified
        assert any("name" in w.message for w in warnings)
        assert not any("'email'" in w.message for w in warnings)

    def test_removal_silences_pii_warning(self):
        warnings = validate_spec(full_delete_spec(), schema())
        assert not any("PII" in w.message for w in warnings)


class TestInteractions:
    def test_remove_then_anything_composes_naturally(self):
        first = full_delete_spec()
        second = full_delete_spec()
        interactions = find_interactions(first, second)
        assert interactions
        assert all("composes naturally" in i.detail for i in interactions)

    def test_decorrelate_then_remove_needs_recorrelation(self):
        anon = DisguiseSpec(
            "Anon",
            [
                TableDisguise(
                    "users", generate_placeholder={"name": FakeName()}
                ),
                TableDisguise(
                    "posts",
                    transformations=[Decorrelate("TRUE", foreign_key="user_id")],
                ),
            ],
        )
        gdpr = DisguiseSpec(
            "GDPR",
            [TableDisguise("posts", transformations=[Remove("user_id = $UID")])],
        )
        interactions = find_interactions(anon, gdpr)
        assert any(
            i.kind == "decorrelate/remove" and "recorrelation" in i.detail
            for i in interactions
        )

    def test_modify_then_predicate_reader_flagged(self):
        first = DisguiseSpec(
            "A", [TableDisguise("users", transformations=[_null("TRUE", "bio")])]
        )
        second = DisguiseSpec(
            "B",
            [TableDisguise("users", transformations=[Remove("bio = 'x'")])],
        )
        interactions = find_interactions(first, second)
        assert any("bio" in i.detail for i in interactions)

    def test_disjoint_tables_no_interaction(self):
        first = DisguiseSpec(
            "A", [TableDisguise("users", transformations=[_null("TRUE", "bio")])]
        )
        second = DisguiseSpec(
            "B", [TableDisguise("likes", transformations=[Remove("user_id = $UID")])]
        )
        assert find_interactions(first, second) == []


class TestRedundantDecorrelations:
    def test_same_fk_detected(self):
        anon = DisguiseSpec(
            "Anon",
            [
                TableDisguise("users", generate_placeholder={"name": FakeName()}),
                TableDisguise(
                    "posts",
                    transformations=[Decorrelate("TRUE", foreign_key="user_id")],
                ),
            ],
        )
        scrub = DisguiseSpec(
            "Scrub",
            [
                TableDisguise("users", generate_placeholder={"name": FakeName()}),
                TableDisguise(
                    "posts",
                    transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
                ),
            ],
        )
        redundant = redundant_decorrelations(anon, scrub)
        assert len(redundant) == 1
        assert redundant[0].table == "posts" and redundant[0].foreign_key == "user_id"

    def test_different_fk_not_flagged(self):
        first = DisguiseSpec(
            "A",
            [
                TableDisguise("users", generate_placeholder={"name": FakeName()}),
                TableDisguise(
                    "likes", transformations=[Decorrelate("TRUE", foreign_key="user_id")]
                ),
            ],
        )
        second = DisguiseSpec(
            "B",
            [
                TableDisguise(
                    "likes", transformations=[Decorrelate("TRUE", foreign_key="post_id")]
                ),
            ],
        )
        assert redundant_decorrelations(first, second) == []

    def test_paper_specs_exhibit_redundancy(self):
        from repro.apps.hotcrp import hotcrp_confanon, hotcrp_gdpr_plus

        redundant = redundant_decorrelations(hotcrp_confanon(), hotcrp_gdpr_plus())
        tables = {r.table for r in redundant}
        assert "PaperReview" in tables  # the paper's headline case
