"""Unit tests for DisguiseSpec and TableDisguise."""

import pytest

from repro.errors import SpecError
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import Default, FakeName
from repro.spec.transform import Decorrelate, Modify, Remove, named_modifier


def scrub_spec() -> DisguiseSpec:
    return DisguiseSpec(
        "UserScrub",
        [
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={"name": FakeName(), "email": Default(None)},
            ),
            TableDisguise(
                "posts",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
        ],
    )


class TestDisguiseSpec:
    def test_name_required(self):
        with pytest.raises(SpecError):
            DisguiseSpec("")

    def test_duplicate_table_rejected(self):
        with pytest.raises(SpecError):
            DisguiseSpec(
                "d",
                [TableDisguise("t"), TableDisguise("t")],
            )

    def test_table_lookup(self):
        spec = scrub_spec()
        assert spec.table_disguise("users").table == "users"
        assert spec.table_disguise("ghost") is None
        assert spec.table_names == ("users", "posts")

    def test_user_disguise_detection(self):
        assert scrub_spec().is_user_disguise
        fn, label = named_modifier("redact")
        global_spec = DisguiseSpec(
            "Anon",
            [TableDisguise("users", transformations=[Modify("TRUE", column="name", fn=fn, label=label)])],
        )
        assert not global_spec.is_user_disguise

    def test_params_collected(self):
        assert scrub_spec().params() == {"UID"}

    def test_transformations_of_filters_by_kind(self):
        spec = scrub_spec()
        removes = list(spec.transformations_of((Remove,)))
        assert len(removes) == 1 and removes[0][0].table == "users"
        all_ops = list(spec.transformations_of())
        assert len(all_ops) == 2


class TestRendering:
    def test_to_text_resembles_figure3(self):
        text = scrub_spec().to_text()
        assert "disguise_name: 'UserScrub'" in text
        assert "user_to_disguise: $UID" in text
        assert "generate_placeholder: [" in text
        assert "Remove(pred: id = $UID)" in text
        assert "Decorrelate(pred: user_id = $UID, foreign_key: user_id)" in text

    def test_loc_counts_nonblank_lines(self):
        spec = scrub_spec()
        text = spec.to_text()
        assert spec.loc() == sum(1 for line in text.splitlines() if line.strip())
        assert spec.loc() > 10

    def test_owner_column_rendered(self):
        td = TableDisguise("t", owner_column="uid")
        assert any("owner: uid" in line for line in td.describe_lines())

    def test_loc_grows_with_spec_size(self):
        small = scrub_spec()
        bigger = scrub_spec()
        fn, label = named_modifier("null")
        bigger.tables.append(
            TableDisguise("extra", transformations=[Modify("TRUE", column="x", fn=fn, label=label)])
        )
        assert bigger.loc() > small.loc()
