"""Unit tests for the declarative spec document format."""

import json

import pytest

from repro.errors import SpecError
from repro.spec.disguise import DisguiseSpec
from repro.spec.generate import Default, FakeName, Sequence
from repro.spec.parser import spec_from_dict, spec_from_json, spec_to_dict
from repro.spec.transform import Decorrelate, Modify, Remove

FIGURE3_DOC = {
    "disguise_name": "UserScrub",
    "description": "Paper Figure 3",
    "tables": {
        "ContactInfo": {
            "generate_placeholder": [
                ["name", "fake_name"],
                ["email", ["default", None]],
                ["disabled", ["default", True]],
            ],
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}],
        },
        "ReviewPreference": {
            "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "Review": {
            "transformations": [
                {
                    "op": "decorrelate",
                    "pred": "contactId = $UID",
                    "foreign_key": "contactId",
                }
            ]
        },
    },
}


class TestFromDict:
    def test_figure3_document(self):
        spec = spec_from_dict(FIGURE3_DOC)
        assert spec.name == "UserScrub"
        assert spec.is_user_disguise
        assert spec.table_names == ("ContactInfo", "ReviewPreference", "Review")
        contact = spec.table_disguise("ContactInfo")
        assert isinstance(contact.generate_placeholder["name"], FakeName)
        assert isinstance(contact.generate_placeholder["email"], Default)
        assert isinstance(contact.transformations[0], Remove)
        review = spec.table_disguise("Review")
        decorrelate = review.transformations[0]
        assert isinstance(decorrelate, Decorrelate)
        assert decorrelate.foreign_key == "contactId"

    def test_modify_with_named_fn(self):
        spec = spec_from_dict(
            {
                "disguise_name": "Redactor",
                "tables": {
                    "users": {
                        "transformations": [
                            {"op": "modify", "pred": "TRUE", "column": "bio", "fn": "redact"}
                        ]
                    }
                },
            }
        )
        modify = spec.tables[0].transformations[0]
        assert isinstance(modify, Modify)
        assert modify.fn("x") == "[redacted]"
        assert modify.label == "redact"

    def test_owner_column(self):
        spec = spec_from_dict(
            {
                "disguise_name": "d",
                "tables": {"t": {"owner": "uid", "transformations": []}},
            }
        )
        assert spec.tables[0].owner_column == "uid"

    def test_default_pred_is_true(self):
        spec = spec_from_dict(
            {
                "disguise_name": "d",
                "tables": {"t": {"transformations": [{"op": "remove"}]}},
            }
        )
        assert spec.tables[0].transformations[0].pred.test({})

    def test_missing_name_rejected(self):
        with pytest.raises(SpecError):
            spec_from_dict({"tables": {}})

    def test_missing_tables_rejected(self):
        with pytest.raises(SpecError):
            spec_from_dict({"disguise_name": "d"})

    def test_bad_generator_pair_rejected(self):
        with pytest.raises(SpecError):
            spec_from_dict(
                {
                    "disguise_name": "d",
                    "tables": {"t": {"generate_placeholder": [["only-one"]]}},
                }
            )

    def test_unknown_op_rejected(self):
        with pytest.raises(SpecError):
            spec_from_dict(
                {
                    "disguise_name": "d",
                    "tables": {"t": {"transformations": [{"op": "explode"}]}},
                }
            )

    def test_decorrelate_needs_fk(self):
        with pytest.raises(SpecError):
            spec_from_dict(
                {
                    "disguise_name": "d",
                    "tables": {"t": {"transformations": [{"op": "decorrelate", "pred": "TRUE"}]}},
                }
            )

    def test_modify_needs_column_and_fn(self):
        with pytest.raises(SpecError):
            spec_from_dict(
                {
                    "disguise_name": "d",
                    "tables": {"t": {"transformations": [{"op": "modify", "pred": "TRUE"}]}},
                }
            )


class TestJsonAndRoundTrip:
    def test_from_json(self):
        spec = spec_from_json(json.dumps(FIGURE3_DOC))
        assert isinstance(spec, DisguiseSpec)
        assert spec.name == "UserScrub"

    def test_bad_json_rejected(self):
        with pytest.raises(SpecError):
            spec_from_json("{not json")

    def test_to_dict_structure(self):
        spec = spec_from_dict(FIGURE3_DOC)
        doc = spec_to_dict(spec)
        assert doc["disguise_name"] == "UserScrub"
        review_ops = doc["tables"]["Review"]["transformations"]
        assert review_ops[0]["op"] == "decorrelate"
        assert review_ops[0]["foreign_key"] == "contactId"
        contact_ops = doc["tables"]["ContactInfo"]["transformations"]
        assert contact_ops[0]["op"] == "remove"
        assert "$UID" in contact_ops[0]["pred"]

    def test_modify_round_trip_via_label(self):
        doc = {
            "disguise_name": "d",
            "tables": {
                "t": {
                    "transformations": [
                        {"op": "modify", "pred": "a = 1", "column": "c", "fn": "null"}
                    ]
                }
            },
        }
        spec = spec_from_dict(doc)
        doc2 = spec_to_dict(spec)
        spec2 = spec_from_dict(doc2)
        modify = spec2.tables[0].transformations[0]
        assert modify.fn("anything") is None
