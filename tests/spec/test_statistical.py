"""Tests for the statistical-privacy helpers (paper §8)."""

import random

import pytest

from repro import Database, Disguiser, DisguiseSpec, Modify, Schema, TableDisguise, parse_schema
from repro.errors import SpecError
from repro.spec.statistical import (
    generalize_numeric,
    generalize_text,
    k_anonymity_groups,
    k_anonymity_predicate,
    k_anonymity_violations,
    l_diversity_violations,
    laplace_count,
)

DDL = """
CREATE TABLE patients (
  id INT PRIMARY KEY,
  zip TEXT,
  age INT,
  diagnosis TEXT
);
"""


@pytest.fixture
def patients():
    db = Database(Schema(parse_schema(DDL)))
    rows = [
        # A k=3 group (zip 02139 / age 30)
        (1, "02139", 30, "flu"),
        (2, "02139", 30, "cold"),
        (3, "02139", 30, "flu"),
        # A singleton group — re-identifiable
        (4, "94704", 62, "cancer"),
        # A pair
        (5, "10001", 45, "flu"),
        (6, "10001", 45, "flu"),
        # NULL quasi-identifier group
        (7, None, 30, "cold"),
    ]
    for pk, zip_code, age, diagnosis in rows:
        db.insert("patients", {"id": pk, "zip": zip_code, "age": age, "diagnosis": diagnosis})
    return db


class TestKAnonymity:
    def test_groups(self, patients):
        groups = k_anonymity_groups(patients, "patients", ["zip", "age"])
        sizes = sorted(g.size for g in groups)
        assert sizes == [1, 1, 2, 3]

    def test_violations(self, patients):
        violations = k_anonymity_violations(patients, "patients", ["zip", "age"], k=3)
        violating_pks = sorted(pk for g in violations for pk in g.pks)
        assert violating_pks == [4, 5, 6, 7]

    def test_already_anonymous(self, patients):
        assert k_anonymity_violations(patients, "patients", ["age"], k=1) == []

    def test_unknown_column_rejected(self, patients):
        with pytest.raises(Exception):
            k_anonymity_groups(patients, "patients", ["ghost"])

    def test_bad_k(self, patients):
        with pytest.raises(SpecError):
            k_anonymity_violations(patients, "patients", ["zip"], k=0)

    def test_predicate_selects_exactly_violating_rows(self, patients):
        pred = k_anonymity_predicate(patients, "patients", ["zip", "age"], k=3)
        rows = patients.select("patients", pred)
        assert sorted(r["id"] for r in rows) == [4, 5, 6, 7]

    def test_predicate_false_when_clean(self, patients):
        pred = k_anonymity_predicate(patients, "patients", ["age"], k=1)
        assert patients.select("patients", pred) == []

    def test_predicate_drives_a_disguise(self, patients):
        """The §8 sentence, literally: a disguise predicate based on a
        statistical criterion, generalizing until the table is k-anonymous."""
        pred = k_anonymity_predicate(patients, "patients", ["zip", "age"], k=3)
        spec = DisguiseSpec(
            "KAnonymize",
            [
                TableDisguise(
                    "patients",
                    transformations=[
                        Modify(pred, column="zip", fn=generalize_text(0), label="zip0"),
                        Modify(pred, column="age", fn=generalize_numeric(100), label="age100"),
                    ],
                )
            ],
        )
        engine = Disguiser(patients)
        report = engine.apply(spec)
        assert report.rows_modified == 8  # 4 rows x 2 columns
        # the generalized non-NULL rows now form one group of >= 3; only
        # the NULL-zip row remains its own class (NULL cannot generalize
        # into a value group — it must be suppressed, not coarsened).
        violations = k_anonymity_violations(patients, "patients", ["zip", "age"], k=3)
        assert all(None in group.key for group in violations)
        sizes = {
            g.key: g.size
            for g in k_anonymity_groups(patients, "patients", ["zip", "age"])
        }
        assert sizes[("*****", 0)] >= 3
        # and the disguise is reversible like any other
        engine.reveal(report.disguise_id)
        assert patients.get("patients", 4)["zip"] == "94704"


class TestLDiversity:
    def test_homogeneous_group_flagged(self, patients):
        violations = l_diversity_violations(
            patients, "patients", ["zip", "age"], sensitive="diagnosis", l=2
        )
        keys = {g.key for g in violations}
        # the 10001/45 pair is all-flu (l=1); singletons are trivially l=1
        assert ("10001", 45) in keys

    def test_diverse_group_passes(self, patients):
        violations = l_diversity_violations(
            patients, "patients", ["zip", "age"], sensitive="diagnosis", l=2
        )
        keys = {g.key for g in violations}
        assert ("02139", 30) not in keys  # flu + cold


class TestGeneralizers:
    def test_numeric_buckets(self):
        fn = generalize_numeric(10)
        assert fn(37) == 30
        assert fn(40) == 40
        assert fn(None) is None

    def test_text_prefix(self):
        fn = generalize_text(3)
        assert fn("02139") == "021**"
        assert fn("ab") == "ab"
        assert fn(None) is None

    def test_invalid_parameters(self):
        with pytest.raises(SpecError):
            generalize_numeric(0)
        with pytest.raises(SpecError):
            generalize_text(-1)


class TestLaplaceCount:
    def test_noise_centered_on_true_count(self, patients):
        rng = random.Random(0)
        samples = [
            laplace_count(patients, "patients", "age = 30", epsilon=1.0, rng=rng)
            for _ in range(400)
        ]
        mean = sum(samples) / len(samples)
        assert abs(mean - 4) < 0.5  # true count is 4

    def test_higher_epsilon_less_noise(self, patients):
        rng = random.Random(1)
        tight = [
            abs(laplace_count(patients, "patients", "TRUE", epsilon=10.0, rng=rng) - 7)
            for _ in range(200)
        ]
        rng = random.Random(1)
        loose = [
            abs(laplace_count(patients, "patients", "TRUE", epsilon=0.5, rng=rng) - 7)
            for _ in range(200)
        ]
        assert sum(tight) < sum(loose)

    def test_bad_epsilon(self, patients):
        with pytest.raises(SpecError):
            laplace_count(patients, "patients", "TRUE", epsilon=0)
