"""Unit tests for the three fundamental transformation operations."""

import pytest

from repro.errors import SpecError
from repro.spec.transform import Decorrelate, Modify, Remove, named_modifier
from repro.storage.predicate import Predicate


class TestConstruction:
    def test_string_predicate_parsed(self):
        t = Remove("contactId = $UID")
        assert isinstance(t.pred, Predicate)
        assert t.pred.params() == {"UID"}

    def test_predicate_object_accepted(self):
        from repro.storage.predicate import TrueP

        assert isinstance(Remove(TrueP()).pred, TrueP)

    def test_kinds(self):
        assert Remove("TRUE").kind == "remove"
        assert Modify("TRUE", column="c").kind == "modify"
        assert Decorrelate("TRUE", foreign_key="c").kind == "decorrelate"

    def test_decorrelate_requires_fk(self):
        with pytest.raises(SpecError):
            Decorrelate("TRUE")

    def test_modify_requires_column(self):
        with pytest.raises(SpecError):
            Modify("TRUE")

    def test_describe_rendering(self):
        assert "Remove(pred:" in Remove("a = 1").describe()
        assert "foreign_key: uid" in Decorrelate("TRUE", foreign_key="uid").describe()
        fn, label = named_modifier("redact")
        assert "fn: redact" in Modify("TRUE", column="c", fn=fn, label=label).describe()


class TestNamedModifiers:
    def test_null(self):
        fn, _ = named_modifier("null")
        assert fn("anything") is None

    def test_redact_preserves_null(self):
        fn, _ = named_modifier("redact")
        assert fn("secret") == "[redacted]"
        assert fn(None) is None

    def test_deleted(self):
        fn, _ = named_modifier("deleted")
        assert fn("body text") == "[deleted]"

    def test_zero_false_true_empty(self):
        assert named_modifier("zero")[0](9) == 0
        assert named_modifier("false")[0](True) is False
        assert named_modifier("true")[0](False) is True
        assert named_modifier("empty")[0]("abc") == ""
        assert named_modifier("empty")[0](None) is None

    def test_hash_is_stable_and_opaque(self):
        fn, _ = named_modifier("hash")
        assert fn("x") == fn("x")
        assert fn("x") != "x"
        assert len(fn("x")) == 8

    def test_truncate(self):
        fn, _ = named_modifier("truncate")
        assert fn("a" * 40) == "a" * 16
        assert fn(123) == 123

    def test_coarsen_day(self):
        fn, _ = named_modifier("coarsen_day")
        assert fn(86_400 * 3 + 12_345) == 86_400 * 3
        assert fn(None) is None

    def test_coarsen_year(self):
        fn, _ = named_modifier("coarsen_year")
        assert fn(31_536_000 + 5) == 31_536_000

    def test_unknown_modifier(self):
        with pytest.raises(SpecError):
            named_modifier("explode")
