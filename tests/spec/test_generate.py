"""Unit tests for placeholder generators."""

import random

import pytest

from repro.errors import SpecError
from repro.spec.generate import (
    Compute,
    Default,
    FakeEmail,
    FakeName,
    GenContext,
    RandomValue,
    Sequence,
    generator_from_config,
)
from repro.storage.schema import Column
from repro.storage.types import ColumnType as T


def ctx(ctype=T.TEXT, counter=1, seed=0) -> GenContext:
    return GenContext(rng=random.Random(seed), column=Column("c", ctype), counter=counter)


class TestRandomValue:
    def test_text(self):
        value = RandomValue().generate(ctx(T.TEXT))
        assert isinstance(value, str) and len(value) == 12

    def test_integer_in_range(self):
        value = RandomValue(lo=5, hi=9).generate(ctx(T.INTEGER))
        assert 5 <= value <= 9

    def test_bool_real_datetime(self):
        assert isinstance(RandomValue().generate(ctx(T.BOOL)), bool)
        assert isinstance(RandomValue().generate(ctx(T.REAL)), float)
        assert isinstance(RandomValue().generate(ctx(T.DATETIME)), float)

    def test_blob_unsupported(self):
        with pytest.raises(SpecError):
            RandomValue().generate(ctx(T.BLOB))

    def test_deterministic_under_seed(self):
        assert RandomValue().generate(ctx(seed=5)) == RandomValue().generate(ctx(seed=5))


class TestOtherGenerators:
    def test_default(self):
        assert Default(None).generate(ctx()) is None
        assert Default(True).generate(ctx(T.BOOL)) is True

    def test_sequence_text_and_int(self):
        assert Sequence("anon-").generate(ctx(T.TEXT, counter=7)) == "anon-7"
        assert Sequence().generate(ctx(T.INTEGER, counter=7)) == 7

    def test_fake_name_format(self):
        name = FakeName().generate(ctx())
        parts = name.split()
        assert len(parts) == 2 and all(p[0].isupper() for p in parts)

    def test_fake_email_format(self):
        email = FakeEmail().generate(ctx())
        local, _, domain = email.partition("@")
        assert len(local) == 10 and domain == "anon.invalid"
        assert FakeEmail("x.test").generate(ctx()).endswith("@x.test")

    def test_compute(self):
        gen = Compute(lambda c: c.counter * 2, label="double")
        assert gen.generate(ctx(counter=3)) == 6
        assert gen.describe() == "double"


class TestGeneratorFromConfig:
    def test_string_form(self):
        assert isinstance(generator_from_config("random"), RandomValue)
        assert isinstance(generator_from_config("fake_name"), FakeName)

    def test_list_form_with_args(self):
        gen = generator_from_config(["default", 42])
        assert isinstance(gen, Default) and gen.value == 42
        gen = generator_from_config(("sequence", "ghost-"))
        assert isinstance(gen, Sequence) and gen.prefix == "ghost-"

    def test_dict_form(self):
        gen = generator_from_config({"kind": "fake_email", "args": ["x.invalid"]})
        assert isinstance(gen, FakeEmail) and gen.domain == "x.invalid"

    def test_instance_passthrough(self):
        gen = Default(1)
        assert generator_from_config(gen) is gen

    def test_unknown_rejected(self):
        with pytest.raises(SpecError):
            generator_from_config("nope")
        with pytest.raises(SpecError):
            generator_from_config(["nope"])
        with pytest.raises(SpecError):
            generator_from_config(123)
