"""ShardedDatabase facade tests: partition, routing, FK parity, metrics."""

from __future__ import annotations

import pytest

from repro import Database, Schema, parse_schema
from repro.errors import ForeignKeyError, ShardError, StorageError
from repro.shard import (
    ShardedDatabase,
    collapse,
    owner_shard,
    shard_database,
)

from tests.conftest import make_blog_db

GLOBAL_DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT
);
CREATE TABLE badges (
  id INT PRIMARY KEY,
  label TEXT
);
CREATE TABLE awards (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  badge_id INT NOT NULL REFERENCES badges(id)
);
"""


def rows_set(db, table):
    return {tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in db.select(table)}


@pytest.fixture
def sharded(request):
    db = make_blog_db()
    return db, shard_database(make_blog_db(), 3)


class TestPartition:
    def test_row_counts_preserved(self, sharded):
        plain, sdb = sharded
        assert sdb.row_counts() == plain.row_counts()
        assert sdb.total_rows() == plain.total_rows()

    def test_rows_identical(self, sharded):
        plain, sdb = sharded
        for table in ("users", "posts", "comments", "follows"):
            assert rows_set(sdb, table) == rows_set(plain, table)

    def test_placement_respects_owner_hash(self, sharded):
        _plain, sdb = sharded
        for user in sdb.select("users"):
            home = owner_shard(user["id"], 3)
            assert sdb.shards[home].table("users").rid_of(user["id"]) is not None
        for post in sdb.select("posts"):
            home = owner_shard(post["user_id"], 3)
            assert sdb.shards[home].table("posts").rid_of(post["id"]) is not None

    def test_integrity_clean(self, sharded):
        _plain, sdb = sharded
        assert sdb.check_integrity() == []

    def test_collapse_round_trips(self, sharded):
        plain, sdb = sharded
        merged = collapse(sdb)
        for table in plain.schema.table_names:
            assert rows_set(merged, table) == rows_set(plain, table)


class TestRouting:
    def test_owner_eq_read_routes_single_shard(self, sharded):
        _plain, sdb = sharded
        before = sdb.scatter_reads
        rows = sdb.select("posts", "user_id = 2")
        assert {row["id"] for row in rows} == {11, 12}
        assert sdb.scatter_reads == before
        assert sdb.routed_reads > 0

    def test_pk_get_avoids_scatter(self, sharded):
        _plain, sdb = sharded
        row = sdb.get("posts", 13)
        assert row["user_id"] == 3

    def test_unanchored_read_scatters(self, sharded):
        _plain, sdb = sharded
        before = sdb.scatter_reads
        rows = sdb.select("posts", "score > 3")
        assert {row["id"] for row in rows} == {10, 13}
        assert sdb.scatter_reads > before

    def test_new_root_row_lands_on_hash_home(self, sharded):
        _plain, sdb = sharded
        sdb.insert("users", {"id": 50, "name": "Eve", "email": "e@x.io"})
        home = owner_shard(50, 3)
        assert sdb.shards[home].table("users").rid_of(50) is not None
        assert sdb.shard_map.is_clean(50)

    def test_routing_bias_marks_dirty(self, sharded):
        _plain, sdb = sharded
        home = owner_shard(51, 3)
        biased = (home + 1) % 3
        with sdb.routing_bias(biased):
            sdb.insert("users", {"id": 51, "name": "Fay", "email": "f@x.io"})
        assert sdb.shards[biased].table("users").rid_of(51) is not None
        assert not sdb.shard_map.is_clean(51)
        # Dirty owners scatter — and still find their rows.
        assert len(sdb.select("users", "id = 51")) == 1


class TestStatementParity:
    """The facade must raise what the monolith raises, verbatim."""

    def err(self, db, fn):
        with pytest.raises((ForeignKeyError, StorageError)) as info:
            fn(db)
        return str(info.value)

    def test_missing_parent_insert(self, sharded):
        plain, sdb = sharded
        new_row = {"id": 70, "post_id": 999, "user_id": 1, "body": "x"}
        assert self.err(plain, lambda d: d.insert("comments", dict(new_row))) == \
            self.err(sdb, lambda d: d.insert("comments", dict(new_row)))

    def test_duplicate_pk_across_shards(self, sharded):
        plain, sdb = sharded
        dup = {"id": 10, "user_id": 3, "title": "dup", "body": ""}
        assert self.err(plain, lambda d: d.insert("posts", dict(dup))) == \
            self.err(sdb, lambda d: d.insert("posts", dict(dup)))

    def test_restrict_delete(self, sharded):
        plain, sdb = sharded
        assert self.err(plain, lambda d: d.delete("users", "id = 1")) == \
            self.err(sdb, lambda d: d.delete("users", "id = 1"))

    def test_cascade_delete_matches(self, sharded):
        plain, sdb = sharded
        # comments.post_id is ON DELETE CASCADE in the blog schema.
        for db in (plain, sdb):
            db.delete("comments", "post_id = 11")
            db.delete("posts", "id = 11")
        assert rows_set(plain, "posts") == rows_set(sdb, "posts")
        assert rows_set(plain, "comments") == rows_set(sdb, "comments")

    def test_update_parity(self, sharded):
        plain, sdb = sharded
        for db in (plain, sdb):
            db.update("posts", "score = score + 10", "user_id = 2")
        assert rows_set(plain, "posts") == rows_set(sdb, "posts")


class TestGlobalTables:
    def make(self):
        schema = Schema(parse_schema(GLOBAL_DDL))
        db = Database(schema)
        db.insert("users", {"id": 1, "name": "Ada"})
        db.insert("users", {"id": 2, "name": "Bea"})
        db.insert("badges", {"id": 1, "label": "gold"})
        db.insert("awards", {"id": 1, "user_id": 1, "badge_id": 1})
        return shard_database(db, 3)

    def test_global_rows_replicated_everywhere(self):
        sdb = self.make()
        for shard in sdb.shards:
            assert shard.table("badges").rid_of(1) is not None

    def test_global_write_fans_out(self):
        sdb = self.make()
        before = sdb.fanout_writes
        sdb.insert("badges", {"id": 2, "label": "silver"})
        assert sdb.fanout_writes > before
        for shard in sdb.shards:
            assert shard.table("badges").rid_of(2) is not None
        # An owner row on any shard can reference the replicated parent.
        sdb.insert("awards", {"id": 2, "user_id": 2, "badge_id": 2})
        assert sdb.check_integrity() == []


class TestTransactions:
    def test_rollback_spans_shards(self, sharded):
        _plain, sdb = sharded
        before = sdb.total_rows()
        with pytest.raises(RuntimeError):
            with sdb.transaction():
                sdb.insert("users", {"id": 60, "name": "Gil", "email": "g@x.io"})
                sdb.insert("posts", {"id": 61, "user_id": 60, "title": "t", "body": ""})
                raise RuntimeError("boom")
        assert sdb.total_rows() == before
        assert sdb.get("users", 60) is None

    def test_commit_spans_shards(self, sharded):
        _plain, sdb = sharded
        with sdb.transaction():
            sdb.insert("users", {"id": 62, "name": "Hal", "email": "h@x.io"})
            sdb.insert("posts", {"id": 63, "user_id": 62, "title": "t", "body": ""})
        assert sdb.get("posts", 63)["user_id"] == 62


class TestObservability:
    def test_shard_gauges_registered(self, sharded):
        _plain, sdb = sharded
        sdb.select("posts", "user_id = 2")
        view = sdb.metrics()
        assert view["shard.shards"] == 3
        assert view["shard.routed_reads"] >= 1
        total = sum(view[f"shard.s{i}.rows"] for i in range(3))
        assert total == sdb.total_rows()

    def test_legacy_aliases_resolve(self, sharded):
        _plain, sdb = sharded
        sdb.select("users")
        legacy = sdb.metrics().legacy()
        assert legacy["statements"] == legacy["storage.statements"]
        assert legacy["statements"] >= 1


class TestDdl:
    def test_create_and_drop_table(self, sharded):
        _plain, sdb = sharded
        sdb.create_table(parse_schema(
            "CREATE TABLE notes (id INT PRIMARY KEY, user_id INT NOT NULL "
            "REFERENCES users(id), body TEXT);"
        )[0])
        sdb.insert("notes", {"id": 1, "user_id": 2, "body": "hi"})
        assert sdb.shards[owner_shard(2, 3)].table("notes").rid_of(1) is not None
        sdb.drop_table("notes")
        assert not sdb.has_table("notes")


class TestErrors:
    def test_redo_hook_requires_group(self, sharded):
        _plain, sdb = sharded

        class NotAGroup:
            pass

        with pytest.raises(ShardError):
            sdb.set_redo_hook(NotAGroup())
