"""Parallel disguise execution: owner-rooted analysis, service runs,
per-shard isolation of plan caches and statistics."""

from __future__ import annotations

import threading

import pytest

from repro import (
    Decorrelate,
    Default,
    Disguiser,
    DisguiseSpec,
    FakeName,
    Modify,
    Remove,
    TableDisguise,
    named_modifier,
)
from repro.service.executor import JOB_APPLY
from repro.service.queue import JobQueue
from repro.shard import (
    Router,
    ShardGroupWal,
    ShardMap,
    ShardedDisguiseService,
    owner_shard,
    shard_database,
)
from repro.shard.apply import spec_owner_rooted
from repro.storage.wal import WriteAheadLog
from repro.vault import MemoryVault

from tests.conftest import blog_delete_spec, blog_scrub_spec, make_blog_db


def rooted_spec():
    """Blog scrub restricted to owner-anchored statements only.

    The account row is scrubbed in place rather than removed — a Remove
    would trip the RESTRICT edges from other users' follows rows, which
    an owner-rooted spec by definition cannot touch.
    """
    null_fn, null_label = named_modifier("null")
    return DisguiseSpec(
        "RootedScrub",
        [
            TableDisguise(
                "users",
                transformations=[
                    Modify("id = $UID", column="email", fn=null_fn, label=null_label),
                    Modify("id = $UID", column="last_login", fn=null_fn, label=null_label),
                ],
                generate_placeholder={
                    "name": FakeName(),
                    "email": Default(None),
                    "disabled": Default(True),
                },
            ),
            TableDisguise(
                "posts",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "comments",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
        ],
    )


class TestSpecOwnerRooted:
    def router(self):
        return Router(make_blog_db().schema, ShardMap(n_shards=4))

    def test_rooted(self):
        assert spec_owner_rooted(rooted_spec(), self.router())

    def test_or_predicate_is_not_rooted(self):
        # follows: Remove("follower_id = $UID OR followee_id = $UID") —
        # the OR means rows of *other* owners match, on other shards.
        assert not spec_owner_rooted(blog_delete_spec(), self.router())
        assert not spec_owner_rooted(blog_scrub_spec(), self.router())

    def test_non_anchor_column_is_not_rooted(self):
        spec = DisguiseSpec(
            "Followee",
            [TableDisguise("follows", transformations=[Remove("followee_id = $UID")])],
        )
        # follows is anchored on follower_id; a followee predicate
        # touches rows owned by other users.
        assert not spec_owner_rooted(spec, self.router())


def run_service(tmp_path, n_shards=2, workers=2, uids=(1, 2, 3), spec=None):
    sdb = shard_database(make_blog_db(), n_shards)
    wals = [
        WriteAheadLog(tmp_path / f"s{i}.wal", fsync="never")
        for i in range(n_shards)
    ]
    group = ShardGroupWal(wals)
    sdb.set_redo_hook(group)
    engine = Disguiser(sdb, vault=MemoryVault(), seed=3)
    engine.register(spec or rooted_spec())
    queue_path = tmp_path / "jobs"
    queue = JobQueue(queue_path)
    for uid in uids:
        queue.submit(JOB_APPLY, {
            "spec": (spec or rooted_spec()).name, "uid": uid, "reversible": True,
        })
    queue.close()
    service = ShardedDisguiseService(
        engine, queue_path, workers=workers, wal=group, queue_fsync=False
    )
    with service:
        assert service.drain(timeout=30.0)
    counts = service.queue.counts()
    group.close()
    return sdb, engine, counts


class TestShardedService:
    def test_owner_rooted_jobs_complete(self, tmp_path):
        sdb, engine, counts = run_service(tmp_path)
        assert counts["done"] == 3
        assert counts["dead"] == 0
        assert counts["failed"] == 0
        # All three users scrubbed in place; contributions reattributed.
        for uid in (1, 2, 3):
            assert sdb.get("users", uid)["email"] is None
        assert sdb.check_integrity() == []
        assert len(engine.vault.owners()) >= 3

    def test_non_rooted_spec_still_completes(self, tmp_path):
        # Cross-shard footprints prelock every shard's copy in one sorted
        # order — slower, but deadlock-free and correct.
        sdb, _engine, counts = run_service(tmp_path, spec=blog_scrub_spec())
        assert counts["done"] == 3
        assert counts["dead"] == 0
        assert sdb.check_integrity() == []

    def test_placeholders_land_on_home_shard(self, tmp_path):
        sdb, _engine, _counts = run_service(tmp_path, uids=(1,))
        home = owner_shard(1, 2)
        # Decorrelation created placeholder users under the job's routing
        # bias: every new users row sits on uid 1's home shard.
        other = sdb.shards[1 - home]
        original_users = {1, 2, 3}
        for row in other.table("users").rows():
            assert row["id"] in original_users


class TestPerShardIsolation:
    """Satellite: per-shard engines must not share plan caches or stats."""

    def test_stats_and_plans_are_distinct_objects(self, tmp_path):
        sdb, _engine, _counts = run_service(tmp_path)
        assert sdb.shards[0].stats is not sdb.shards[1].stats
        assert sdb.shards[0].plans is not sdb.shards[1].plans
        assert sdb.stats is not sdb.shards[0].stats

    def test_per_shard_counters_independent(self, tmp_path):
        sdb = shard_database(make_blog_db(), 2)
        home1 = owner_shard(1, 2)
        before = [shard.stats.statements for shard in sdb.shards]
        sdb.select("posts", "user_id = 1")
        after = [shard.stats.statements for shard in sdb.shards]
        # The routed read ran on exactly one shard's engine.
        assert after[home1] == before[home1] + 1
        assert after[1 - home1] == before[1 - home1]

    def test_plan_cache_generations_independent(self):
        sdb = shard_database(make_blog_db(), 2)
        generation_before = [shard.plans.generation for shard in sdb.shards]
        # DDL on shard 0 only (system tables live there) must not
        # invalidate shard 1's compiled plans.
        from repro import parse_schema
        sdb.create_table(parse_schema(
            "CREATE TABLE _scratch (id INT PRIMARY KEY);"
        )[0])
        assert sdb.shards[0].plans.generation != generation_before[0]
        assert sdb.shards[1].plans.generation == generation_before[1]

    def test_registry_view_sums_per_shard_counters(self, tmp_path):
        sdb, _engine, _counts = run_service(tmp_path)
        view = sdb.metrics()
        for index, shard in enumerate(sdb.shards):
            assert view[f"shard.s{index}.statements"] == shard.stats.statements
        assert view["shard.statements_total"] == sum(
            shard.stats.statements for shard in sdb.shards
        )
        assert view["plancache.hits"] == sum(
            shard.plans.hits for shard in sdb.shards
        )

    def test_share_clones_do_not_share_rng(self, tmp_path):
        sdb = shard_database(make_blog_db(), 2)
        engine = Disguiser(sdb, vault=MemoryVault(), seed=3)
        clone = engine.share(seed=7)
        assert clone.db is engine.db
        assert clone.vault is engine.vault
        assert clone.history is engine.history
        # Private executor state per worker; shared durable state.
        assert clone.rng is not engine.rng


class TestShardGroupWal:
    def test_metrics_aggregate(self, tmp_path):
        wals = [WriteAheadLog(tmp_path / f"w{i}.wal", fsync="always") for i in range(2)]
        group = ShardGroupWal(wals)
        sdb = shard_database(make_blog_db(), 2)
        sdb.set_redo_hook(group)
        sdb.insert("users", {"id": 90, "name": "Zed", "email": "z@x.io"})
        view = sdb.metrics()
        assert view["wal.logs"] == 2
        assert view["wal.appends"] == sum(w.commits_appended for w in wals) >= 1
        group.close()

    def test_defer_sync_is_thread_scoped_fanout(self, tmp_path):
        wals = [WriteAheadLog(tmp_path / f"w{i}.wal", fsync="always") for i in range(2)]
        group = ShardGroupWal(wals)
        group.defer_sync = True
        assert group.defer_sync
        seen = []
        thread = threading.Thread(target=lambda: seen.append(group.defer_sync))
        thread.start()
        thread.join()
        assert seen == [False]  # other threads keep their fsync policy
        group.defer_sync = False
        group.close()

    def test_barrier_covers_all_logs(self, tmp_path):
        wals = [WriteAheadLog(tmp_path / f"w{i}.wal", fsync="batch") for i in range(2)]
        group = ShardGroupWal(wals)
        sdb = shard_database(make_blog_db(), 2)
        sdb.set_redo_hook(group)
        group.defer_sync = True
        sdb.insert("users", {"id": 91, "name": "Yen", "email": "y@x.io"})
        group.commit_barrier()  # must not hang on the untouched shard
        group.close()
