"""Placement and shard-map tests: ownership analysis, hashing, persistence."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro import Database, Schema, parse_schema
from repro.errors import ShardError
from repro.storage.sql import parse_where
from repro.shard import (
    DIRECT,
    GLOBAL,
    INDIRECT,
    ROOT,
    SYSTEM,
    OwnershipAnalyzer,
    Router,
    ShardMap,
    owner_shard,
    owner_token,
)

from tests.conftest import BLOG_DDL, make_blog_db

MINI_DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id)
);
CREATE TABLE taggings (
  id INT PRIMARY KEY,
  post_id INT NOT NULL REFERENCES posts(id),
  tag_id INT NOT NULL REFERENCES tags(id)
);
CREATE TABLE tags (
  id INT PRIMARY KEY,
  label TEXT
);
"""


class TestOwnerToken:
    def test_types_do_not_collide(self):
        # int 1, str "1", bool True, float 1.0 all hash differently.
        tokens = {owner_token(1), owner_token("1"), owner_token(True), owner_token(1.0)}
        assert len(tokens) == 4

    def test_none_and_bytes(self):
        assert owner_token(None) == "n:"
        assert owner_token(b"\x01") != owner_token("\x01")

    def test_shard_matches_sha256(self):
        # The placement function is pinned: sha256 of the UTF-8 token,
        # first 8 digest bytes big-endian, mod n_shards. A change here
        # breaks every persisted shard map.
        for owner in (0, 1, 19, "alice", None):
            digest = hashlib.sha256(owner_token(owner).encode("utf-8")).digest()
            expected = int.from_bytes(digest[:8], "big") % 4
            assert owner_shard(owner, 4) == expected

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardError):
            ShardMap(n_shards=0)


class TestOwnershipAnalyzer:
    def test_blog_classification(self):
        schema = Schema(parse_schema(BLOG_DDL))
        analyzer = OwnershipAnalyzer(schema)
        assert analyzer.placement("users").kind is ROOT
        assert analyzer.placement("users").anchor == "id"
        assert analyzer.placement("posts").kind is DIRECT
        assert analyzer.placement("posts").anchor == "user_id"
        assert analyzer.placement("comments").anchor == "user_id"
        # First non-nullable FK to users in declared order wins.
        assert analyzer.placement("follows").anchor == "follower_id"

    def test_indirect_and_global(self):
        schema = Schema(parse_schema(MINI_DDL))
        analyzer = OwnershipAnalyzer(schema)
        taggings = analyzer.placement("taggings")
        assert taggings.kind is INDIRECT
        assert taggings.parent_table == "posts"
        assert taggings.parent_column == "post_id"
        assert analyzer.placement("tags").kind is GLOBAL

    def test_system_tables(self):
        schema = Schema(parse_schema(MINI_DDL))
        db = Database(schema)
        db.create_table(parse_schema(
            "CREATE TABLE _audit (id INT PRIMARY KEY, note TEXT);"
        )[0])
        analyzer = OwnershipAnalyzer(db.schema)
        assert analyzer.placement("_audit").kind is SYSTEM


class TestShardMap:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "map.json"
        shard_map = ShardMap(n_shards=4, path=path)
        shard_map.mark_dirty(7)
        shard_map.overrides[owner_token(3)] = 2
        shard_map.save()
        loaded = ShardMap.load(path)
        assert loaded.n_shards == 4
        assert not loaded.is_clean(7)
        assert loaded.shard_of(3) == 2

    def test_open_rejects_mismatched_count(self, tmp_path):
        path = tmp_path / "map.json"
        ShardMap(n_shards=4, path=path).save()
        with pytest.raises(ShardError):
            ShardMap.open(path, 8)

    def test_migration_intent_round_trip(self, tmp_path):
        path = tmp_path / "map.json"
        shard_map = ShardMap(n_shards=4, path=path)
        shard_map.begin_migration(5, 3)
        loaded = ShardMap.load(path)
        assert loaded.migration is not None
        assert loaded.migration["value"] == 5
        assert loaded.migration["to"] == 3
        # An open migration makes the owner "not clean" so reads scatter.
        assert not loaded.is_clean(5)


class TestHashSeedIndependence:
    """Satellite: placement must not depend on the interpreter's salted
    ``hash()`` — the shard map must be byte-identical across processes
    started with different PYTHONHASHSEED values."""

    SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.shard import ShardMap, owner_shard, owner_token
shard_map = ShardMap(n_shards=8)
for owner in [0, 1, 2, 19, 1000, "alice", "bob", None, True, 3.5]:
    shard_map.mark_dirty(owner)
shard_map.overrides[owner_token("alice")] = 7
print(shard_map.to_json())
print([owner_shard(owner, 8) for owner in range(64)])
"""

    def test_map_identical_across_hash_seeds(self):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = self.SCRIPT.format(src=os.path.abspath(src))
        outputs = []
        for seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        # And the serialized form is canonical JSON (sorted, no drift).
        first_line = outputs[0].splitlines()[0]
        parsed = json.loads(first_line)
        assert json.dumps(parsed, sort_keys=True, separators=(",", ":")) == first_line


class TestRouterReadShards:
    def make_router(self, n_shards=4):
        db = make_blog_db()
        return db, Router(db.schema, ShardMap(n_shards=n_shards))

    def test_anchor_eq_routes_single(self):
        _db, router = self.make_router()
        kind, shards = router.read_shards("posts", parse_where("user_id = 2"), {})
        assert kind == "single"
        assert shards == [owner_shard(2, 4)]

    def test_dirty_owner_scatters(self):
        _db, router = self.make_router()
        router.map.mark_dirty(2)
        kind, shards = router.read_shards("posts", parse_where("user_id = 2"), {})
        assert kind == "scatter"
        assert list(shards) == [0, 1, 2, 3]

    def test_unanchored_scatters(self):
        _db, router = self.make_router()
        kind, _shards = router.read_shards("posts", parse_where("score > 3"), {})
        assert kind == "scatter"

    def test_pk_probe_routes_single(self):
        _db, router = self.make_router()
        # A pk-eq predicate on a non-anchor column routes through the
        # locate callback (the facade's cross-shard rid_of probe).
        probes = []

        def locate(table, pk):
            probes.append((table, pk))
            return 3

        kind, shards = router.read_shards("posts", parse_where("id = 11"), {}, locate=locate)
        assert kind == "single"
        assert shards == [3]
        assert probes == [("posts", 11)]

    def test_param_binding(self):
        _db, router = self.make_router()
        kind, shards = router.read_shards("posts", parse_where("user_id = $U"), {"U": 2})
        assert kind == "single"
        assert shards == [owner_shard(2, 4)]
