"""Differential testing: ShardedDatabase vs the monolithic Database.

A seeded random workload — inserts, updates, deletes, selects, plus
disguise apply/reveal on the lobsters app — runs against a plain
``Database`` and against ``ShardedDatabase`` facades built from the same
snapshot. At one shard the facade must be *indistinguishable* (identical
result rows, final table contents, vault owner sets); at four shards the
results must match as sets (shard iteration order may differ).
"""

from __future__ import annotations

import random

import pytest

from repro import Disguiser
from repro.apps.lobsters.disguises import lobsters_gdpr
from repro.apps.lobsters.generate import LobstersPopulation, generate_lobsters
from repro.errors import ReproError
from repro.shard import shard_database
from repro.vault import MemoryVault

POP = LobstersPopulation(users=24, stories=48, comments=96)


def fresh_engine(n_shards: int | None):
    db = generate_lobsters(population=POP, seed=11)
    if n_shards is not None:
        db = shard_database(db, n_shards)
    return Disguiser(db, vault=MemoryVault(), seed=5)


def canon_rows(rows):
    return sorted(
        (tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in rows),
        key=repr,
    )


class Workload:
    """One deterministic op stream, replayable against any engine."""

    SELECTS = (
        ("stories", "user_id = $U"),
        ("comments", "user_id = $U"),
        ("votes", "user_id = $U"),
        ("stories", "upvotes > 2"),
        ("comments", "story_id = $S"),
        ("messages", "recipient_user_id = $U"),
    )

    def __init__(self, seed: int, steps: int = 120) -> None:
        self.rng = random.Random(seed)
        self.steps = steps

    def run(self, engine: Disguiser) -> list:
        """Replay the stream; returns every op's observable result."""
        db = engine.db
        rng = random.Random(self.rng.random())
        results = []
        applied = []
        next_vote = 100_000
        for _ in range(self.steps):
            op = rng.randrange(10)
            uid = rng.randrange(1, POP.users + 1)
            sid = rng.randrange(1, POP.stories + 1)
            try:
                if op <= 3:  # selects dominate, as in any real workload
                    table, where = self.SELECTS[rng.randrange(len(self.SELECTS))]
                    rows = db.select(table, where, params={"U": uid, "S": sid})
                    results.append(("select", table, canon_rows(rows)))
                elif op == 4:
                    next_vote += 1
                    db.insert("votes", {
                        "id": next_vote, "user_id": uid, "story_id": sid,
                        "comment_id": None, "vote": rng.choice((-1, 1)),
                    })
                    results.append(("insert", next_vote))
                elif op == 5:
                    count = db.update(
                        "users", "karma = karma + 1", "id = $U", params={"U": uid}
                    )
                    results.append(("update", count))
                elif op == 6:
                    count = db.delete(
                        "votes", "user_id = $U AND story_id = $S",
                        params={"U": uid, "S": sid},
                    )
                    results.append(("delete", count))
                elif op == 7:
                    report = engine.apply("Lobsters-GDPR", uid=uid)
                    applied.append(report.disguise_id)
                    results.append(("apply", uid))
                elif op == 8 and applied:
                    did = applied.pop(rng.randrange(len(applied)))
                    engine.reveal(did)
                    results.append(("reveal", did))
                else:
                    results.append(
                        ("count", db.count("comments", "user_id = $U",
                                           params={"U": uid}))
                    )
            except ReproError as exc:
                # Same stream, same failures: the error text is part of
                # the observable behavior being compared.
                results.append(("error", type(exc).__name__, str(exc)))
        return results


def final_state(engine: Disguiser):
    db = engine.db
    tables = {
        name: canon_rows(db.select(name))
        for name in db.schema.table_names
        if not name.startswith("_")
    }
    owners = sorted(engine.vault.owners(), key=repr)
    return tables, owners


@pytest.mark.parametrize("n_shards", [1, 4])
def test_randomized_workload_equivalence(n_shards):
    plain = fresh_engine(None)
    plain.register(lobsters_gdpr())
    sharded = fresh_engine(n_shards)
    sharded.register(lobsters_gdpr())

    results_plain = Workload(seed=1234).run(plain)
    results_sharded = Workload(seed=1234).run(sharded)

    assert len(results_plain) == len(results_sharded)
    for step, (expected, got) in enumerate(zip(results_plain, results_sharded)):
        assert expected == got, f"divergence at step {step}"

    tables_plain, owners_plain = final_state(plain)
    tables_sharded, owners_sharded = final_state(sharded)
    assert tables_plain == tables_sharded
    assert owners_plain == owners_sharded
    assert sharded.db.check_integrity() == []


def test_one_shard_preserves_row_order():
    """At one shard the facade is the monolith: even physical iteration
    order (no canonicalization) must match."""
    plain = fresh_engine(None)
    sharded = fresh_engine(1)
    for table in ("users", "stories", "comments"):
        assert [dict(r) for r in plain.db.select(table)] == \
            [dict(r) for r in sharded.db.select(table)]
