"""Owner migration: happy path, crash matrix, torn-state recovery."""

from __future__ import annotations

import pytest

from repro import Disguiser
from repro.shard import (
    ShardedVault,
    migrate_owner,
    owner_rows,
    owner_shard,
    recover_migration,
    shard_database,
)
from repro.shard.rebalance import CRASH_POINTS, _MigrationCrash
from repro.vault import MemoryVault

from tests.conftest import blog_scrub_spec, make_blog_db


def make(n_shards=3, disguise_uid=None):
    sdb = shard_database(make_blog_db(), n_shards)
    vault = ShardedVault([MemoryVault() for _ in range(n_shards)], sdb.shard_map)
    if disguise_uid is not None:
        engine = Disguiser(sdb, vault=vault, seed=3)
        engine.register(blog_scrub_spec())
        engine.apply("BlogScrub", uid=disguise_uid)
    return sdb, vault


def snapshot(sdb):
    return {
        table: sorted(
            (tuple(sorted(r.items())) for r in sdb.select(table)), key=repr
        )
        for table in sdb.schema.table_names
    }


def physical_layout(sdb, owner):
    return {
        table: sorted(per_shard)
        for table, per_shard in owner_rows(sdb, owner).items()
    }


class TestMigrateOwner:
    def test_moves_subtree_and_flips_map(self):
        sdb, vault = make()
        owner = 2
        target = (owner_shard(owner, 3) + 1) % 3
        logical_before = snapshot(sdb)
        summary = migrate_owner(sdb, owner, target, vault=vault)
        assert summary["rows"] > 0
        # Physically consolidated on the target...
        for table, shards in physical_layout(sdb, owner).items():
            assert shards == [target], table
        # ...logically unchanged, and the map now routes there.
        assert snapshot(sdb) == logical_before
        assert sdb.shard_map.shard_of(owner) == target
        assert sdb.shard_map.migration is None
        assert sdb.check_integrity() == []

    def test_vault_entries_follow(self):
        sdb, vault = make(disguise_uid=2)
        target = (owner_shard(2, 3) + 1) % 3
        assert vault.entries_at(owner_shard(2, 3), 2)
        summary = migrate_owner(sdb, 2, target, vault=vault)
        assert summary["vault_entries"] > 0
        assert vault.entries_at(target, 2)
        assert not vault.entries_at(owner_shard(2, 3), 2)
        # Routed reads still find them (the map flipped with the rows).
        assert vault.entries_for(2)

    def test_migrated_owner_routes_single_shard(self):
        sdb, vault = make()
        target = (owner_shard(1, 3) + 1) % 3
        migrate_owner(sdb, 1, target, vault=vault)
        before = sdb.scatter_reads
        rows = sdb.select("posts", "user_id = 1")
        assert len(rows) == 1
        assert sdb.scatter_reads == before

    def test_migration_to_same_shard_is_noop(self):
        sdb, vault = make()
        home = owner_shard(3, 3)
        summary = migrate_owner(sdb, 3, home, vault=vault)
        assert summary["rows"] == 0
        assert sdb.shard_map.migration is None


class TestCrashMatrix:
    @pytest.mark.parametrize("crash_after", CRASH_POINTS)
    def test_recovery_rolls_back_to_source(self, crash_after):
        sdb, vault = make(disguise_uid=2)
        owner = 2
        home = owner_shard(owner, 3)
        target = (home + 1) % 3
        logical_before = snapshot(sdb)
        layout_before = physical_layout(sdb, owner)
        vault_before = sorted(
            (e.table, e.pk, e.op) for e in vault.entries_at(home, owner)
        )

        with pytest.raises(_MigrationCrash):
            migrate_owner(sdb, owner, target, vault=vault, crash_after=crash_after)
        # The torn state is visible (intent persisted, rows possibly split)
        # but every read still finds the rows: an in-flight migration marks
        # the owner not-clean, so owner-eq predicates scatter.
        assert sdb.shard_map.migration is not None
        assert snapshot(sdb) == logical_before

        summary = recover_migration(sdb, vault=vault)
        assert summary is not None
        assert sdb.shard_map.migration is None
        assert snapshot(sdb) == logical_before
        assert physical_layout(sdb, owner) == layout_before
        assert sorted(
            (e.table, e.pk, e.op) for e in vault.entries_at(home, owner)
        ) == vault_before
        assert not vault.entries_at(target, owner)
        assert sdb.check_integrity() == []
        # The map still routes to the source: retrying now succeeds.
        assert sdb.shard_map.shard_of(owner) == home
        migrate_owner(sdb, owner, target, vault=vault)
        assert sdb.shard_map.shard_of(owner) == target

    def test_recover_without_migration_is_noop(self):
        sdb, vault = make()
        assert recover_migration(sdb, vault=vault) is None


class TestLockedMigration:
    def test_migration_respects_lock_hook(self, tmp_path):
        # With a service lock hook attached, the migration X-locks the
        # owner's tables on every shard for the whole protocol.
        from repro.service.locks import LockHook, LockManager

        sdb, vault = make()
        hook = LockHook(LockManager(), timeout=5.0)
        sdb.set_lock_hook(hook)
        target = (owner_shard(1, 3) + 1) % 3
        migrate_owner(sdb, 1, target, vault=vault)
        assert sdb.shard_map.shard_of(1) == target
        # All migration locks released.
        assert not hook.manager.holding("migrate-%d" % target)
