"""CLI surface: ``serve --shards``, ``shards``, and legacy metrics merging."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.shard import ShardMap
from repro.spec.parser import spec_to_dict
from repro.storage.persist import load_database, save_database_atomic

from tests.conftest import blog_scrub_spec, make_blog_db
from tests.shard.test_apply import rooted_spec


@pytest.fixture
def deployment(tmp_path):
    """A snapshot, a spec document, and a vault dir under tmp_path."""
    db_path = tmp_path / "app.jsonl"
    save_database_atomic(make_blog_db(), db_path, generation=0)
    spec_path = tmp_path / "scrub.json"
    spec_path.write_text(json.dumps(spec_to_dict(rooted_spec())))
    return {
        "db": str(db_path),
        "spec": str(spec_path),
        "vaults": str(tmp_path / "vaults"),
        "tmp": tmp_path,
    }


def submit(dep, uid):
    assert main([
        "submit", "--db", dep["db"], "apply",
        "--spec-name", rooted_spec().name, "--uid", str(uid),
    ]) == 0


def serve(dep, shards=2, extra=()):
    return main([
        "serve", "--db", dep["db"], "--vault-dir", dep["vaults"],
        "--spec", dep["spec"], "--workers", "2", "--shards", str(shards),
        *extra,
    ])


class TestServeSharded:
    def test_drains_and_checkpoints(self, deployment, capsys):
        submit(deployment, 1)
        submit(deployment, 2)
        capsys.readouterr()  # discard submit receipts
        assert serve(deployment) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["service.queue_counts"]["done"] == 2
        assert report["service.queue_counts"]["dead"] == 0
        assert report["wal.logs"] == 2
        # Shutdown checkpointed: shard WALs retired, map persisted.
        tmp = deployment["tmp"]
        assert not list(tmp.glob("app.jsonl.s*.wal"))
        assert (tmp / "app.jsonl.shardmap").exists()
        assert ShardMap.load(tmp / "app.jsonl.shardmap").n_shards == 2
        # The folded snapshot holds the disguised state.
        db = load_database(deployment["db"])
        assert db.get("users", 1)["email"] is None
        assert db.check_integrity() == []

    def test_wal_flag_conflicts(self, deployment, capsys):
        assert serve(deployment, extra=("--wal",)) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shard_count_pinned_by_map(self, deployment, capsys):
        assert serve(deployment, shards=2) == 0
        capsys.readouterr()
        # A later run with a different count must refuse, not re-place rows.
        assert serve(deployment, shards=4) == 1
        assert "shard" in capsys.readouterr().err.lower()


class TestCrashRecovery:
    def test_shard_wals_replay_into_fresh_partition(self, deployment, capsys):
        # Simulate a crash: journal a disguise into the per-shard WALs,
        # exit without the shutdown checkpoint (snapshot stays stale).
        import types

        from repro.cli import _open_sharded, _shard_wal_path, _sharded_vault
        from repro.core.engine import Disguiser
        from repro.shard import ShardGroupWal
        from repro.storage.wal import WriteAheadLog

        args = types.SimpleNamespace(
            db=deployment["db"], vault_dir=deployment["vaults"]
        )
        sdb, generation, _next_txn = _open_sharded(args, 2)
        wals = [
            WriteAheadLog(
                _shard_wal_path(args.db, i), fsync="always", generation=generation
            )
            for i in range(2)
        ]
        sdb.set_redo_hook(ShardGroupWal(wals))
        engine = Disguiser(sdb, vault=_sharded_vault(args, sdb), seed=3)
        engine.register(rooted_spec())
        engine.apply(rooted_spec().name, uid=3)
        for wal in wals:
            wal.close()
        assert load_database(deployment["db"]).get("users", 3)["email"] is not None

        # Recovery: the next sharded serve re-partitions the snapshot,
        # replays each shard's log, and checkpoints the result.
        assert serve(deployment) == 0
        capsys.readouterr()
        db = load_database(deployment["db"])
        assert db.get("users", 3)["email"] is None
        assert db.check_integrity() == []
        assert not list(deployment["tmp"].glob("app.jsonl.s*.wal"))


class TestShardsCommand:
    def test_info_report(self, deployment, capsys):
        assert main([
            "shards", "--db", deployment["db"], "--shards", "2", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["shards"] == 2
        assert sum(report["rows_per_shard"]) == make_blog_db().total_rows()
        assert report["placements"]["users"] == "root"
        assert report["placements"]["posts"] == "direct"

    def test_requires_count_without_map(self, deployment, capsys):
        assert main(["shards", "--db", deployment["db"]]) == 1
        assert "--shards" in capsys.readouterr().err

    def test_owner_placement(self, deployment, capsys):
        assert main([
            "shards", "--db", deployment["db"], "--shards", "2",
            "--owner", "2", "--json",
        ]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["owner"] == 2
        assert info["present_on"] == [info["home_shard"]]
        assert info["clean"] is True

    def test_migrate_and_reinspect(self, deployment, capsys):
        assert main([
            "shards", "--db", deployment["db"], "--shards", "2",
            "--owner", "2", "--json",
        ]) == 0
        home = json.loads(capsys.readouterr().out)["home_shard"]
        target = 1 - home
        assert main([
            "shards", "--db", deployment["db"], "--shards", "2", "--owner", "2",
            "--migrate-to", str(target), "--vault-dir", deployment["vaults"],
        ]) == 0
        capsys.readouterr()
        assert main([
            "shards", "--db", deployment["db"], "--owner", "2", "--json",
        ]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["home_shard"] == target
        assert info["present_on"] == [target]
        assert info["override"] == target
        # Logical contents survived the physical move.
        db = load_database(deployment["db"])
        assert db.check_integrity() == []
        assert len(db.select("posts", "user_id = 2")) == 2


class TestLegacyMetricsMerging:
    """Satellite: ``metrics --legacy`` must merge every registered
    subsystem's aliases even when no server is running, including gauges
    registered *after* a view was already materialized."""

    def test_cli_legacy_includes_storage_aliases(self, deployment, capsys):
        assert main([
            "metrics", "--db", deployment["db"], "--legacy", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        # Old QueryStats field names resolve with real values (not null).
        assert data["statements"] == data["storage.statements"]
        assert data["selects"] == data["storage.selects"]

    def test_late_registered_gauges_appear_in_legacy_view(self):
        db = make_blog_db()
        first = db.metrics().legacy()
        assert "shard_count" not in first
        # A subsystem attaches later (the sharded engine does exactly
        # this) and registers both gauges and legacy aliases.
        db.obs.gauge("shard.shards", lambda: 4)
        db.obs.register_aliases({"shard_count": "shard.shards"})
        later = db.metrics().legacy()
        assert later["shard.shards"] == 4
        assert later["shard_count"] == 4
        # The earlier snapshot is immutable — no retroactive rewrite.
        assert "shard_count" not in first

    def test_prefix_restricted_views_hide_foreign_aliases(self):
        db = make_blog_db()
        db.select("users")
        view = db.obs.view(prefix=("service", "wal"))
        # The database's storage.* aliases must not leak null keys into
        # a service-scoped view.
        assert "statements" not in view.legacy()
