"""Unit tests for privacy-goal assertions (paper §7)."""

import pytest

from repro import Disguiser, DisguiseSpec, PrivacyAssertion, Remove, TableDisguise
from repro.core.assertions import check_assertions
from repro.errors import AssertionFailure, SpecError

from tests.conftest import blog_delete_spec, blog_scrub_spec


class TestPrivacyAssertion:
    def test_count_form(self, blog_db):
        no_reviews = PrivacyAssertion("gone", table="posts", pred="user_id = $UID")
        assert not no_reviews.holds(blog_db, {"UID": 2})  # Bea has posts
        assert no_reviews.holds(blog_db, {"UID": 99})

    def test_comparators(self, blog_db):
        at_least_two = PrivacyAssertion(
            "has posts", table="posts", pred="user_id = $UID",
            expected=2, comparator=">=",
        )
        assert at_least_two.holds(blog_db, {"UID": 2})
        assert not at_least_two.holds(blog_db, {"UID": 1})

    def test_callable_form(self, blog_db):
        check = PrivacyAssertion(
            "custom", check=lambda db, params: db.count("users") == 3
        )
        assert check.holds(blog_db, {})

    def test_invalid_construction(self):
        with pytest.raises(SpecError):
            PrivacyAssertion("bad")  # neither form
        with pytest.raises(SpecError):
            PrivacyAssertion("bad", table="t", pred="TRUE", comparator="~")

    def test_describe(self):
        assertion = PrivacyAssertion("no posts", table="posts", pred="user_id = $UID")
        text = assertion.describe()
        assert "no posts" in text and "user_id = $UID" in text

    def test_check_assertions_collects_failures(self, blog_db):
        failures = check_assertions(
            [
                PrivacyAssertion("f1", table="posts", pred="user_id = 2"),
                PrivacyAssertion("ok", table="posts", pred="user_id = 99"),
            ],
            blog_db,
            {},
        )
        assert len(failures) == 1 and "f1" in failures[0]


class TestEngineIntegration:
    def test_passing_assertions_allow_commit(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(
            blog_delete_spec(),
            uid=2,
            assertions=[
                PrivacyAssertion("no account", table="users", pred="id = $UID"),
                PrivacyAssertion("no posts", table="posts", pred="user_id = $UID"),
            ],
        )
        assert report.assertion_failures == []

    def test_revert_mode_rolls_back(self, blog_db):
        engine = Disguiser(blog_db)
        impossible = PrivacyAssertion(
            "user count must be zero", table="users", pred="TRUE"
        )
        before = blog_db.row_counts()
        with pytest.raises(AssertionFailure):
            engine.apply(blog_scrub_spec(), uid=2, assertions=[impossible])
        assert blog_db.row_counts() == before
        assert engine.vault.size() == 0
        assert engine.history.records() == []

    def test_notify_mode_commits_and_reports(self, blog_db):
        engine = Disguiser(blog_db)
        impossible = PrivacyAssertion("never", table="users", pred="TRUE")
        report = engine.apply(
            blog_scrub_spec(),
            uid=2,
            assertions=[impossible],
            on_assertion_failure="notify",
        )
        assert report.assertion_failures
        assert blog_db.get("users", 2) is None  # disguise kept

    def test_retry_escalates_to_composition(self, blog_db):
        """A scrub with compose=False after anonymization leaves the user's
        posts pointing at the *anonymizer's* placeholders but fails to find
        the user data; retry escalates until assertions pass."""
        from tests.conftest import blog_anon_spec

        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        goal = PrivacyAssertion(
            "account deleted", table="users", pred="id = $UID"
        )
        report = engine.apply(
            blog_scrub_spec(),
            uid=2,
            compose=True,
            assertions=[goal],
            on_assertion_failure="retry",
        )
        assert blog_db.get("users", 2) is None
        assert report.assertion_failures == []

    def test_retry_gives_up_after_ladder(self, blog_db):
        engine = Disguiser(blog_db)
        impossible = PrivacyAssertion("never", table="users", pred="TRUE")
        with pytest.raises(AssertionFailure) as excinfo:
            engine.apply(
                blog_scrub_spec(),
                uid=2,
                assertions=[impossible],
                on_assertion_failure="retry",
            )
        assert "attempt" in str(excinfo.value)
        # all attempts rolled back
        assert blog_db.get("users", 2) is not None

    def test_unknown_failure_mode_rejected(self, blog_db):
        engine = Disguiser(blog_db)
        from repro.errors import DisguiseError

        with pytest.raises(DisguiseError):
            engine.apply(blog_scrub_spec(), uid=2, on_assertion_failure="shrug")
