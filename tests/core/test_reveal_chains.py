"""Deterministic tests for the hard reveal interleavings.

The property tests explore these at random; this file pins down the
specific semantics with named scenarios so regressions are attributable:

* vaulted-row rewrite: a row disguised by A, then removed by B — revealing
  A must edit A's change *inside B's vault payload*;
* optimizer dependency: A's decorrelation skipped by B's optimizer —
  revealing A must materialize B's decorrelation;
* cascade attribution: revealing A reinserts a row whose parent B removed —
  the row is re-removed and attributed to B so B's reveal restores it.
"""

import pytest

from repro import Disguiser
from repro.vault.entry import OP_REMOVE

from tests.conftest import (
    blog_anon_spec,
    blog_delete_spec,
    blog_scrub_spec,
    make_blog_db,
)


def snapshot(db):
    return {
        name: sorted(tuple(sorted(row.items())) for row in db.table(name).rows())
        for name in db.table_names
        if not name.startswith("_")
    }


def build():
    db = make_blog_db()
    engine = Disguiser(db, seed=99)
    engine.register(blog_scrub_spec())
    engine.register(blog_delete_spec())
    engine.register(blog_anon_spec())
    return db, engine


class TestVaultedRowRewrite:
    def test_reveal_edits_the_holders_payload(self):
        """scrub(2) decorrelates Bea's comment; delete(3)?? — use anon then
        delete: anon modifies names; delete(2) removes Bea's rows. Reveal
        anon: Bea's name must be fixed inside delete(2)'s REMOVE payload."""
        db, engine = build()
        anon = engine.apply("BlogAnon")  # modifies users.name -> [redacted]
        delete = engine.apply("BlogDelete", uid=2, optimize=False)
        # Bea's row is gone; anon's modify entry points at a vaulted copy.
        reveal = engine.reveal(anon.disguise_id, check_integrity=True)
        holder_entries = [
            e
            for e in engine.vault.entries_for(2, disguise_id=delete.disguise_id)
            if e.op == OP_REMOVE and e.table == "users"
        ]
        assert len(holder_entries) == 1
        assert holder_entries[0].removed_row["name"] == "Bea"  # rewritten
        # now revealing the delete restores the TRUE original
        engine.reveal(delete.disguise_id, check_integrity=True)
        assert db.get("users", 2)["name"] == "Bea"

    def test_full_convergence_for_this_interleaving(self):
        db, engine = build()
        before = snapshot(db)
        anon = engine.apply("BlogAnon")
        delete = engine.apply("BlogDelete", uid=2, optimize=False)
        engine.reveal(anon.disguise_id)
        engine.reveal(delete.disguise_id)
        assert snapshot(db) == before
        assert engine.vault.size() == 0


class TestOptimizerDependency:
    def test_revealing_the_relied_upon_disguise_materializes_the_skip(self):
        """anon decorrelates Bea's posts; scrub(2) skips re-decorrelation
        (optimizer). Revealing anon must leave Bea's posts decorrelated,
        now under the scrub."""
        db, engine = build()
        anon = engine.apply("BlogAnon")
        scrub = engine.apply("BlogScrub", uid=2, optimize=True)
        assert scrub.redundant_skipped > 0
        engine.reveal(anon.disguise_id, check_integrity=True)
        # scrub is still active: Bea must not be linkable to her posts
        assert db.select("posts", "user_id = 2") == []
        # and the scrub's reveal brings everything back
        engine.reveal(scrub.disguise_id, check_integrity=True)
        assert len(db.select("posts", "user_id = 2")) == 2

    def test_reveal_order_scrub_first_also_converges(self):
        db, engine = build()
        before = snapshot(db)
        anon = engine.apply("BlogAnon")
        scrub = engine.apply("BlogScrub", uid=2, optimize=True)
        engine.reveal(scrub.disguise_id, check_integrity=True)
        engine.reveal(anon.disguise_id, check_integrity=True)
        assert snapshot(db) == before


class TestCascadeAttribution:
    def test_reinserted_orphan_is_reremoved_under_the_parent_remover(self):
        """delete(1) removes Ada and her comment on post 11; delete(2)
        removes Bea and post 11 itself. Revealing delete(1) reinserts Ada's
        comment 101 — whose parent post 11 is gone. The engine re-removes
        it attributed to delete(2), so delete(2)'s reveal brings it back."""
        db, engine = build()
        before = snapshot(db)
        d1 = engine.apply("BlogDelete", uid=1)
        d2 = engine.apply("BlogDelete", uid=2)
        engine.reveal(d1.disguise_id, check_integrity=True)
        # Ada is back; her comment on Bea's (still deleted) post is not live
        assert db.get("users", 1) is not None
        assert db.get("comments", 101) is None
        # but it lives in d2's vault now
        held = [
            e
            for e in engine.vault.entries_for(2, disguise_id=d2.disguise_id)
            if e.table == "comments" and e.pk == 101
        ]
        assert len(held) == 1
        engine.reveal(d2.disguise_id, check_integrity=True)
        assert snapshot(db) == before


class TestNoOpDisguises:
    def test_second_identical_scrub_is_noop_and_revealable(self):
        db, engine = build()
        before = snapshot(db)
        first = engine.apply("BlogScrub", uid=2)
        second = engine.apply("BlogScrub", uid=2)  # everything already done
        assert second.rows_touched == 0 or second.redundant_skipped > 0
        # revealing the no-op changes nothing
        engine.reveal(second.disguise_id)
        assert db.get("users", 2) is None
        engine.reveal(first.disguise_id, check_integrity=True)
        assert snapshot(db) == before

    def test_entry_counts_follow_consumption(self):
        """Composition that consumes another disguise's entries updates its
        live entry count, so reveal can tell 'nothing left' from 'expired'."""
        db, engine = build()
        scrub = engine.apply("BlogScrub", uid=2, optimize=False)
        entries_before = engine.history.get(scrub.disguise_id).entries
        assert entries_before > 0
        engine.apply("BlogDelete", uid=2, optimize=False)  # consumes scrub's work
        entries_after = engine.history.get(scrub.disguise_id).entries
        assert entries_after < entries_before
