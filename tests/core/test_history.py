"""Unit tests for the disguise history log."""

import pytest

from repro.core.history import HISTORY_TABLE, DisguiseHistory
from repro.errors import DisguiseError


class TestHistory:
    def test_open_assigns_monotonic_ids(self, blog_db):
        history = DisguiseHistory(blog_db)
        d1 = history.open("A", uid=19, reversible=True, user_invoked=True)
        d2 = history.open("B", uid=None, reversible=True, user_invoked=False)
        assert d2 == d1 + 1

    def test_record_round_trip(self, blog_db):
        history = DisguiseHistory(blog_db)
        did = history.open("A", uid=19, reversible=False, user_invoked=True)
        record = history.get(did)
        assert record.name == "A"
        assert record.uid == 19
        assert record.active and not record.reversible and record.user_invoked
        assert record.epoch == did

    def test_global_disguise_has_null_uid(self, blog_db):
        history = DisguiseHistory(blog_db)
        did = history.open("ConfAnon", uid=None, reversible=True, user_invoked=False)
        assert history.get(did).uid is None

    def test_get_missing_raises(self, blog_db):
        history = DisguiseHistory(blog_db)
        with pytest.raises(DisguiseError):
            history.get(99)

    def test_deactivate(self, blog_db):
        history = DisguiseHistory(blog_db)
        did = history.open("A", 19, True, True)
        history.deactivate(did)
        assert not history.get(did).active
        assert history.records(active_only=True) == []

    def test_records_ordering_and_filters(self, blog_db):
        history = DisguiseHistory(blog_db)
        d1 = history.open("A", 19, True, True)
        d2 = history.open("B", None, True, False)
        d3 = history.open("C", 20, True, True)
        history.deactivate(d2)
        assert [r.did for r in history.records()] == [d1, d2, d3]
        assert [r.did for r in history.records(active_only=True)] == [d1, d3]

    def test_active_after(self, blog_db):
        history = DisguiseHistory(blog_db)
        d1 = history.open("A", 19, True, True)
        d2 = history.open("B", None, True, False)
        d3 = history.open("C", 20, True, True)
        assert [r.did for r in history.active_after(d1)] == [d2, d3]
        assert history.active_after(d3) == []

    def test_active_for_user_includes_globals(self, blog_db):
        history = DisguiseHistory(blog_db)
        d1 = history.open("A", 19, True, True)
        d2 = history.open("B", None, True, False)
        history.open("C", 20, True, True)
        mine = [r.did for r in history.active_for_user(19)]
        assert mine == [d1, d2]

    def test_seq_allocation_monotonic(self, blog_db):
        history = DisguiseHistory(blog_db)
        values = [history.next_seq() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_counters_resume_after_reattach(self, blog_db):
        history = DisguiseHistory(blog_db)
        did = history.open("A", 19, True, True)
        for _ in range(10):
            history.next_seq()
        history.checkpoint(did)
        # A fresh engine attaching to the same database resumes counters.
        resumed = DisguiseHistory(blog_db)
        assert resumed.next_seq() > 10
        assert resumed.open("B", 20, True, True) > did

    def test_history_table_created_once(self, blog_db):
        DisguiseHistory(blog_db)
        DisguiseHistory(blog_db)  # no duplicate-table error
        assert blog_db.has_table(HISTORY_TABLE)

    def test_string_uid_round_trips(self, blog_db):
        history = DisguiseHistory(blog_db)
        did = history.open("A", uid="alice", reversible=True, user_invoked=True)
        assert history.get(did).uid == "alice"
