"""Unit tests for disguise application: the three operations, placeholders,
vault entries, FK safety, and transactionality."""

import pytest

from repro import Disguiser, DisguiseSpec, Remove, TableDisguise
from repro.errors import DisguiseError, ForeignKeyError
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE

from tests.conftest import blog_anon_spec, blog_delete_spec, blog_scrub_spec


class TestRemove:
    def test_rows_removed_and_vaulted(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_delete_spec(), uid=2)
        assert blog_db.get("users", 2) is None
        assert blog_db.count("posts", "user_id = 2") == 0
        assert blog_db.count("comments", "user_id = 2") == 0
        # user + 2 posts + 2 own comments + 2 follows, plus comments 101/102
        # by other users cascading with Bea's posts.
        assert report.rows_removed == 9
        assert report.cascades == 2
        entries = engine.vault.entries_for(2)
        assert all(e.op == OP_REMOVE for e in entries)
        assert len(entries) == report.rows_removed

    def test_cascaded_children_vaulted_individually(self, blog_db):
        # Deleting posts cascades their comments; each cascaded comment must
        # have its own vault entry so reveal is exact.
        engine = Disguiser(blog_db)
        spec = DisguiseSpec(
            "PostsOnly",
            [TableDisguise("posts", transformations=[Remove("user_id = $UID")])],
        )
        report = engine.apply(spec, uid=2)  # posts 11, 12; comments 101,102 cascade
        assert report.cascades == 2
        vaulted = engine.vault.entries_for(2)
        tables = sorted(e.table for e in vaulted)
        assert tables == ["comments", "comments", "posts", "posts"]
        assert blog_db.check_integrity() == []

    def test_unaddressed_restrict_child_aborts_whole_disguise(self, blog_db):
        engine = Disguiser(blog_db, validate_specs=False)
        bad = DisguiseSpec(
            "Bad",
            [TableDisguise("users", transformations=[Remove("id = $UID")])],
        )
        before = blog_db.row_counts()
        with pytest.raises(ForeignKeyError):
            engine.apply(bad, uid=2)
        # transaction rolled back: nothing changed, no vault entries
        assert blog_db.row_counts() == before
        assert engine.vault.size() == 0
        assert engine.history.records() == []

    def test_children_before_parents_across_tables(self, blog_db):
        # The spec lists users first; the engine must still delete posts,
        # comments, follows before the user row.
        engine = Disguiser(blog_db)
        report = engine.apply(blog_delete_spec(), uid=1)
        assert report.rows_removed > 0
        assert blog_db.check_integrity() == []


class TestDecorrelate:
    def test_each_row_gets_fresh_placeholder(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_scrub_spec(), uid=2)
        posts = blog_db.select("posts", "id IN (11, 12)")
        owners = {p["user_id"] for p in posts}
        assert 2 not in owners
        assert len(owners) == 2  # one placeholder per row (Figure 2)
        for owner in owners:
            placeholder = blog_db.get("users", owner)
            assert placeholder["disabled"] is True
            assert placeholder["email"] is None

    def test_vault_entry_payload(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_scrub_spec(), uid=2)
        decorrelations = engine.vault.entries_for(2, op=OP_DECORRELATE, table="posts")
        assert len(decorrelations) == 2
        entry = decorrelations[0]
        assert entry.old_value == 2
        assert entry.placeholder_table == "users"
        assert blog_db.get("users", entry.placeholder_pk) is not None

    def test_null_fk_skipped(self, blog_db):
        from repro import Decorrelate, Default, FakeName

        # posts.user_id is NOT NULL, so build a nullable-fk scenario in follows? Use
        # comments with a custom spec on a row forced through raw table access.
        engine = Disguiser(blog_db)
        spec = blog_scrub_spec()
        # Nothing with NULL fk exists; applying for a user with no posts is a no-op.
        report = engine.apply(spec, uid=1)  # Ada has 1 post, 1 comment
        assert report.rows_decorrelated == 2

    def test_placeholder_ids_do_not_collide(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_scrub_spec(), uid=2)
        engine.apply(blog_scrub_spec(), uid=3)
        pks = [u["id"] for u in blog_db.select("users")]
        assert len(pks) == len(set(pks))


class TestModify:
    def test_values_rewritten_and_vaulted(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_anon_spec())
        assert report.rows_modified == 6  # 3 names + 3 emails
        assert all(u["name"] == "[redacted]" for u in blog_db.select("users", "disabled = FALSE"))
        modifications = [
            e for e in engine.vault.all_entries() if e.op == OP_MODIFY
        ]
        assert {e.old_value for e in modifications if e.column == "name"} == {
            "Ada", "Bea", "Cal",
        }

    def test_noop_modify_writes_no_entry(self, blog_db):
        from repro import Modify, named_modifier

        engine = Disguiser(blog_db)
        fn, label = named_modifier("null")
        spec = DisguiseSpec(
            "NullNothing",
            [
                TableDisguise(
                    "posts",
                    transformations=[Modify("body IS NULL", column="body", fn=fn, label=label)],
                )
            ],
        )
        report = engine.apply(spec, uid=None) if not spec.is_user_disguise else None
        assert report.vault_entries_written == 0


class TestApplyMechanics:
    def test_user_disguise_requires_uid(self, blog_db):
        engine = Disguiser(blog_db)
        with pytest.raises(DisguiseError):
            engine.apply(blog_scrub_spec())

    def test_irreversible_apply_writes_no_vault(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_delete_spec(), uid=2, reversible=False)
        assert report.rows_removed > 0
        assert engine.vault.size() == 0
        record = engine.history.get(report.disguise_id)
        assert not record.reversible

    def test_report_stats_populated(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        assert report.duration_s > 0
        assert report.db_stats.total > 0
        assert report.vault_stats.writes == report.vault_entries_written
        assert "BlogScrub" in report.summary()

    def test_history_records_application(self, blog_db):
        engine = Disguiser(blog_db)
        r1 = engine.apply(blog_scrub_spec(), uid=2)
        r2 = engine.apply(blog_anon_spec())
        records = engine.history.records()
        assert [r.did for r in records] == [r1.disguise_id, r2.disguise_id]
        assert records[0].user_invoked and not records[1].user_invoked

    def test_apply_by_name_requires_registration(self, blog_db):
        engine = Disguiser(blog_db)
        with pytest.raises(DisguiseError):
            engine.apply("BlogScrub", uid=2)
        engine.register(blog_scrub_spec())
        assert engine.apply("BlogScrub", uid=2).rows_removed > 0

    def test_integrity_check_option(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2, check_integrity=True)
        assert report.disguise_id > 0

    def test_global_spec_with_uid_param_unused(self, blog_db):
        # Applying a global disguise with uid=None works.
        engine = Disguiser(blog_db)
        report = engine.apply(blog_anon_spec())
        assert report.uid is None
