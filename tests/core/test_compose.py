"""Unit tests for disguise composition (paper §4.2, §6)."""

import pytest

from repro import Disguiser
from repro.core.compose import skippable_decorrelation
from repro.vault.entry import OP_DECORRELATE, OP_REMOVE, VaultEntry

from tests.conftest import blog_anon_spec, blog_delete_spec, blog_scrub_spec


def snapshot(db):
    return {
        name: sorted(tuple(sorted(row.items())) for row in db.table(name).rows())
        for name in ("users", "posts", "comments", "follows")
    }


class TestRecorrelation:
    def test_scrub_after_anon_removes_true_original(self, blog_db):
        """The §6 scenario: GDPR+-style disguise after ConfAnon-style one.

        Without recorrelation the scrub could not find Bea's rows (they
        point at placeholders) and its REMOVE would vault anonymized data.
        """
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        report = engine.apply(blog_scrub_spec(), uid=2, check_integrity=True)
        assert report.recorrelated > 0
        assert blog_db.get("users", 2) is None
        # the scrub's REMOVE entry must hold Bea's TRUE original state
        removes = [
            e
            for e in engine.vault.entries_for(2, disguise_id=report.disguise_id)
            if e.op == OP_REMOVE and e.table == "users"
        ]
        assert len(removes) == 1
        assert removes[0].removed_row["name"] == "Bea"
        assert removes[0].removed_row["email"] == "bea@x.io"

    def test_optimizer_skips_redundant_decorrelation(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        report = engine.apply(blog_scrub_spec(), uid=2, optimize=True)
        # Bea's 2 posts were already decorrelated by BlogAnon; skipped.
        assert report.redundant_skipped == 2
        # comments are NOT decorrelated by BlogAnon -> still recorrelated? No:
        # BlogAnon does not touch comments, so nothing to recorrelate there.
        assert blog_db.check_integrity() == []

    def test_optimizer_off_redoes_decorrelation(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        report = engine.apply(blog_scrub_spec(), uid=2, optimize=False)
        assert report.redundant_skipped == 0
        assert report.recorrelated >= 2
        assert report.reapplied >= 0
        assert blog_db.check_integrity() == []

    def test_optimized_costs_less(self, blog_db):
        from tests.conftest import make_blog_db

        engine1 = Disguiser(blog_db)
        engine1.apply(blog_anon_spec())
        unoptimized = engine1.apply(blog_scrub_spec(), uid=2, optimize=False)

        db2 = make_blog_db()
        engine2 = Disguiser(db2)
        engine2.apply(blog_anon_spec())
        optimized = engine2.apply(blog_scrub_spec(), uid=2, optimize=True)
        assert optimized.db_stats.total < unoptimized.db_stats.total

    def test_compose_disabled_sees_disguised_state(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        report = engine.apply(blog_scrub_spec(), uid=2, compose=False)
        # without composition, Bea's user row is found (pk predicate) but
        # its vaulted state is the anonymized one
        removes = [
            e
            for e in engine.vault.entries_for(2, disguise_id=report.disguise_id)
            if e.op == OP_REMOVE and e.table == "users"
        ]
        assert removes and removes[0].removed_row["name"] == "[redacted]"

    def test_remove_entries_compose_naturally(self, blog_db):
        """Data another disguise removed needs no recorrelation (§4.2)."""
        engine = Disguiser(blog_db)
        first = engine.apply(blog_delete_spec(), uid=2)
        report = engine.apply(blog_scrub_spec(), uid=2)
        # everything already gone: nothing recorrelated, nothing to do
        assert report.recorrelated == 0
        assert report.rows_removed == 0
        assert report.rows_decorrelated == 0

    def test_full_unwind_after_composition(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        anon = engine.apply(blog_anon_spec())
        scrub = engine.apply(blog_scrub_spec(), uid=2, optimize=False)
        engine.reveal(scrub.disguise_id, check_integrity=True)
        engine.reveal(anon.disguise_id, check_integrity=True)
        assert snapshot(blog_db) == before
        assert engine.vault.size() == 0

    def test_full_unwind_after_optimized_composition(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        anon = engine.apply(blog_anon_spec())
        scrub = engine.apply(blog_scrub_spec(), uid=2, optimize=True)
        engine.reveal(scrub.disguise_id, check_integrity=True)
        engine.reveal(anon.disguise_id, check_integrity=True)
        assert snapshot(blog_db) == before


class TestSkippableDecorrelation:
    def _entry(self, table="posts", column="user_id"):
        return VaultEntry(
            entry_id=1, disguise_id=1, seq=1, epoch=1, owner=2,
            table=table, pk=10, op=OP_DECORRELATE,
            payload={"column": column, "old": 2, "new": 99,
                     "placeholder_table": "users", "placeholder_pk": 99},
        )

    def test_same_fk_skippable(self):
        assert skippable_decorrelation(blog_scrub_spec(), self._entry())

    def test_remove_on_table_blocks_skip(self):
        spec = blog_delete_spec()  # removes posts
        assert not skippable_decorrelation(spec, self._entry())

    def test_untouched_table_not_skippable(self):
        assert not skippable_decorrelation(
            blog_scrub_spec(), self._entry(table="follows", column="follower_id")
        )

    def test_non_decorrelate_entry_not_skippable(self):
        entry = VaultEntry(
            entry_id=1, disguise_id=1, seq=1, epoch=1, owner=2,
            table="posts", pk=10, op=OP_REMOVE, payload={"row": {}},
        )
        assert not skippable_decorrelation(blog_scrub_spec(), entry)
