"""Unit tests for time-triggered policies: expiration and data decay (§2)."""

import pytest

from repro import (
    DecayPolicy,
    DecayStage,
    Disguiser,
    ExpirationPolicy,
    PolicyScheduler,
    SimClock,
)
from repro.core.scheduler import FiredAction
from repro.errors import DisguiseError

from tests.conftest import blog_scrub_spec


def activity(db):
    return {
        row["id"]: row["last_login"]
        for row in db.select("users", "email IS NOT NULL")
    }


@pytest.fixture
def scheduled(blog_db):
    engine = Disguiser(blog_db)
    engine.register(blog_scrub_spec())
    clock = SimClock(start=0.0)
    scheduler = PolicyScheduler(engine, clock)
    return blog_db, engine, clock, scheduler


class TestSimClock:
    def test_advance(self):
        clock = SimClock(10.0)
        assert clock.advance(5) == 15.0
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestExpiration:
    def test_inactive_users_get_disguised(self, scheduled):
        db, engine, clock, scheduler = scheduled
        scheduler.add(
            ExpirationPolicy("expire", "BlogScrub", inactive_for=500.0, activity=activity)
        )
        clock.advance(400)  # Ada idle 300, Bea 200, Cal 100
        assert scheduler.tick() == []
        clock.advance(300)  # now 700: Ada idle 600, Bea 500 -> both due
        actions = scheduler.tick()
        fired = sorted(a.uid for a in actions)
        assert fired == [1, 2]
        assert db.get("users", 1) is None and db.get("users", 2) is None
        assert db.get("users", 3) is not None

    def test_fires_once_per_user(self, scheduled):
        db, engine, clock, scheduler = scheduled
        scheduler.add(
            ExpirationPolicy("expire", "BlogScrub", inactive_for=50.0, activity=activity)
        )
        clock.advance(1000)
        first = scheduler.tick()
        second = scheduler.tick()
        assert len(first) == 3 and second == []

    def test_reveal_on_return(self, scheduled):
        db, engine, clock, scheduler = scheduled
        scheduler.add(
            ExpirationPolicy(
                "expire", "BlogScrub", inactive_for=500.0, activity=activity,
                reveal_on_return=True,
            )
        )
        clock.advance(700)
        scheduler.tick()
        assert db.get("users", 1) is None
        # Ada logs back in: the application restores her activity signal by
        # ... well, her row is gone; model return via the activity fn seeing
        # a fresh login for uid 1.
        fresh = dict(activity(db))
        fresh[1] = clock.now
        scheduler._expirations[0].activity = lambda _db: fresh
        actions = scheduler.tick()
        reveals = [a for a in actions if a.kind == "reveal"]
        assert [a.uid for a in reveals] == [1]
        assert db.get("users", 1) is not None
        assert db.get("users", 1)["name"] == "Ada"

    def test_in_force_tracking(self, scheduled):
        db, engine, clock, scheduler = scheduled
        scheduler.add(
            ExpirationPolicy("expire", "BlogScrub", inactive_for=500.0, activity=activity)
        )
        clock.advance(700)
        scheduler.tick()
        assert scheduler.in_force("expire", "BlogScrub", 1)
        assert not scheduler.in_force("expire", "BlogScrub", 3)


class TestDecay:
    def test_stages_fire_in_order(self, blog_db):
        from repro import DisguiseSpec, Modify, TableDisguise, named_modifier

        engine = Disguiser(blog_db)
        redact, _ = named_modifier("redact")
        null_fn, _ = named_modifier("null")
        stage1 = DisguiseSpec(
            "DecayEmail",
            [TableDisguise("users", transformations=[
                Modify("id = $UID", column="email", fn=null_fn, label="null"),
            ])],
        )
        engine.register(stage1)
        engine.register(blog_scrub_spec())
        clock = SimClock(0.0)
        scheduler = PolicyScheduler(engine, clock)
        # Fixed activity signal (e.g. from an external auth log): decay must
        # keep firing for a user even after earlier stages scrubbed the
        # columns the in-database signal would have come from.
        last_logins = {1: 100.0, 2: 200.0, 3: 300.0}
        scheduler.add(
            DecayPolicy(
                "decay",
                stages=(
                    DecayStage(age=500.0, spec_name="DecayEmail"),
                    DecayStage(age=900.0, spec_name="BlogScrub"),
                ),
                activity=lambda db: last_logins,
            )
        )
        clock.advance(650)  # Ada idle 550 -> stage 1 only
        actions = scheduler.tick()
        assert [(a.spec_name, a.uid) for a in actions] == [("DecayEmail", 1)]
        assert blog_db.get("users", 1)["email"] is None
        assert blog_db.get("users", 1)["name"] == "Ada"
        clock.advance(400)  # Ada idle 950 -> stage 2; Bea idle 850 -> stage 1
        actions = scheduler.tick()
        fired = {(a.spec_name, a.uid) for a in actions}
        assert ("BlogScrub", 1) in fired
        assert ("DecayEmail", 2) in fired
        assert blog_db.get("users", 1) is None
        assert blog_db.check_integrity() == []

    def test_unordered_stages_rejected(self):
        with pytest.raises(DisguiseError):
            DecayPolicy(
                "bad",
                stages=(DecayStage(900, "A"), DecayStage(500, "B")),
                activity=lambda db: {},
            )

    def test_unknown_policy_type_rejected(self, scheduled):
        _, _, _, scheduler = scheduled
        with pytest.raises(DisguiseError):
            scheduler.add(object())
