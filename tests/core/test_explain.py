"""Unit tests for the dry-run explain API (paper §1, §7)."""

import pytest

from repro import Disguiser, DisguiseSpec, Remove, TableDisguise
from repro.errors import DisguiseError

from tests.conftest import blog_anon_spec, blog_delete_spec, blog_scrub_spec


class TestExplainBasics:
    def test_counts_match_actual_apply(self, blog_db):
        engine = Disguiser(blog_db)
        plan = engine.explain(blog_scrub_spec(), uid=2)
        report = engine.apply(blog_scrub_spec(), uid=2)
        assert plan.rows_touched == report.rows_touched
        assert plan.placeholders == report.placeholders_created
        assert plan.is_applicable

    def test_explain_does_not_modify(self, blog_db):
        engine = Disguiser(blog_db)
        before = blog_db.row_counts()
        engine.explain(blog_scrub_spec(), uid=2)
        assert blog_db.row_counts() == before
        assert engine.vault.size() == 0
        assert engine.history.records() == []

    def test_per_action_breakdown(self, blog_db):
        engine = Disguiser(blog_db)
        plan = engine.explain(blog_scrub_spec(), uid=2)
        kinds = {(a.table, a.kind): a.rows for a in plan.actions}
        assert kinds[("users", "remove")] == 1
        assert kinds[("posts", "decorrelate")] == 2
        assert kinds[("comments", "decorrelate")] == 2
        assert kinds[("follows", "remove")] == 2

    def test_cascades_predicted(self, blog_db):
        engine = Disguiser(blog_db)
        plan = engine.explain(blog_delete_spec(), uid=2)
        cascades = [a for a in plan.actions if a.kind == "cascade"]
        # Bea's posts cascade comments 101, 102 (by other users)
        assert sum(a.rows for a in cascades) == 2
        report = engine.apply(blog_delete_spec(), uid=2)
        assert plan.rows_touched == report.rows_touched

    def test_restrict_conflict_detected(self, blog_db):
        engine = Disguiser(blog_db, validate_specs=False)
        bad = DisguiseSpec(
            "Bad", [TableDisguise("users", transformations=[Remove("id = $UID")])]
        )
        plan = engine.explain(bad, uid=2)
        assert not plan.is_applicable
        assert any(c.referencing_table == "posts" for c in plan.conflicts)
        assert "CONFLICT" in plan.describe()

    def test_uid_required_for_user_disguise(self, blog_db):
        engine = Disguiser(blog_db)
        with pytest.raises(DisguiseError):
            engine.explain(blog_scrub_spec())

    def test_global_disguise_explained(self, blog_db):
        engine = Disguiser(blog_db)
        plan = engine.explain(blog_anon_spec())
        assert plan.uid is None
        assert plan.placeholders == 4  # all posts decorrelated
        report = engine.apply(blog_anon_spec())
        assert plan.rows_touched == report.rows_touched

    def test_explain_by_name(self, blog_db):
        engine = Disguiser(blog_db)
        engine.register(blog_scrub_spec())
        plan = engine.explain("BlogScrub", uid=2)
        assert plan.spec_name == "BlogScrub"


class TestExplainComposition:
    def test_predicts_recorrelation_and_skips(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        plan = engine.explain(blog_scrub_spec(), uid=2, optimize=True)
        report = engine.apply(blog_scrub_spec(), uid=2, optimize=True)
        assert plan.optimizer_skips == report.redundant_skipped
        assert plan.recorrelations == report.recorrelated
        assert any("BlogAnon" in i for i in plan.active_interactions)

    def test_predicts_unoptimized_recorrelation(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        plan = engine.explain(blog_scrub_spec(), uid=2, optimize=False)
        report = engine.apply(blog_scrub_spec(), uid=2, optimize=False)
        assert plan.optimizer_skips == 0
        assert plan.recorrelations == report.recorrelated

    def test_locked_vault_reported(self, blog_db):
        from repro.vault import EncryptedVault, MemoryVault

        vault = EncryptedVault(MemoryVault())
        vault.register_owner(2)
        engine = Disguiser(blog_db, vault=vault)
        engine.apply(blog_scrub_spec(), uid=2)
        # vault locked for reads now
        engine.reveal  # (no unlock)
        plan = engine.explain(blog_delete_spec(), uid=2)
        assert any("locked" in i for i in plan.active_interactions)

    def test_describe_renders(self, blog_db):
        engine = Disguiser(blog_db)
        plan = engine.explain(blog_scrub_spec(), uid=2)
        text = plan.describe()
        assert "BlogScrub" in text
        assert "placeholder" in text
