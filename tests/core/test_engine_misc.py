"""Engine edge cases: registry, reports, vault-in-app-db, re-attach."""

import pytest

from repro import Database, Disguiser
from repro.core.stats import DisguiseReport, RevealReport
from repro.errors import DisguiseError
from repro.vault import TableVault

from tests.conftest import blog_anon_spec, blog_scrub_spec, make_blog_db


class TestSpecRegistry:
    def test_plain_reveal_is_vault_driven(self, blog_db):
        # A simple reveal needs no spec: the vault entries ARE the reveal
        # functions. A fresh engine with an empty registry can reverse it.
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        fresh = Disguiser(blog_db, vault=engine.vault)
        fresh.reveal(report.disguise_id, check_integrity=True)
        assert blog_db.get("users", 2) is not None

    def test_chained_reveal_needs_the_later_disguises_spec(self, blog_db):
        # Chain re-execution regenerates placeholders, which requires the
        # later disguise's spec (its generate_placeholder recipes).
        engine = Disguiser(blog_db)
        scrub = engine.apply(blog_scrub_spec(), uid=2)
        engine.apply(blog_anon_spec())
        fresh = Disguiser(blog_db, vault=engine.vault)
        with pytest.raises(DisguiseError) as excinfo:
            fresh.reveal(scrub.disguise_id)
        assert "BlogAnon" in str(excinfo.value)
        # nothing leaked from the failed attempt
        assert blog_db.check_integrity() == []
        fresh.register(blog_anon_spec())
        fresh.register(blog_scrub_spec())
        fresh.reveal(scrub.disguise_id, check_integrity=True)
        assert blog_db.get("users", 2) is not None

    def test_register_returns_warnings(self, blog_db):
        from repro import DisguiseSpec, Remove, TableDisguise

        engine = Disguiser(blog_db)
        leaky = DisguiseSpec(
            "Leaky", [TableDisguise("users", transformations=[Remove("id = $UID")])]
        )
        warnings = engine.register(leaky)
        assert warnings  # posts/comments/follows unaddressed
        assert any("posts" in str(w) for w in warnings)

    def test_validation_can_be_disabled(self, blog_db):
        from repro import DisguiseSpec, Remove, TableDisguise

        engine = Disguiser(blog_db, validate_specs=False)
        leaky = DisguiseSpec(
            "Leaky", [TableDisguise("users", transformations=[Remove("id = $UID")])]
        )
        assert engine.register(leaky) == []

    def test_inline_spec_autoregisters(self, blog_db):
        engine = Disguiser(blog_db)
        spec = blog_scrub_spec()
        engine.apply(spec, uid=2)
        assert engine.spec("BlogScrub") is spec


class TestReports:
    def test_apply_summary_fields(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        text = report.summary()
        for fragment in ("BlogScrub", "uid=2", "removed", "decorrelated", "ms"):
            assert fragment in text
        assert report.rows_touched == (
            report.rows_removed + report.rows_modified + report.rows_decorrelated
        )

    def test_reveal_summary_fields(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        reveal = engine.reveal(report.disguise_id)
        text = reveal.summary()
        assert "reveal BlogScrub" in text and "reinserted" in text

    def test_default_report_dataclasses(self):
        report = DisguiseReport(disguise_id=1, name="x", uid=None)
        assert report.rows_touched == 0
        reveal = RevealReport(disguise_id=1, name="x", uid=None)
        assert reveal.rows_reinserted == 0


class TestVaultInsideApplicationDatabase:
    """Edna stores vaults as tables in the application database (§5); with
    our TableVault pointed at the app db, vault writes join the disguise
    transaction."""

    def test_apply_reveal_round_trip(self):
        db = make_blog_db()
        engine = Disguiser(db, vault=TableVault(db))
        report = engine.apply(blog_scrub_spec(), uid=2)
        assert db.has_table("_vault_u2")
        assert db.count("_vault_u2") == report.vault_entries_written
        engine.reveal(report.disguise_id, check_integrity=True)
        assert db.count("_vault_u2") == 0
        assert db.get("users", 2) is not None

    def test_rollback_cleans_vault_table(self):
        from repro import PrivacyAssertion
        from repro.errors import AssertionFailure

        db = make_blog_db()
        engine = Disguiser(db, vault=TableVault(db))
        impossible = PrivacyAssertion("never", table="users", pred="TRUE")
        with pytest.raises(AssertionFailure):
            engine.apply(blog_scrub_spec(), uid=2, assertions=[impossible])
        # compensation + rollback leave no vault rows behind
        assert not db.has_table("_vault_u2") or db.count("_vault_u2") == 0


class TestEngineReattach:
    def test_new_engine_resumes_ids_and_history(self, blog_db):
        engine = Disguiser(blog_db)
        first = engine.apply(blog_scrub_spec(), uid=2)
        resumed = Disguiser(blog_db, vault=engine.vault)
        resumed.register(blog_scrub_spec())
        second = resumed.apply("BlogScrub", uid=3)
        assert second.disguise_id > first.disguise_id
        records = resumed.history.records(active_only=True)
        assert [r.did for r in records] == [first.disguise_id, second.disguise_id]

    def test_seq_never_reused_across_engines(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_scrub_spec(), uid=2)
        seqs_before = {e.seq for e in engine.vault.entries_for(2)}
        resumed = Disguiser(blog_db, vault=engine.vault)
        resumed.register(blog_scrub_spec())
        resumed.apply("BlogScrub", uid=3)
        seqs_after = {e.seq for e in resumed.vault.entries_for(3)}
        assert not (seqs_before & seqs_after)
