"""Tests for the erasure auditor (paper §7 / DELF-style detection)."""

import pytest

from repro import Disguiser
from repro.core.audit import audit_user_erasure, scan_for_pii

from tests.conftest import blog_delete_spec, blog_scrub_spec


class TestAuditUserErasure:
    def test_clean_after_full_scrub(self, blog_db):
        engine = Disguiser(blog_db)
        bea = blog_db.get("users", 2)
        engine.apply(blog_scrub_spec(), uid=2)
        findings = audit_user_erasure(
            blog_db, "users", 2, identifiers=[bea["name"], bea["email"]]
        )
        assert findings == []

    def test_detects_surviving_account(self, blog_db):
        findings = audit_user_erasure(blog_db, "users", 2)
        assert any(f.kind == "reference" and f.table == "users" for f in findings)

    def test_detects_dangling_ownership(self, blog_db):
        # simulate a buggy spec: account removed, posts left attached
        blog_db.delete("comments", "user_id = 2")
        blog_db.delete("follows", "follower_id = 2 OR followee_id = 2")
        # posts remain owned by 2 -> cannot remove user; mutate raw tables
        blog_db.table("users").delete_by_pk(2)
        findings = audit_user_erasure(blog_db, "users", 2)
        leaks = [f for f in findings if f.kind == "reference" and f.table == "posts"]
        assert len(leaks) == 2

    def test_detects_denormalized_value_copy(self, blog_db):
        # a post body quotes Bea's email; a schema-driven spec misses it
        blog_db.update_by_pk("posts", 10, {"body": "contact bea@x.io for details"})
        engine = Disguiser(blog_db)
        engine.apply(blog_scrub_spec(), uid=2)
        findings = audit_user_erasure(
            blog_db, "users", 2, identifiers=["Bea", "bea@x.io"]
        )
        assert any(
            f.kind == "value" and f.table == "posts" and "bea@x.io" in f.detail
            for f in findings
        )

    def test_hard_delete_clean_including_values(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_delete_spec(), uid=2)
        findings = audit_user_erasure(
            blog_db, "users", 2, identifiers=["Bea", "bea@x.io"]
        )
        assert findings == []

    def test_skip_tables(self, blog_db):
        findings = audit_user_erasure(blog_db, "users", 2, skip_tables=["users"])
        assert not any(f.table == "users" for f in findings)


class TestScanForPii:
    def test_declared_pii_columns_flagged(self, blog_db):
        findings = scan_for_pii(blog_db)
        # users.name and users.email are declared PII and unscrubbed
        tables = {(f.table, f.column) for f in findings}
        assert ("users", "email") in tables
        assert ("users", "name") in tables

    def test_redaction_markers_ignored(self, blog_db):
        from tests.conftest import blog_anon_spec

        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())  # redacts names, nulls emails
        findings = scan_for_pii(blog_db)
        assert not any(f.column in ("name", "email") for f in findings)

    def test_pattern_hits_in_undeclared_columns(self, blog_db):
        blog_db.update_by_pk("posts", 10, {"body": "my server is 203.0.113.7 ok"})
        findings = scan_for_pii(blog_db, skip_tables=["users"])
        assert any(
            f.table == "posts" and "ipv4" in f.detail for f in findings
        )

    def test_email_pattern_in_body(self, blog_db):
        blog_db.update_by_pk("posts", 10, {"body": "write me: someone@example.com"})
        findings = scan_for_pii(blog_db, skip_tables=["users"])
        assert any("email-shaped" in f.detail for f in findings)

    def test_anon_invalid_addresses_are_safe(self, blog_db):
        blog_db.update_by_pk("posts", 10, {"body": "mapped to x9k@anon.invalid"})
        findings = scan_for_pii(blog_db, skip_tables=["users"])
        assert not any(f.table == "posts" for f in findings)

    def test_hotcrp_confanon_leaves_no_pii(self):
        from repro.apps.hotcrp import (
            HotcrpPopulation,
            all_disguises,
            generate_hotcrp,
        )

        db = generate_hotcrp(
            population=HotcrpPopulation(30, 4, 20, 60), seed=9
        )
        engine = Disguiser(db)
        for spec in all_disguises():
            engine.register(spec)
        engine.apply("HotCRP-ConfAnon")
        findings = scan_for_pii(db)
        # the ConfAnon spec scrubs every declared-PII column it knows about;
        # anything the auditor still finds would be a spec gap.
        assert findings == [], [str(f) for f in findings[:5]]
