"""Property test: schema evolution never breaks active disguises.

Random programs interleave disguise applications with schema changes
(add/rename column, rename table); afterwards every disguise must still
reveal cleanly and referential integrity must hold throughout. Drop-column
changes are excluded here because they *legitimately* make parts of a
disguise permanent (covered deterministically in test_migrate.py).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Disguiser
from repro.storage.evolve import AddColumn, RenameColumn, RenameTable
from repro.storage.schema import Column
from repro.storage.types import ColumnType as T

from tests.conftest import blog_anon_spec, blog_scrub_spec, make_blog_db

_SPECS = {"scrub": blog_scrub_spec, "anon": blog_anon_spec}

steps = st.lists(
    st.one_of(
        st.tuples(st.just("apply"), st.sampled_from(
            [("scrub", 1), ("scrub", 2), ("anon", None)]
        )),
        st.tuples(st.just("evolve"), st.sampled_from(
            ["add-users-col", "add-posts-col", "rename-posts-col",
             "rename-comments-col", "rename-follows-table"]
        )),
    ),
    min_size=2,
    max_size=6,
)

_CHANGE_BUILDERS = {
    "add-users-col": lambda n: AddColumn(
        "users", Column(f"extra{n}", T.TEXT, default="x")
    ),
    "add-posts-col": lambda n: AddColumn(
        "posts", Column(f"extra{n}", T.INTEGER, default=0)
    ),
    "rename-posts-col": lambda n: RenameColumn("posts", "title", f"title{n}"),
    "rename-comments-col": lambda n: RenameColumn("comments", "body", f"body{n}"),
    "rename-follows-table": lambda n: RenameTable("follows", f"follows{n}"),
}


@settings(max_examples=25, deadline=None)
@given(program=steps)
def test_evolution_preserves_revealability(program):
    db = make_blog_db()
    engine = Disguiser(db, seed=5)
    engine.register(blog_scrub_spec())
    engine.register(blog_anon_spec())
    applied: list[int] = []
    current_names = {"posts-col": "title", "comments-col": "body", "follows": "follows"}
    counter = 0
    for step, payload in program:
        if step == "apply":
            kind, uid = payload
            try:
                report = engine.apply(
                    {"scrub": "BlogScrub", "anon": "BlogAnon"}[kind], uid=uid
                )
                applied.append(report.disguise_id)
            except Exception:
                pass
        else:
            counter += 1
            try:
                change = _build_change(payload, counter, current_names)
            except KeyError:
                continue
            engine.evolve_schema(change)
            _note_change(payload, counter, current_names)
        assert db.check_integrity() == []
    for did in reversed(applied):
        engine.reveal(did)
    assert db.check_integrity() == []
    assert engine.vault.size() == 0
    # every original user account is back (under whatever the user table
    # is called — it is never renamed in this program space)
    assert db.count("users") == 3


def _build_change(kind: str, n: int, names: dict[str, str]):
    if kind == "rename-posts-col":
        return RenameColumn("posts", names["posts-col"], f"title{n}")
    if kind == "rename-comments-col":
        return RenameColumn("comments", names["comments-col"], f"body{n}")
    if kind == "rename-follows-table":
        return RenameTable(names["follows"], f"follows{n}")
    return _CHANGE_BUILDERS[kind](n)


def _note_change(kind: str, n: int, names: dict[str, str]) -> None:
    if kind == "rename-posts-col":
        names["posts-col"] = f"title{n}"
    elif kind == "rename-comments-col":
        names["comments-col"] = f"body{n}"
    elif kind == "rename-follows-table":
        names["follows"] = f"follows{n}"
