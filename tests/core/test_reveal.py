"""Unit tests for disguise reversal (paper §4.2)."""

import pytest

from repro import Disguiser
from repro.errors import DisguiseError

from tests.conftest import blog_anon_spec, blog_delete_spec, blog_scrub_spec


def snapshot(db):
    return {
        name: sorted(
            tuple(sorted(row.items())) for row in db.table(name).rows()
        )
        for name in ("users", "posts", "comments", "follows")
    }


class TestBasicReveal:
    def test_exact_round_trip(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        engine.reveal(report.disguise_id)
        assert snapshot(blog_db) == before

    def test_delete_round_trip_including_cascades(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        report = engine.apply(blog_delete_spec(), uid=2)
        reveal = engine.reveal(report.disguise_id)
        assert snapshot(blog_db) == before
        assert reveal.rows_reinserted == report.rows_removed

    def test_global_disguise_round_trip(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        report = engine.apply(blog_anon_spec())
        engine.reveal(report.disguise_id)
        assert snapshot(blog_db) == before

    def test_placeholders_garbage_collected(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        assert blog_db.count("users") == 3 - 1 + 4  # 2 posts + 2 comments placeholders
        reveal = engine.reveal(report.disguise_id)
        assert reveal.placeholders_deleted == 4
        assert blog_db.count("users") == 3

    def test_vault_entries_consumed(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        assert engine.vault.size() > 0
        engine.reveal(report.disguise_id)
        assert engine.vault.size() == 0

    def test_history_deactivated(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        engine.reveal(report.disguise_id)
        record = engine.history.get(report.disguise_id)
        assert not record.active
        assert engine.active_disguises() == []

    def test_double_reveal_rejected(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        engine.reveal(report.disguise_id)
        with pytest.raises(DisguiseError):
            engine.reveal(report.disguise_id)

    def test_irreversible_disguise_cannot_be_revealed(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_delete_spec(), uid=2, reversible=False)
        with pytest.raises(DisguiseError):
            engine.reveal(report.disguise_id)

    def test_expired_entries_make_reveal_fail(self, blog_db):
        engine = Disguiser(blog_db)
        report = engine.apply(blog_scrub_spec(), uid=2)
        engine.vault.expire_before(report.disguise_id + 1)
        with pytest.raises(DisguiseError):
            engine.reveal(report.disguise_id)

    def test_unknown_disguise(self, blog_db):
        engine = Disguiser(blog_db)
        with pytest.raises(DisguiseError):
            engine.reveal(42)


class TestIntervalReapplication:
    """Reveal must re-apply later disguises to revealed data (§4.2)."""

    def test_reveal_respects_later_global_disguise(self, blog_db):
        engine = Disguiser(blog_db)
        scrub = engine.apply(blog_scrub_spec(), uid=2)
        engine.apply(blog_anon_spec())
        reveal = engine.reveal(scrub.disguise_id, check_integrity=True)
        # Bea's account is back...
        bea = blog_db.get("users", 2)
        assert bea is not None
        # ...but anonymized, because BlogAnon is still active:
        assert bea["name"] == "[redacted]"
        assert bea["email"] is None
        # and her posts must not be re-identifiable:
        assert blog_db.select("posts", "user_id = 2") == []
        assert reveal.spec_reapplied > 0 or reveal.chain_reapplied > 0

    def test_reveal_of_later_disguise_then_earlier(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        scrub = engine.apply(blog_scrub_spec(), uid=2)
        anon = engine.apply(blog_anon_spec())
        engine.reveal(anon.disguise_id, check_integrity=True)
        # scrub still in effect
        assert blog_db.get("users", 2) is None
        engine.reveal(scrub.disguise_id, check_integrity=True)
        assert snapshot(blog_db) == before

    def test_non_lifo_reveal_converges(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        scrub = engine.apply(blog_scrub_spec(), uid=2)
        anon = engine.apply(blog_anon_spec())
        engine.reveal(scrub.disguise_id, check_integrity=True)
        engine.reveal(anon.disguise_id, check_integrity=True)
        assert snapshot(blog_db) == before
        assert engine.vault.size() == 0

    def test_two_users_interleaved(self, blog_db):
        before = snapshot(blog_db)
        engine = Disguiser(blog_db)
        s2 = engine.apply(blog_scrub_spec(), uid=2)
        s3 = engine.apply(blog_scrub_spec(), uid=3)
        engine.reveal(s2.disguise_id, check_integrity=True)
        assert blog_db.get("users", 2) is not None
        assert blog_db.get("users", 3) is None
        engine.reveal(s3.disguise_id, check_integrity=True)
        assert snapshot(blog_db) == before
