"""Property-based tests for the disguising engine.

The two deep invariants of the framework:

1. **Integrity preservation** — after ANY sequence of applies and reveals,
   referential integrity holds and application invariants are intact
   (paper §4.1: transformations "must maintain the integrity of the
   application's data").
2. **Convergence** — revealing every applied disguise (in any order the
   engine accepts) restores the database to its exact original state.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Disguiser

from tests.conftest import (
    blog_anon_spec,
    blog_delete_spec,
    blog_scrub_spec,
    make_blog_db,
)


def snapshot(db):
    return {
        name: sorted(tuple(sorted(row.items())) for row in db.table(name).rows())
        for name in db.table_names
        if not name.startswith("_")
    }


# An action is (spec index, uid) where uid is None for the global spec.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("scrub"), st.sampled_from([1, 2, 3])),
        st.tuples(st.just("delete"), st.sampled_from([1, 2, 3])),
        st.tuples(st.just("anon"), st.none()),
    ),
    min_size=1,
    max_size=5,
)


def build_engine():
    db = make_blog_db()
    engine = Disguiser(db, seed=7)
    engine.register(blog_scrub_spec())
    engine.register(blog_delete_spec())
    engine.register(blog_anon_spec())
    return db, engine


_SPEC_NAMES = {"scrub": "BlogScrub", "delete": "BlogDelete", "anon": "BlogAnon"}


def run_actions(engine, sequence, optimize):
    applied = []
    for kind, uid in sequence:
        try:
            report = engine.apply(_SPEC_NAMES[kind], uid=uid, optimize=optimize)
            applied.append(report.disguise_id)
        except Exception:
            # Some sequences are invalid (e.g. scrubbing an already-deleted
            # user is fine, but a conflicting constraint may surface);
            # the transaction guarantee is what we check below.
            pass
    return applied


@settings(max_examples=25, deadline=None)
@given(sequence=actions, optimize=st.booleans())
def test_integrity_after_any_sequence(sequence, optimize):
    db, engine = build_engine()
    run_actions(engine, sequence, optimize)
    assert db.check_integrity() == []


@settings(max_examples=25, deadline=None)
@given(sequence=actions, optimize=st.booleans())
def test_reveal_all_in_reverse_restores_original(sequence, optimize):
    db, engine = build_engine()
    original = snapshot(db)
    applied = run_actions(engine, sequence, optimize)
    for did in reversed(applied):
        engine.reveal(did)
    assert snapshot(db) == original
    assert engine.vault.size() == 0


@settings(max_examples=25, deadline=None)
@given(sequence=actions, data=st.data())
def test_reveal_all_in_random_order_restores_original(sequence, data):
    db, engine = build_engine()
    original = snapshot(db)
    applied = run_actions(engine, sequence, optimize=True)
    order = data.draw(st.permutations(applied))
    for did in order:
        engine.reveal(did)
    assert snapshot(db) == original


@settings(max_examples=20, deadline=None)
@given(sequence=actions)
def test_partial_reveal_keeps_integrity(sequence, ):
    db, engine = build_engine()
    applied = run_actions(engine, sequence, optimize=True)
    # reveal only the even-indexed disguises
    for did in reversed(applied[::2]):
        engine.reveal(did)
    assert db.check_integrity() == []


# Interleaved programs: each step either applies a disguise or reveals one
# of the currently active ones (chosen by index). The database must return
# to its exact original state once everything is finally revealed.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("apply"), st.sampled_from(
            [("scrub", 1), ("scrub", 2), ("delete", 2), ("delete", 3), ("anon", None)]
        )),
        st.tuples(st.just("reveal"), st.integers(0, 5)),
    ),
    min_size=2,
    max_size=8,
)


@settings(max_examples=25, deadline=None)
@given(program=steps, optimize=st.booleans())
def test_interleaved_apply_reveal_converges(program, optimize):
    db, engine = build_engine()
    original = snapshot(db)
    active: list[int] = []
    for step, payload in program:
        if step == "apply":
            kind, uid = payload
            try:
                report = engine.apply(_SPEC_NAMES[kind], uid=uid, optimize=optimize)
                active.append(report.disguise_id)
            except Exception:
                pass
        else:
            if active:
                did = active.pop(payload % len(active))
                engine.reveal(did)
        assert db.check_integrity() == []
    for did in reversed(active):
        engine.reveal(did)
    assert snapshot(db) == original
    assert engine.vault.size() == 0
