"""Tests for the disguised-data update guard (paper §7)."""

import pytest

from repro import Disguiser
from repro.core.guard import UPDATE_LOG_TABLE, UpdateGuard
from repro.errors import DisguiseError

from tests.conftest import blog_anon_spec, blog_scrub_spec


@pytest.fixture
def guarded(blog_db):
    engine = Disguiser(blog_db)
    engine.register(blog_scrub_spec())
    engine.register(blog_anon_spec())
    return blog_db, engine


class TestDetection:
    def test_undisguised_rows_not_flagged(self, guarded):
        db, engine = guarded
        guard = UpdateGuard(engine, mode="prohibit")
        assert not guard.is_disguised("posts", 10)

    def test_disguised_rows_flagged(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="prohibit")
        assert guard.is_disguised("posts", 11)   # Bea's decorrelated post
        assert not guard.is_disguised("posts", 10)  # Ada's untouched post

    def test_reveal_clears_flag(self, guarded):
        db, engine = guarded
        report = engine.apply("BlogScrub", uid=2)
        engine.reveal(report.disguise_id)
        guard = UpdateGuard(engine, mode="prohibit")
        assert not guard.is_disguised("posts", 11)

    def test_locked_vault_skipped(self, blog_db):
        from repro.vault import EncryptedVault, MemoryVault

        vault = EncryptedVault(MemoryVault())
        vault.register_owner(2)
        engine = Disguiser(blog_db, vault=vault)
        engine.register(blog_scrub_spec())
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="prohibit")
        # vault is locked: the guard cannot see the disguise
        assert not guard.is_disguised("posts", 11)


class TestProhibitMode:
    def test_update_of_disguised_row_rejected(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="prohibit")
        with pytest.raises(DisguiseError):
            guard.update("posts", 11, {"title": "edited"})
        assert db.get("posts", 11)["title"] == "p2"

    def test_update_of_clean_row_allowed(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="prohibit")
        guard.update("posts", 10, {"title": "edited"})
        assert db.get("posts", 10)["title"] == "edited"

    def test_delete_of_disguised_row_rejected(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="prohibit")
        with pytest.raises(DisguiseError):
            guard.delete("posts", 11)

    def test_unknown_mode_rejected(self, guarded):
        _, engine = guarded
        with pytest.raises(DisguiseError):
            UpdateGuard(engine, mode="shrug")


class TestLogMode:
    def test_update_proceeds_and_is_logged(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="log")
        guard.update("posts", 11, {"title": "fixed typo"})
        assert db.get("posts", 11)["title"] == "fixed typo"
        logged = guard.logged_updates("posts", 11)
        assert len(logged) == 1 and logged[0]["col"] == "title"

    def test_clean_row_update_not_logged(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="log")
        guard.update("posts", 10, {"title": "x"})
        assert guard.logged_updates("posts", 10) == []

    def test_replay_after_reveal_preserves_app_edit(self, guarded):
        """The §7 scenario: the app edits a *modified* (disguised) value;
        revealing the disguise must not clobber the edit."""
        db, engine = guarded
        report = engine.apply("BlogAnon")  # modifies users.name to [redacted]
        guard = UpdateGuard(engine, mode="log")
        # the app legitimately updates Ada's (currently redacted) name
        guard.update("users", 1, {"name": "Ada Lovelace"})
        reveal = engine.reveal(report.disguise_id)
        # the plain reveal restored the pre-disguise name...
        assert db.get("users", 1)["name"] == "Ada"
        replayed = guard.replay_after_reveal(reveal)
        assert replayed == 1
        # ...and the replay re-applies the app's newer edit on top.
        assert db.get("users", 1)["name"] == "Ada Lovelace"
        assert guard.logged_updates("users", 1) == []

    def test_replay_waits_while_still_disguised(self, guarded):
        db, engine = guarded
        scrub = engine.apply("BlogScrub", uid=2)
        anon = engine.apply("BlogAnon")
        guard = UpdateGuard(engine, mode="log")
        guard.update("posts", 11, {"title": "late edit"})
        reveal = engine.reveal(anon.disguise_id)
        # post 11 is still covered by the scrub: replay defers
        assert guard.replay_after_reveal(reveal) == 0
        assert guard.logged_updates("posts", 11)
        reveal2 = engine.reveal(scrub.disguise_id)
        assert guard.replay_after_reveal(reveal2) == 1
        assert db.get("posts", 11)["title"] == "late edit"

    def test_delete_still_rejected_in_log_mode(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="log")
        with pytest.raises(DisguiseError):
            guard.delete("posts", 11)


class TestAllowMode:
    def test_everything_passes(self, guarded):
        db, engine = guarded
        engine.apply("BlogScrub", uid=2)
        guard = UpdateGuard(engine, mode="allow")
        guard.update("posts", 11, {"title": "yolo"})
        assert db.get("posts", 11)["title"] == "yolo"
