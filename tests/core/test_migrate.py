"""Tests for migrating disguised state across schema changes (§7)."""

import pytest

from repro import Disguiser
from repro.errors import SpecError
from repro.spec.transform import Decorrelate, Modify
from repro.storage.evolve import AddColumn, DropColumn, RenameColumn, RenameTable
from repro.storage.schema import Column
from repro.storage.types import ColumnType as T

from tests.conftest import blog_anon_spec, blog_delete_spec, blog_scrub_spec


@pytest.fixture
def scrubbed(blog_db):
    """Bea scrubbed; returns (db, engine, disguise id)."""
    engine = Disguiser(blog_db)
    engine.register(blog_scrub_spec())
    report = engine.apply("BlogScrub", uid=2)
    return blog_db, engine, report.disguise_id


class TestVaultMigration:
    def test_add_column_keeps_disguise_reversible(self, scrubbed):
        db, engine, did = scrubbed
        report = engine.evolve_schema(
            AddColumn("users", Column("bio", T.TEXT, default="(none)"))
        )
        assert report.entries_rewritten >= 1  # Bea's REMOVE payload updated
        engine.reveal(did, check_integrity=True)
        bea = db.get("users", 2)
        assert bea["name"] == "Bea" and bea["bio"] == "(none)"

    def test_add_not_null_column_still_reinserts(self, scrubbed):
        db, engine, did = scrubbed
        engine.evolve_schema(
            AddColumn("users", Column("karma", T.INTEGER, nullable=False, default=0))
        )
        engine.reveal(did, check_integrity=True)
        assert db.get("users", 2)["karma"] == 0

    def test_rename_column_rewrites_entries_and_specs(self, scrubbed):
        db, engine, did = scrubbed
        report = engine.evolve_schema(RenameColumn("posts", "user_id", "author_id"))
        assert "BlogScrub" in report.revised_specs
        spec = engine.spec("BlogScrub")
        decorrelate = next(
            t for t in spec.table_disguise("posts").transformations
            if isinstance(t, Decorrelate)
        )
        assert decorrelate.foreign_key == "author_id"
        engine.reveal(did, check_integrity=True)
        assert db.count("posts", "author_id = 2") == 2

    def test_rename_table_rewrites_everything(self, scrubbed):
        db, engine, did = scrubbed
        report = engine.evolve_schema(RenameTable("users", "accounts"))
        assert report.entries_rewritten >= 1
        engine.reveal(did, check_integrity=True)
        assert db.get("accounts", 2)["name"] == "Bea"
        assert db.count("users") if db.has_table("users") else True

    def test_drop_unrelated_column_harmless(self, scrubbed):
        db, engine, did = scrubbed
        report = engine.evolve_schema(DropColumn("posts", "score"))
        assert report.entries_invalidated == 0
        engine.reveal(did, check_integrity=True)
        assert db.get("users", 2) is not None

    def test_drop_column_invalidates_modify_entries(self, blog_db):
        engine = Disguiser(blog_db)
        engine.register(blog_anon_spec())
        report = engine.apply("BlogAnon")  # modifies users.name and email
        migration = engine.evolve_schema(DropColumn("users", "email"))
        # email-restoring entries are gone; that part is now permanent
        assert migration.entries_invalidated == 3
        assert "BlogAnon" in migration.unmigratable_specs
        reveal = engine.reveal(report.disguise_id, check_integrity=True)
        # names restored; emails unrecoverable (column no longer exists)
        assert blog_db.get("users", 1)["name"] == "Ada"
        assert "email" not in blog_db.get("users", 1)

    def test_apply_after_rename_uses_revised_spec(self, blog_db):
        engine = Disguiser(blog_db)
        engine.register(blog_scrub_spec())
        engine.evolve_schema(RenameColumn("posts", "user_id", "author_id"))
        report = engine.apply("BlogScrub", uid=2, check_integrity=True)
        assert report.rows_decorrelated == 4  # 2 posts + 2 comments
        engine.reveal(report.disguise_id, check_integrity=True)
        assert blog_db.count("posts", "author_id = 2") == 2


class TestSpecMigrationUnit:
    def test_rename_rewrites_predicates(self):
        from repro.core.migrate import migrate_spec

        spec = blog_delete_spec()
        migrated = migrate_spec(spec, RenameColumn("posts", "user_id", "author_id"))
        posts = migrated.table_disguise("posts")
        assert "author_id" in str(posts.transformations[0].pred)
        # other tables untouched
        assert "follower_id" in str(
            migrated.table_disguise("follows").transformations[0].pred
        )

    def test_rename_table_renames_disguise_target(self):
        from repro.core.migrate import migrate_spec

        spec = blog_scrub_spec()
        migrated = migrate_spec(spec, RenameTable("users", "accounts"))
        assert migrated.table_disguise("accounts") is not None
        assert migrated.table_disguise("users") is None

    def test_drop_of_referenced_column_raises(self):
        from repro.core.migrate import migrate_spec

        spec = blog_scrub_spec()
        with pytest.raises(SpecError):
            migrate_spec(spec, DropColumn("users", "email"))

    def test_drop_of_unreferenced_column_passes(self):
        from repro.core.migrate import migrate_spec

        spec = blog_delete_spec()
        assert migrate_spec(spec, DropColumn("users", "email")) is spec

    def test_rename_updates_owner_column_and_generators(self):
        from repro.core.migrate import migrate_spec

        spec = blog_anon_spec()
        migrated = migrate_spec(spec, RenameColumn("users", "name", "full_name"))
        users = migrated.table_disguise("users")
        assert "full_name" in users.generate_placeholder
        modify = next(
            t for t in users.transformations
            if isinstance(t, Modify) and t.column == "full_name"
        )
        assert modify.label == "redact"
