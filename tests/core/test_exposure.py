"""Tests for the breach-exposure metric (paper §1-§2 motivation)."""

import pytest

from repro import Disguiser
from repro.core.exposure import measure_exposure

from tests.conftest import blog_anon_spec, blog_delete_spec, blog_scrub_spec


class TestBlogExposure:
    def test_baseline(self, blog_db):
        report = measure_exposure(blog_db, "users")
        assert report.identifiable_users == 3
        assert report.pii_cells == 6  # name + email per user
        # 4 posts + 4 comments + 2x2 follows references
        assert report.linkable_contributions == 4 + 4 + 4

    def test_scrub_lowers_exposure(self, blog_db):
        engine = Disguiser(blog_db)
        before = measure_exposure(blog_db, "users")
        engine.apply(blog_scrub_spec(), uid=2)
        after = measure_exposure(blog_db, "users")
        assert after.identifiable_users == before.identifiable_users - 1
        assert after.pii_cells < before.pii_cells
        assert after.linkable_contributions < before.linkable_contributions
        # placeholders don't count as identifiable
        assert blog_db.count("users") > 2

    def test_hard_delete_lowers_exposure(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_delete_spec(), uid=2)
        report = measure_exposure(blog_db, "users")
        assert report.identifiable_users == 2

    def test_global_anonymization_floors_pii(self, blog_db):
        engine = Disguiser(blog_db)
        engine.apply(blog_anon_spec())
        report = measure_exposure(blog_db, "users")
        assert report.pii_cells == 0           # names redacted, emails nulled
        assert report.linkable_contributions <= 8  # posts decorrelated

    def test_reveal_restores_exposure(self, blog_db):
        engine = Disguiser(blog_db)
        before = measure_exposure(blog_db, "users")
        report = engine.apply(blog_scrub_spec(), uid=2)
        engine.reveal(report.disguise_id)
        assert measure_exposure(blog_db, "users") == before


class TestDecayDrivesExposureDown:
    def test_monotone_decrease_through_stages(self, blog_db):
        """The §2 story quantified: each decay stage strictly reduces what a
        breach would reveal."""
        from repro import DecayPolicy, DecayStage, PolicyScheduler, SimClock

        engine = Disguiser(blog_db)
        engine.register(blog_scrub_spec())
        engine.register(blog_delete_spec())
        clock = SimClock(0.0)
        scheduler = PolicyScheduler(engine, clock)
        # staggered last-activity so the stages hit users in waves
        activity = {1: 0.0, 2: 60.0, 3: 120.0}
        scheduler.add(
            DecayPolicy(
                "decay",
                stages=(
                    DecayStage(age=100.0, spec_name="BlogScrub"),
                    DecayStage(age=200.0, spec_name="BlogDelete"),
                ),
                activity=lambda db: activity,
            )
        )
        exposures = [measure_exposure(blog_db, "users").total]
        clock.advance(150)   # t=150: only user 1 idle > 100
        scheduler.tick()
        exposures.append(measure_exposure(blog_db, "users").total)
        clock.advance(100)   # t=250: users 2,3 hit stage 1; user 1 stage 2
        scheduler.tick()
        exposures.append(measure_exposure(blog_db, "users").total)
        assert exposures[0] > exposures[1] > exposures[2]
        assert exposures[2] == 0  # no identifiable account remains
        assert blog_db.check_integrity() == []


class TestHotcrpExposure:
    def test_confanon_eliminates_identifiability(self, mini_hotcrp):
        db, engine = mini_hotcrp
        before = measure_exposure(db, "ContactInfo")
        assert before.identifiable_users == 40
        assert before.pii_cells > 0
        engine.apply("HotCRP-ConfAnon")
        after = measure_exposure(db, "ContactInfo")
        assert after.pii_cells == 0
        # accounts still exist (anonymized) but nothing sensitive links out
        # beyond structural references like preferences that were removed
        assert after.linkable_contributions < before.linkable_contributions
