"""End-to-end harness properties: determinism, oracle coverage, and the
re-introduced historical bug (PR 2's pre-fix torn-frame reopen).

These are the acceptance tests for the DST subsystem itself. The wider
seed sweeps (200 x 300 steps) run in the nightly CI lane via
``repro simtest``; here we keep runs small enough for tier-1.
"""

import pytest

from repro.simtest import (
    PlannedEvent,
    SimConfig,
    SimPlan,
    build_plan,
    find_wal_windows,
    run_plan,
    run_sim,
    shrink_failure,
)
from repro.storage.wal import WriteAheadLog


class TestDeterminism:
    def test_same_seed_gives_byte_identical_trace_25_seeds(self):
        # The core DST promise: a seed fully determines the run. The 25
        # seeds alternate app and topology so both engines are covered.
        for seed in range(25):
            config = SimConfig(
                seed=seed,
                steps=80,
                workers=2,
                app="lobsters" if seed % 2 == 0 else "hotcrp",
                shards=3 if seed % 5 == 0 else 0,
                crashes=1 if seed % 3 == 0 else 0,
            )
            first = run_sim(config)
            second = run_sim(config)
            assert "\n".join(first.trace) == "\n".join(second.trace), (
                f"seed {seed} diverged between two identical runs"
            )
            assert [str(v) for v in first.violations] == [
                str(v) for v in second.violations
            ]

    def test_different_seeds_give_different_traces(self):
        runs = {
            "\n".join(run_sim(SimConfig(seed=seed, steps=80)).trace)
            for seed in range(4)
        }
        assert len(runs) == 4


class TestOracleSweeps:
    """Small in-suite sweeps; the 200-seed version is the nightly lane."""

    @pytest.mark.parametrize("seed", range(6))
    def test_monolith_with_crashes_upholds_invariants(self, seed):
        result = run_sim(SimConfig(seed=seed, steps=150, crashes=1))
        assert result.ok, result.report()
        assert result.stats["epochs"] >= 2  # the crash actually fired

    @pytest.mark.parametrize("seed", range(4))
    def test_sharded_with_crashes_upholds_invariants(self, seed):
        result = run_sim(
            SimConfig(seed=seed, steps=150, shards=3, workers=3, crashes=1)
        )
        assert result.ok, result.report()
        assert result.stats["epochs"] >= 2


class TestPortedCrashScenarios:
    """The strongest ad-hoc crash tests, re-expressed as harness seeds.

    The originals stay in tier-1 (tests/storage/test_crash_injection.py,
    tests/service/test_service.py, tests/shard/test_rebalance.py); these
    runs check the same windows under the simulated substrate, where the
    oracle asserts the invariant after every recovery.
    """

    def test_wal_torn_tail_window(self):
        # Port of the every-byte torn-tail loop: fault_keep_all=0 tears
        # every crash-caught append; recovery must still keep every
        # acked disguise (the oracle's durability check).
        result = run_sim(
            SimConfig(seed=11, steps=200, crashes=2, fault_keep_all=0.0)
        )
        assert result.ok, result.report()

    def test_queue_crash_ack_window(self):
        # Port of test_acked_jobs_stay_done_unacked_rerun: crash between
        # job execution and ack; the oracle tracks every ack the client
        # observed and fails if recovery forgets one (or double-runs a
        # non-idempotent disguise).
        result = run_sim(SimConfig(seed=3, steps=220, crashes=2, workers=3))
        assert result.ok, result.report()
        assert result.stats["jobs_acked"] > 0

    def test_shard_recovery_window(self):
        # Port of the rebalance/recovery injection: per-shard WALs replay
        # into a fresh partition after the cut; the oracle checks the
        # shard union equals the monolith model.
        result = run_sim(
            SimConfig(seed=23, steps=250, shards=3, workers=3, crashes=3)
        )
        assert result.ok, result.report()


class TornTailWal(WriteAheadLog):
    """PR 2's pre-fix WAL: reopening after a crash keeps torn trailing
    bytes in the file instead of truncating them away, so the next
    append seals a frame over garbage."""

    def _trim_crash_debris(self, blob, sealed_end):
        pass


class TestHistoricalBugCatch:
    """Acceptance: the harness catches the re-introduced PR 2 bug and
    shrinks the failing plan to a handful of events."""

    SEED = 7

    def torn_plan(self, config):
        # The torn-tail window (durable WAL prefix + un-fsynced appended
        # bytes) is only ~2 steps wide per run under batch fsync, so a
        # random sweep rarely lands a crash inside it. Determinism lets
        # us aim: probe a no-crash run for the window, then inject the
        # power cut exactly there — the pre-crash world replays
        # identically.
        base = build_plan(config)
        windows = find_wal_windows(config, base)
        assert windows, "no torn-tail window in this run"
        cut = windows[0]
        events = [event for event in base.events if event.at <= cut]
        events.append(PlannedEvent(cut, "crash", (("checkpoint", False),)))
        events.sort(key=lambda event: event.at)
        return SimPlan(steps=cut + 150, events=tuple(events))

    def config(self, wal_cls=None):
        return SimConfig(
            seed=self.SEED,
            steps=300,
            crashes=0,
            workers=2,
            fault_keep_all=0.0,  # every crash-caught append tears
            wal_cls=wal_cls,
        )

    def test_fixed_wal_survives_the_torn_tail(self):
        config = self.config()
        result = run_plan(config, self.torn_plan(config))
        assert result.ok, result.report()

    def test_buggy_wal_is_caught_and_shrinks_small(self):
        config = self.config(wal_cls=TornTailWal)
        plan = self.torn_plan(self.config())
        result = run_plan(config, plan)
        assert not result.ok, "re-introduced torn-tail bug went undetected"
        assert any(v.check == "durability" for v in result.violations)

        shrunk = shrink_failure(config, plan, max_probes=60)
        assert shrunk is not None
        small, small_result = shrunk
        assert not small_result.ok
        # The acceptance bar: a minimal reproduction of <= 20 plan
        # events (it lands well under — a few applies plus the crash).
        assert len(small.events) <= 20
        assert len(small.events) < len(plan.events)
        assert any(event.kind == "crash" for event in small.events)
        # And the shrunken plan replays verbatim.
        again = run_plan(config, small)
        assert [str(v) for v in again.violations] == [
            str(v) for v in small_result.violations
        ]
