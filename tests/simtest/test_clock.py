"""The clock seam: production delegate, virtual clock, PowerCut."""

import random
import threading

from repro.simtest.clock import (
    SIM_WALL_BASE,
    SYSTEM_CLOCK,
    PowerCut,
    SystemClock,
    VirtualClock,
    resolve_clock,
)
from repro.simtest.sched import StepScheduler


class TestResolveClock:
    def test_none_resolves_to_the_shared_system_clock(self):
        assert resolve_clock(None) is SYSTEM_CLOCK

    def test_explicit_clock_passes_through(self):
        sched = StepScheduler(random.Random(0))
        clock = VirtualClock(sched)
        assert resolve_clock(clock) is clock


class TestSystemClock:
    def test_time_and_monotonic_advance(self):
        clock = SystemClock()
        t0 = clock.time()
        m0 = clock.monotonic()
        clock.sleep(0.01)
        assert clock.time() >= t0
        assert clock.monotonic() > m0

    def test_tick_is_a_noop(self):
        SystemClock().tick("wal.append", "anything")

    def test_spawn_returns_joinable_thread(self):
        ran = []
        handle = SystemClock().spawn(lambda: ran.append(1), name="t")
        handle.join(timeout=5.0)
        assert ran == [1]
        assert not handle.is_alive()

    def test_wait_notify_round_trip(self):
        clock = SystemClock()
        cond = threading.Condition()
        with cond:
            assert clock.wait(cond, timeout=0.01) is False


class TestVirtualClock:
    def test_reads_scheduler_virtual_time(self):
        sched = StepScheduler(random.Random(0), now=12.5)
        clock = VirtualClock(sched)
        assert clock.monotonic() == 12.5
        assert clock.time() == SIM_WALL_BASE + 12.5

    def test_driver_sleep_advances_virtual_time_only(self):
        sched = StepScheduler(random.Random(0))
        clock = VirtualClock(sched)
        clock.sleep(3.0)
        assert clock.monotonic() == 3.0
        assert sched.steps == 0  # no threads to pump


class TestPowerCut:
    def test_is_a_base_exception_not_exception(self):
        # The executor's broad `except Exception` must not swallow it.
        assert issubclass(PowerCut, BaseException)
        assert not issubclass(PowerCut, Exception)

    def test_dead_scheduler_raises_on_tick(self):
        sched = StepScheduler(random.Random(0))
        clock = VirtualClock(sched)
        seen = []

        def worker():
            try:
                while True:
                    clock.tick("loop")
            except PowerCut as exc:
                seen.append(str(exc))
                raise

        handle = clock.spawn(worker, name="w")
        assert sched.step()
        sched.crash()
        assert seen == ["loop"]
        assert not handle.is_alive()
