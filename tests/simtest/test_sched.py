"""The cooperative step scheduler, plans, and the shrinker."""

import random
import threading

import pytest

from repro.simtest.sched import (
    PlannedEvent,
    SchedulerStuck,
    SimPlan,
    StepScheduler,
    shrink,
)


def make(seed=0, now=0.0):
    return StepScheduler(random.Random(seed), now=now)


class TestStepping:
    def test_one_step_runs_one_thread_quantum(self):
        sched = make()
        log = []

        def worker(name):
            def run():
                for index in range(3):
                    log.append(f"{name}{index}")
                    sched.tick("loop")

            return run

        sched.spawn(worker("a"), name="a")
        sched.spawn(worker("b"), name="b")
        sched.step()
        assert len(log) == 1
        for _ in range(20):
            if not sched.step():
                break
        assert sorted(log) == ["a0", "a1", "a2", "b0", "b1", "b2"]

    def test_interleaving_is_seed_deterministic(self):
        def run(seed):
            sched = make(seed)
            order = []

            def worker(name):
                def run():
                    for _ in range(4):
                        order.append(name)
                        sched.tick("loop")

                return run

            for name in ("a", "b", "c"):
                sched.spawn(worker(name), name=name)
            while sched.step():
                pass
            return order

        assert run(7) == run(7)
        # Different seeds explore different interleavings (5 draws is
        # plenty to find one that differs).
        assert any(run(7) != run(other) for other in range(5))

    def test_sleep_parks_until_virtual_deadline(self):
        sched = make()
        woke = []

        def sleeper():
            sched.sleep(10.0)
            woke.append(sched.now)

        sched.spawn(sleeper, name="s")
        sched.step()  # runs to the sleep
        assert woke == []
        sched.step()  # nothing runnable: time jumps to the deadline
        assert sched.now == 10.0
        sched.step()
        assert woke == [10.0]

    def test_wait_notify_keeps_condition_balanced(self):
        sched = make()
        cond = threading.Condition()
        state = {"ready": False, "seen": False}

        def waiter():
            with cond:
                while not state["ready"]:
                    sched.wait_on(cond, timeout=None)
                state["seen"] = True

        def notifier():
            sched.tick("pre")
            with cond:
                state["ready"] = True
                sched.notify_all(cond)

        sched.spawn(waiter, name="w")
        sched.spawn(notifier, name="n")
        for _ in range(20):
            if not sched.step():
                break
        assert state["seen"] is True

    def test_deadlock_is_reported_not_hung(self):
        sched = make()
        cond = threading.Condition()

        def waiter():
            with cond:
                sched.wait_on(cond, timeout=None)

        handle = sched.spawn(waiter, name="w")
        sched.step()
        assert sched.step() is False  # blocked forever, no deadline
        with pytest.raises(SchedulerStuck):
            sched.join_thread(handle._sim)

    def test_crash_unwinds_parked_threads(self):
        sched = make()
        unwound = []

        def worker():
            try:
                while True:
                    sched.tick("loop")
            finally:
                unwound.append(True)

        sched.spawn(worker, name="w")
        sched.step()
        sched.crash()
        assert unwound == [True]
        assert sched.dead

    def test_thread_error_recorded_in_trace(self):
        sched = make()

        def bad():
            raise ValueError("boom")

        sched.spawn(bad, name="bad")
        sched.step()
        assert any("bad died: ValueError: boom" in line for line in sched.trace)


class TestSimPlan:
    def test_truncated_drops_late_events(self):
        plan = SimPlan(
            steps=100,
            events=(
                PlannedEvent(10, "apply"),
                PlannedEvent(50, "crash"),
                PlannedEvent(90, "reveal"),
            ),
        )
        cut = plan.truncated(50)
        assert cut.steps == 50
        assert [e.kind for e in cut.events] == ["apply", "crash"]

    def test_without_removes_by_position(self):
        plan = SimPlan(
            steps=10, events=(PlannedEvent(1, "a"), PlannedEvent(2, "b"))
        )
        assert [e.kind for e in plan.without(0).events] == ["b"]
        assert plan.without(5).events == plan.events

    def test_event_arg_lookup(self):
        event = PlannedEvent(1, "apply", (("pick", 9), ("spec", 2)))
        assert event.arg("pick") == 9
        assert event.arg("nope", "default") == "default"


class TestShrink:
    def test_shrinks_to_the_culprit_event(self):
        # Failure := "a crash event at step >= 20 is present".
        plan = SimPlan(
            steps=200,
            events=tuple(
                PlannedEvent(at, "apply", (("pick", at),)) for at in range(1, 40)
            )
            + (PlannedEvent(60, "crash"),),
        )

        def still_fails(candidate):
            return any(
                e.kind == "crash" and e.at >= 20 for e in candidate.events
            ) and candidate.steps >= 60

        small = shrink(plan, still_fails)
        assert small.steps == 60
        assert [e.kind for e in small.events] == ["crash"]

    def test_returns_original_when_nothing_smaller_fails(self):
        plan = SimPlan(steps=5, events=(PlannedEvent(1, "apply"),))
        small = shrink(plan, lambda candidate: candidate == plan)
        assert small == plan

    def test_respects_probe_budget(self):
        plan = SimPlan(
            steps=1000,
            events=tuple(PlannedEvent(at, "apply") for at in range(1, 200)),
        )
        probes = []

        def still_fails(candidate):
            probes.append(1)
            return True

        shrink(plan, still_fails, max_probes=10)
        assert len(probes) <= 11
