"""The crash-consistency filesystem model, exercised directly."""

import random

import pytest

from repro.simtest.clock import PowerCut
from repro.simtest.simfs import FaultPlan, SimFs


def fs_with(p_keep_all=0.5, p_meta_survive=0.5, eio_rate=0.0, seed=0):
    return SimFs(
        FaultPlan(
            random.Random(seed),
            p_keep_all=p_keep_all,
            p_meta_survive=p_meta_survive,
            eio_rate=eio_rate,
        )
    )


def write(fs, name, data, sync=True):
    with fs.path(name).open("wb") as handle:
        handle.write(data)
        if sync:
            handle.sim_fsync()


class TestPathSurface:
    def test_path_algebra(self):
        fs = fs_with()
        p = fs.path("/a/b/c.wal")
        assert str(p) == "/a/b/c.wal"
        assert p.name == "c.wal"
        assert p.stem == "c"
        assert p.suffix == ".wal"
        assert str(p.parent) == "/a/b"
        assert str(p.with_name("d.txt")) == "/a/b/d.txt"
        assert str(p.with_suffix(".jobs")) == "/a/b/c.jobs"
        assert str(p / "x") == "/a/b/c.wal/x"

    def test_read_write_round_trip(self):
        fs = fs_with()
        write(fs, "/f", b"hello")
        assert fs.path("/f").exists()
        assert fs.path("/f").read_bytes() == b"hello"
        assert fs.path("/f").read_text() == "hello"
        assert not fs.path("/g").exists()
        with pytest.raises(FileNotFoundError):
            fs.path("/g").read_bytes()

    def test_append_mode_extends(self):
        fs = fs_with()
        write(fs, "/f", b"one")
        with fs.path("/f").open("ab") as handle:
            handle.write(b"two")
        assert fs.path("/f").read_bytes() == b"onetwo"

    def test_text_iteration_by_line(self):
        fs = fs_with()
        write(fs, "/f", b"a\nb\nc")
        with fs.path("/f").open("r") as handle:
            assert list(handle) == ["a\n", "b\n", "c"]

    def test_glob_is_directory_local_and_sorted(self):
        fs = fs_with()
        fs.path("/d").mkdir()
        write(fs, "/d/b.wal", b"")
        write(fs, "/d/a.wal", b"")
        write(fs, "/d/sub.txt", b"")
        names = [p.name for p in fs.path("/d").glob("*.wal")]
        assert names == ["a.wal", "b.wal"]

    def test_mkdir_semantics(self):
        fs = fs_with()
        with pytest.raises(FileNotFoundError):
            fs.path("/x/y").mkdir()
        fs.path("/x/y").mkdir(parents=True)
        with pytest.raises(FileExistsError):
            fs.path("/x/y").mkdir()
        fs.path("/x/y").mkdir(exist_ok=True)

    def test_unmodeled_open_mode_raises(self):
        fs = fs_with()
        with pytest.raises(ValueError):
            fs.path("/f").open("x")


class TestDurability:
    def test_fsynced_data_survives_crash(self):
        fs = fs_with(p_keep_all=0.0, p_meta_survive=0.0)
        write(fs, "/f", b"durable")
        survivor = fs.crash()
        assert survivor.path("/f").read_bytes() == b"durable"

    def test_never_fsynced_file_vanishes_wholesale(self):
        # The dentry was never persisted: there is nothing to tear.
        fs = fs_with(p_keep_all=1.0, p_meta_survive=0.0)
        write(fs, "/f", b"cached only", sync=False)
        survivor = fs.crash()
        assert not survivor.path("/f").exists()

    def test_unsynced_append_survives_as_prefix(self):
        # p_keep_all=0 forces a torn write; the plan picks the cut
        # (seed 5 cuts mid-suffix: 2 of the 4 new bytes survive).
        fs = fs_with(p_keep_all=0.0, seed=5)
        write(fs, "/f", b"AAAA")
        with fs.path("/f").open("ab") as handle:
            handle.write(b"BBBB")
        content = fs.crash().path("/f").read_bytes()
        assert content == b"AAAABB"

    def test_keep_all_crash_keeps_the_whole_suffix(self):
        fs = fs_with(p_keep_all=1.0)
        write(fs, "/f", b"AAAA")
        with fs.path("/f").open("ab") as handle:
            handle.write(b"BBBB")
        assert fs.crash().path("/f").read_bytes() == b"AAAABBBB"

    def test_every_torn_byte_position_is_reachable(self):
        lengths = set()
        for seed in range(80):
            fs = fs_with(p_keep_all=0.0, seed=seed)
            write(fs, "/f", b"")
            with fs.path("/f").open("ab") as handle:
                handle.write(b"0123")
            lengths.add(len(fs.crash().path("/f").read_bytes()))
        assert lengths == {0, 1, 2, 3, 4}

    def test_truncate_to_w_mode_drops_unsynced_inode(self):
        # "w" swaps in a brand-new inode; until it is fsynced the crash
        # falls back to the old durable content — never a blend.
        fs = fs_with(p_meta_survive=1.0)
        write(fs, "/f", b"OLD-LONG-CONTENT")
        with fs.path("/f").open("wb") as handle:
            handle.write(b"NEW")
        assert fs.crash().path("/f").read_bytes() == b"OLD-LONG-CONTENT"

    def test_diverged_overwrite_is_all_or_nothing(self):
        # Overwriting below the durable watermark diverges the inode:
        # the crash keeps either the full new state or the full old one.
        for survive in (True, False):
            fs = fs_with(p_meta_survive=1.0 if survive else 0.0)
            write(fs, "/f", b"OLD-LONG-CONTENT")
            with fs.path("/f").open("rb+") as handle:
                handle.write(b"NEW")
            content = fs.crash().path("/f").read_bytes()
            expected = b"NEW-LONG-CONTENT" if survive else b"OLD-LONG-CONTENT"
            assert content == expected

    def test_replace_pending_until_dir_fsync(self):
        fs = fs_with(p_meta_survive=0.0)
        write(fs, "/old", b"x")
        write(fs, "/tmp.new", b"y")
        fs._replace("/tmp.new", "/old")
        # Cache sees the rename immediately...
        assert fs.path("/old").read_bytes() == b"y"
        # ...but without a dir fsync the crash drops it: both names
        # revert to their durable state, as if the rename never ran.
        survivor = fs.crash()
        assert survivor.path("/old").read_bytes() == b"x"
        assert survivor.path("/tmp.new").read_bytes() == b"y"

    def test_dir_fsynced_replace_is_durable(self):
        fs = fs_with(p_meta_survive=0.0)
        write(fs, "/old", b"x")
        write(fs, "/tmp.new", b"y")
        fs._replace("/tmp.new", "/old")
        fs.fsync_dir("/")
        survivor = fs.crash()
        assert survivor.path("/old").read_bytes() == b"y"
        assert not survivor.path("/tmp.new").exists()

    def test_unlink_pending_until_dir_fsync(self):
        fs = fs_with(p_meta_survive=0.0)
        write(fs, "/f", b"x")
        fs.path("/f").unlink()
        assert not fs.path("/f").exists()
        assert fs.crash().path("/f").read_bytes() == b"x"

    def test_pending_ops_survive_independently(self):
        # Two pending renames, a coin each: with enough seeds we see
        # mixed outcomes — the "reordered rename" states.
        outcomes = set()
        for seed in range(40):
            fs = fs_with(p_meta_survive=0.5, seed=seed)
            write(fs, "/a.tmp", b"A")
            write(fs, "/b.tmp", b"B")
            fs._replace("/a.tmp", "/a")
            fs._replace("/b.tmp", "/b")
            survivor = fs.crash()
            outcomes.add(
                (survivor.path("/a").exists(), survivor.path("/b").exists())
            )
        assert outcomes == {(False, False), (False, True), (True, False), (True, True)}

    def test_dead_fs_raises_powercut_on_every_op(self):
        fs = fs_with()
        write(fs, "/f", b"x")
        handle = fs.path("/f").open("ab")
        fs.crash()
        with pytest.raises(PowerCut):
            fs.path("/f").read_bytes()
        with pytest.raises(PowerCut):
            handle.write(b"y")
        with pytest.raises(PowerCut):
            fs.path("/g").open("wb")

    def test_crash_is_deterministic_per_plan_stream(self):
        def run(seed):
            fs = fs_with(p_keep_all=0.0, p_meta_survive=0.5, seed=seed)
            write(fs, "/f", b"AAAA")
            with fs.path("/f").open("ab") as handle:
                handle.write(b"BBBBBBBB")
            write(fs, "/g.tmp", b"G")
            fs._replace("/g.tmp", "/g")
            survivor = fs.crash()
            return survivor.dump()

        assert run(7) == run(7)


class TestEioStorm:
    def test_fsync_raises_eio_at_seeded_rate(self):
        fs = fs_with(eio_rate=1.0)
        with fs.path("/f").open("wb") as handle:
            handle.write(b"x")
            with pytest.raises(OSError):
                handle.sim_fsync()

    def test_zero_rate_never_raises(self):
        fs = fs_with(eio_rate=0.0)
        for index in range(50):
            write(fs, f"/f{index}", b"x")
