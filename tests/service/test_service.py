"""End-to-end service tests: stress, determinism, crash recovery, metrics.

The acceptance workload mirrors the paper's service framing: many users'
deletion (GDPR) and return (reveal) requests land on one Lobsters database
at once, and the service must keep referential integrity, lose no job, and
leave each user's data exactly as a serial execution would.
"""

import threading

import pytest

from repro.apps.lobsters import (
    LobstersPopulation,
    check_invariants,
    generate_lobsters,
    lobsters_gdpr,
)
from repro.core.engine import Disguiser
from repro.core.scheduler import ExpirationPolicy, PolicyScheduler, SimClock
from repro.errors import DisguiseError
from repro.service import DisguiseService
from repro.service.locks import LockHook, LockManager
from repro.storage.persist import save_database
from repro.storage.wal import WalDatabase, recover_database

from tests.conftest import blog_scrub_spec, make_blog_db


def app_rows(db):
    """Application-table contents, order-independent (system tables excluded)."""
    return {
        table: sorted(
            (tuple(sorted(row.items())) for row in db.select(table)), key=str
        )
        for table in db.table_names
        if not table.startswith("_")
    }


def blog_service(tmp_path, workers=2, **kw):
    engine = Disguiser(make_blog_db(), seed=1)
    engine.register(blog_scrub_spec())
    kw.setdefault("queue_fsync", False)
    return DisguiseService(engine, tmp_path / "q.jobs", workers=workers, **kw)


class TestServiceBasics:
    def test_apply_and_reveal_jobs(self, tmp_path):
        service = blog_service(tmp_path)
        baseline = app_rows(service.engine.db)
        with service:
            job = service.submit_apply("BlogScrub", uid=2)
            done = service.wait_for(job, timeout=30.0)
            assert done["state"] == "done"
            assert service.engine.db.get("users", 2) is None
            reveal = service.submit_reveal(done["result"]["did"])
            assert service.wait_for(reveal, timeout=30.0)["state"] == "done"
        assert app_rows(service.engine.db) == baseline
        assert service.engine.db.check_integrity() == []

    def test_submit_unregistered_spec_fails_fast(self, tmp_path):
        service = blog_service(tmp_path)
        with service:
            with pytest.raises(DisguiseError):
                service.submit_apply("NoSuchSpec", uid=1)
        assert service.queue.depth() == 0

    def test_failing_job_retries_then_dead_letters(self, tmp_path):
        service = blog_service(
            tmp_path, max_attempts=2, backoff_base=0.0
        )
        with service:
            job = service.submit_reveal(999)  # no such disguise: always fails
            described = service.wait_for(job, timeout=30.0)
        assert described["state"] == "dead"
        assert described["attempts"] == 2
        metrics = service.metrics()
        assert metrics["jobs_dead"] == 1
        assert metrics["jobs_failed"] == 2

    def test_shutdown_detaches_hook_and_leaves_engine_usable(self, tmp_path):
        service = blog_service(tmp_path)
        with service:
            service.submit_apply("BlogScrub", uid=3)
            assert service.drain(timeout=30.0)
        report = service.engine.apply("BlogScrub", uid=2)  # inline, post-service
        assert report.disguise_id > 0

    def test_metrics_shape(self, tmp_path):
        service = blog_service(tmp_path)
        with service:
            service.submit_apply("BlogScrub", uid=2)
            assert service.drain(timeout=30.0)
        metrics = service.metrics()
        assert metrics["workers"] == 2
        assert metrics["jobs_done"] == 1
        assert metrics["jobs_per_s"] > 0
        assert metrics["queue_depth"] == 0
        assert metrics["lock_acquisitions"] > 0
        assert metrics["p99_latency_s"] >= metrics["p50_latency_s"] >= 0


class TestLobstersStress:
    def test_mixed_workload_integrity_and_determinism(self, tmp_path):
        """≥200 mixed jobs on 4 workers: no loss, no violation, exact undo."""
        db = generate_lobsters(
            population=LobstersPopulation(users=50, stories=100, comments=250),
            seed=7,
        )
        uids = sorted(row["id"] for row in db.select("users"))
        baseline = app_rows(db)
        engine = Disguiser(db, seed=3)
        engine.register(lobsters_gdpr())
        service = DisguiseService(
            engine,
            tmp_path / "q.jobs",
            workers=4,
            queue_fsync=False,
            lock_timeout=120.0,
        )
        total = 0
        with service:
            for _ in range(2):
                applies = [
                    service.submit_apply("Lobsters-GDPR", uid=uid) for uid in uids
                ]
                assert service.drain(timeout=600.0)
                dids = []
                for job in applies:
                    described = service.status(job.job_id)
                    assert described["state"] == "done", described
                    dids.append(described["result"]["did"])
                reveals = [service.submit_reveal(did) for did in dids]
                assert service.drain(timeout=600.0)
                for job in reveals:
                    assert service.status(job.job_id)["state"] == "done"
                total += len(applies) + len(reveals)
        assert total >= 200
        counts = service.queue.counts()
        assert counts["done"] == total  # every job accounted for, none lost
        assert counts["dead"] == counts["pending"] == counts["running"] == 0
        assert check_invariants(db) == []
        assert db.check_integrity() == []
        # Disjoint users, apply-all then reveal-all: exact round trip.
        assert app_rows(db) == baseline


class TestCrashRecovery:
    def test_acked_jobs_stay_done_unacked_rerun(self, tmp_path):
        """Crash after WAL sync but before the queue ack: re-run is a no-op."""
        queue_path = tmp_path / "q.jobs"
        engine = Disguiser(make_blog_db(), seed=1)
        engine.register(blog_scrub_spec())
        baseline = app_rows(engine.db)
        service = DisguiseService(engine, queue_path, workers=2)
        with service:
            applies = [service.submit_apply("BlogScrub", uid=u) for u in (1, 2, 3)]
            assert service.drain(timeout=60.0)
            dids = [
                service.status(j.job_id)["result"]["did"] for j in applies
            ]
            reveals = [service.submit_reveal(did) for did in dids]
            assert service.drain(timeout=60.0)
        done_before = {
            j.job_id: service.status(j.job_id)["result"]
            for j in applies + reveals
        }

        # Crash simulation: the last journal line is the final reveal's ack;
        # dropping it re-creates "engine committed, queue ack lost".
        lines = queue_path.read_bytes().splitlines(keepends=True)
        assert b'"ev":"done"' in lines[-1]
        queue_path.write_bytes(b"".join(lines[:-1]))

        revived = DisguiseService(engine, queue_path, workers=2)
        assert revived.queue.requeued_on_recovery == 1
        # Every acked job survived the crash with its result intact.
        lost_id = next(
            j.job_id
            for j in reveals
            if revived.queue.get(j.job_id).state == "pending"
        )
        for job_id, result in done_before.items():
            if job_id != lost_id:
                described = revived.status(job_id)
                assert described["state"] == "done"
                assert described["result"] == result
        with revived:
            assert revived.drain(timeout=60.0)
        described = revived.status(lost_id)
        assert described["state"] == "done"
        # The disguise was already revealed before the crash: idempotent no-op.
        assert described["result"].get("noop") is True
        assert app_rows(engine.db) == baseline
        assert engine.db.check_integrity() == []


class TestSchedulerRouting:
    def test_policies_enqueue_and_resolve(self, tmp_path):
        activity = {1: 100.0, 2: 100.0}
        engine = Disguiser(make_blog_db(), seed=1)
        engine.register(blog_scrub_spec())
        clock = SimClock(0.0)
        service = DisguiseService(
            engine, tmp_path / "q.jobs", workers=2, queue_fsync=False
        )
        scheduler = PolicyScheduler(engine, clock, service=service)
        scheduler.add(
            ExpirationPolicy(
                "expire-idle",
                "BlogScrub",
                inactive_for=50.0,
                activity=lambda db: dict(activity),
            )
        )
        with service:
            clock.advance(200.0)  # both users idle for 100s
            actions = scheduler.tick()
            assert sorted(a.kind for a in actions) == ["enqueue-apply"] * 2
            assert scheduler.in_force("expire-idle", "BlogScrub", 1)
            assert scheduler.tick() == []  # in flight: no duplicate firing
            assert service.drain(timeout=60.0)
            assert engine.db.get("users", 1) is None

            activity[1] = 190.0  # user 1 returns (idle 10s < 50s)
            actions = scheduler.tick()
            assert [a.kind for a in actions] == ["enqueue-reveal"]
            assert actions[0].uid == 1
            assert not scheduler.in_force("expire-idle", "BlogScrub", 1)
            assert service.drain(timeout=60.0)
        assert engine.db.get("users", 1)["name"] == "Ada"
        assert engine.db.get("users", 2) is None  # still expired
        assert engine.db.check_integrity() == []

    def test_reveal_deferred_while_apply_in_flight(self, tmp_path):
        """A user returning before their apply job ran must not race it."""
        activity = {1: 100.0}
        engine = Disguiser(make_blog_db(), seed=1)
        engine.register(blog_scrub_spec())
        clock = SimClock(200.0)
        service = DisguiseService(
            engine, tmp_path / "q.jobs", workers=1, queue_fsync=False
        )
        scheduler = PolicyScheduler(engine, clock, service=service)
        scheduler.add(
            ExpirationPolicy(
                "expire-idle",
                "BlogScrub",
                inactive_for=50.0,
                activity=lambda db: dict(activity),
            )
        )
        # Workers are not started: the apply job stays queued.
        actions = scheduler.tick()
        assert [a.kind for a in actions] == ["enqueue-apply"]
        activity[1] = 199.0  # user returns while the job is still pending
        assert scheduler.tick() == []  # reveal deferred, stage still in force
        assert scheduler.in_force("expire-idle", "BlogScrub", 1)
        with service:
            assert service.drain(timeout=60.0)
            actions = scheduler.tick()  # now resolved: the reveal fires
            assert [a.kind for a in actions] == ["enqueue-reveal"]
            assert service.drain(timeout=60.0)
        assert engine.db.get("users", 1)["name"] == "Ada"


class TestConcurrencyPrimitives:
    def test_group_commit_shares_fsyncs(self, tmp_path):
        """Many threads' commits must ride fewer leader fsyncs."""
        snapshot = tmp_path / "db.jsonl"
        save_database(make_blog_db(), snapshot)
        handle = WalDatabase(snapshot, fsync="always", sync_delay=0.004)
        db, wal = handle.db, handle.wal
        db.set_lock_hook(LockHook(LockManager()))
        threads, per_thread = 8, 5
        barrier = threading.Barrier(threads)

        def worker(worker_id):
            wal.defer_sync = True  # per-thread: each committer opts in
            barrier.wait()
            for n in range(per_thread):
                db.begin()
                db.insert(
                    "follows",
                    {
                        "id": 5000 + worker_id * 100 + n,
                        "follower_id": 1,
                        "followee_id": 3,
                    },
                )
                db.commit()  # appends the unit, releases locks...
                wal.commit_barrier()  # ...then waits at the shared fsync

        pool = [
            threading.Thread(target=worker, args=(n,), daemon=True)
            for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(60.0)
        total = threads * per_thread
        assert wal.commits_appended == total
        assert 0 < wal.syncs < total  # leaders fsynced for followers
        db.set_lock_hook(None)
        handle.close()
        recovered = recover_database(snapshot)
        assert len(recovered.select("follows")) == 2 + total

    def test_query_counters_exact_under_threads(self, tmp_path):
        db = make_blog_db()
        db.set_lock_hook(LockHook(LockManager()))

        def one_round(base_id):
            db.select("posts")
            db.count("users")
            db.insert(
                "follows",
                {"id": base_id, "follower_id": 1, "followee_id": 3},
            )
            db.delete_by_pk("follows", base_id)

        db.stats.reset()
        one_round(9000)
        unit = db.stats.snapshot()
        assert unit.total > 0 and unit.statements > 0

        db.stats.reset()
        threads, per_thread = 8, 25
        barrier = threading.Barrier(threads)

        def worker(worker_id):
            barrier.wait()
            for n in range(per_thread):
                one_round(10_000 + worker_id * 1000 + n)

        pool = [
            threading.Thread(target=worker, args=(n,), daemon=True)
            for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(60.0)
        rounds = threads * per_thread
        assert db.stats.selects == unit.selects * rounds
        assert db.stats.inserts == unit.inserts * rounds
        assert db.stats.deletes == unit.deletes * rounds
        assert db.stats.statements == unit.statements * rounds
        db.set_lock_hook(None)


class TestShutdownOrdering:
    def test_shutdown_with_queued_jobs_keeps_acks_and_pending_jobs(self, tmp_path):
        """Shutdown before drain: the pool stops against a live queue.

        Regression for closing the queue before the worker join — finishing
        workers' done-acks then hit a closed journal, killing the threads
        and re-running acked jobs after restart. Now finished jobs stay
        DONE, unstarted ones stay PENDING, and a reopened service runs the
        remainder exactly once.
        """
        uids = (1, 2, 3)
        service = blog_service(tmp_path, workers=1)
        with service:
            jobs = [service.submit_apply("BlogScrub", uid=u) for u in uids]
            service.wait_for(jobs[0], timeout=30.0)
            # __exit__ shuts down with jobs still queued (the drain-timeout
            # -expired path of cmd_serve).
        counts = service.queue.counts()
        assert counts["running"] == counts["dead"] == counts["failed"] == 0
        assert counts["done"] >= 1
        assert counts["done"] + counts["pending"] == len(uids)

        revived = DisguiseService(
            service.engine, tmp_path / "q.jobs", workers=1, queue_fsync=False
        )
        with revived:
            assert revived.drain(timeout=60.0)
        for job in jobs:
            assert revived.status(job.job_id)["state"] == "done"
        # Exactly one application per user: nothing re-ran, nothing was lost.
        records = [
            r for r in service.engine.history.records() if r.name == "BlogScrub"
        ]
        assert sorted(r.uid for r in records) == sorted(uids)
        for uid in uids:
            assert service.engine.db.get("users", uid) is None
        assert service.engine.db.check_integrity() == []


class TestApplyDedupe:
    def test_apply_rerun_after_lost_ack_is_noop(self, tmp_path):
        """Crash between the WAL barrier and the queue ack must not apply
        the disguise a second time (duplicate history row, vault entries
        recorded over placeholder data)."""
        queue_path = tmp_path / "q.jobs"
        engine = Disguiser(make_blog_db(), seed=1)
        engine.register(blog_scrub_spec())
        baseline = app_rows(engine.db)
        service = DisguiseService(engine, queue_path, workers=1, queue_fsync=False)
        with service:
            job = service.submit_apply("BlogScrub", uid=2)
            done = service.wait_for(job, timeout=30.0)
        did = done["result"]["did"]
        history_rows = len(engine.history.records())
        vault_entries = len(engine.vault.entries_for(2))

        # Crash simulation: the apply committed durably, but its done-ack
        # never reached the queue journal.
        lines = queue_path.read_bytes().splitlines(keepends=True)
        assert b'"ev":"done"' in lines[-1]
        queue_path.write_bytes(b"".join(lines[:-1]))

        revived = DisguiseService(engine, queue_path, workers=1, queue_fsync=False)
        assert revived.queue.requeued_on_recovery == 1
        with revived:
            assert revived.drain(timeout=30.0)
        described = revived.status(job.job_id)
        assert described["state"] == "done"
        assert described["result"] == {"did": did, "noop": True}
        # First run's effects, and only them: one history row, no extra
        # vault entries, and the round trip still restores the baseline.
        assert len(engine.history.records()) == history_rows
        assert len(engine.vault.entries_for(2)) == vault_entries
        engine.reveal(did)
        assert app_rows(engine.db) == baseline
        assert engine.db.check_integrity() == []
