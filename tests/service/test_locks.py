"""Lock manager units: modes, FIFO fairness, deadlock detection, stress."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError, ServiceError
from repro.service.locks import MODE_S, MODE_X, LockManager, is_system_table


@pytest.fixture
def locks():
    return LockManager(default_timeout=5.0)


def start(fn):
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


class TestModes:
    def test_shared_locks_share(self, locks):
        locks.acquire("t1", "users", MODE_S)
        locks.acquire("t2", "users", MODE_S)  # must not block
        assert locks.holding("t1") == {"users": "S"}
        assert locks.holding("t2") == {"users": "S"}

    def test_exclusive_excludes_shared(self, locks):
        locks.acquire("t1", "users", MODE_X)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "users", MODE_S, timeout=0.05)
        assert locks.stats.timeouts == 1

    def test_exclusive_excludes_exclusive(self, locks):
        locks.acquire("t1", "users", MODE_X)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "users", MODE_X, timeout=0.05)

    def test_shared_excludes_exclusive(self, locks):
        locks.acquire("t1", "users", MODE_S)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "users", MODE_X, timeout=0.05)

    def test_reacquire_covered_mode_is_noop(self, locks):
        locks.acquire("t1", "users", MODE_X)
        locks.acquire("t1", "users", MODE_X)
        locks.acquire("t1", "users", MODE_S)  # X covers S
        assert locks.stats.acquisitions == 1

    def test_upgrade_when_sole_holder(self, locks):
        locks.acquire("t1", "users", MODE_S)
        locks.acquire("t1", "users", MODE_X)
        assert locks.holding("t1") == {"users": "X"}
        assert locks.stats.upgrades == 1

    def test_release_all_returns_count(self, locks):
        locks.acquire("t1", "users", MODE_S)
        locks.acquire("t1", "posts", MODE_X)
        assert locks.release_all("t1") == 2
        assert locks.release_all("t1") == 0
        assert locks.holding("t1") == {}

    def test_unknown_mode_rejected(self, locks):
        with pytest.raises(ServiceError):
            locks.acquire("t1", "users", "IX")


class TestFairness:
    def test_no_barging_readers_queue_behind_writer(self, locks):
        """S after a waiting X must queue — else writers starve."""
        order = []
        locks.acquire("t1", "users", MODE_S)

        def writer():
            locks.acquire("t2", "users", MODE_X)
            order.append("writer")
            locks.release_all("t2")

        def reader():
            locks.acquire("t3", "users", MODE_S)
            order.append("reader")
            locks.release_all("t3")

        w = start(writer)
        while locks.waiters() == 0:
            time.sleep(0.001)
        r = start(reader)  # S is compatible with the held S, but must not barge
        while locks.waiters() < 2:
            time.sleep(0.001)
        assert order == []
        locks.release_all("t1")
        w.join(5.0)
        r.join(5.0)
        assert order == ["writer", "reader"]

    def test_upgrade_goes_to_queue_front(self, locks):
        """An S holder upgrading must not queue behind new arrivals."""
        order = []
        locks.acquire("t1", "users", MODE_S)
        locks.acquire("t2", "users", MODE_S)

        def upgrader():
            locks.acquire("t1", "users", MODE_X)  # waits for t2 only
            order.append("upgrade")
            locks.release_all("t1")

        def newcomer():
            locks.acquire("t3", "users", MODE_X)
            order.append("newcomer")
            locks.release_all("t3")

        n = start(newcomer)
        while locks.waiters() == 0:
            time.sleep(0.001)
        u = start(upgrader)
        while locks.waiters() < 2:
            time.sleep(0.001)
        locks.release_all("t2")
        u.join(5.0)
        n.join(5.0)
        assert order == ["upgrade", "newcomer"]


class TestDeadlock:
    def test_two_party_cycle_detected(self, locks):
        locks.acquire("t1", "a", MODE_X)
        locks.acquire("t2", "b", MODE_X)
        blocked = threading.Event()

        def t1_wants_b():
            blocked.set()
            try:
                locks.acquire("t1", "b", MODE_X)
            except (DeadlockError, LockTimeoutError):
                pass
            finally:
                locks.release_all("t1")

        thread = start(t1_wants_b)
        blocked.wait(5.0)
        while locks.waiters() == 0:
            time.sleep(0.001)
        # t2 -> a would close the cycle t2 -> t1 -> t2; t2 is the victim.
        with pytest.raises(DeadlockError) as excinfo:
            locks.acquire("t2", "a", MODE_X)
        assert set(excinfo.value.cycle) >= {"t1", "t2"}
        assert locks.stats.deadlocks == 1
        locks.release_all("t2")
        thread.join(5.0)

    def test_victim_releases_and_others_proceed(self, locks):
        locks.acquire("t1", "a", MODE_X)
        locks.acquire("t2", "b", MODE_X)
        done = []

        def t1_wants_b():
            locks.acquire("t1", "b", MODE_X, timeout=5.0)
            done.append("t1")
            locks.release_all("t1")

        thread = start(t1_wants_b)
        while locks.waiters() == 0:
            time.sleep(0.001)
        with pytest.raises(DeadlockError):
            locks.acquire("t2", "a", MODE_X)
        # The victim aborts: release its locks and t1 must complete.
        locks.release_all("t2")
        thread.join(5.0)
        assert done == ["t1"]

    def test_three_party_cycle(self, locks):
        locks.acquire("t1", "a", MODE_X)
        locks.acquire("t2", "b", MODE_X)
        locks.acquire("t3", "c", MODE_X)
        threads = [
            start(lambda: self._try(locks, "t1", "b")),
            start(lambda: self._try(locks, "t2", "c")),
        ]
        while locks.waiters() < 2:
            time.sleep(0.001)
        with pytest.raises(DeadlockError) as excinfo:
            locks.acquire("t3", "a", MODE_X)
        assert set(excinfo.value.cycle) == {"t1", "t2", "t3"}
        for txn in ("t1", "t2", "t3"):
            locks.release_all(txn)
        for thread in threads:
            thread.join(5.0)

    @staticmethod
    def _try(locks, txn, table):
        try:
            locks.acquire(txn, table, MODE_X, timeout=5.0)
        except (DeadlockError, LockTimeoutError):
            pass
        finally:
            locks.release_all(txn)


class TestStress:
    def test_contended_read_modify_write_is_serialized(self, locks):
        """N threads × M unlocked-unsafe increments; X locks keep it exact."""
        threads, iterations = 8, 50
        cell = {"value": 0}
        barrier = threading.Barrier(threads)

        def worker(worker_id):
            barrier.wait()
            for i in range(iterations):
                txn = f"w{worker_id}i{i}"
                locks.acquire(txn, "counter", MODE_X)
                current = cell["value"]
                if i % 7 == 0:
                    time.sleep(0)  # encourage interleaving
                cell["value"] = current + 1
                locks.release_all(txn)

        pool = [
            threading.Thread(target=worker, args=(n,), daemon=True)
            for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(30.0)
        assert cell["value"] == threads * iterations
        assert locks.stats.acquisitions == threads * iterations
        assert locks.waiters() == 0

    def test_opposite_order_acquisition_always_resolves(self, locks):
        """Deadlock-prone workload: every victim retries and all finish."""
        finished = []
        barrier = threading.Barrier(6)

        def worker(worker_id):
            first, second = ("a", "b") if worker_id % 2 else ("b", "a")
            barrier.wait()
            for i in range(10):
                txn = f"w{worker_id}i{i}"
                while True:
                    try:
                        locks.acquire(txn, first, MODE_X, timeout=10.0)
                        locks.acquire(txn, second, MODE_X, timeout=10.0)
                        break
                    except DeadlockError:
                        locks.release_all(txn)  # roll back and retry
                locks.release_all(txn)
            finished.append(worker_id)

        pool = [
            threading.Thread(target=worker, args=(n,), daemon=True)
            for n in range(6)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(60.0)
        assert sorted(finished) == list(range(6))
        assert locks.waiters() == 0


def test_system_table_classification():
    assert is_system_table("_disguise_history")
    assert is_system_table("_vault")
    assert not is_system_table("users")


class TestInterruptedGrant:
    def test_granted_then_interrupted_waiter_releases_the_lock(self, locks):
        """A BaseException landing after the grant but before the waiter
        observes it must undo the grant — an unpinned thread has no later
        release_all, so a leaked holders entry blocks writers forever."""
        locks.acquire("A", "users", MODE_X)
        interrupted = threading.Event()
        real_wait = locks._mu.wait

        def wait_then_interrupt(timeout=None):
            real_wait(timeout)
            # Woken by the grant: holders already lists B, the waiter is
            # dequeued, but acquire() has not yet seen granted=True. A
            # KeyboardInterrupt here is the leak window.
            if "B" in locks._tables["users"].holders:
                raise KeyboardInterrupt

        locks._mu.wait = wait_then_interrupt

        def blocked():
            try:
                locks.acquire("B", "users", MODE_X, timeout=10.0)
            except KeyboardInterrupt:
                interrupted.set()

        thread = start(blocked)
        time.sleep(0.05)  # let B queue behind A
        locks.release_all("A")  # grants B while B sits in wait()
        thread.join(5.0)
        del locks._mu.wait
        assert interrupted.is_set()
        assert locks.holding("B") == {}
        # The undone grant is visible: a new writer acquires immediately.
        locks.acquire("C", "users", MODE_X, timeout=0.5)

    def test_interrupted_upgrade_falls_back_to_shared(self, locks):
        """An interrupted granted upgrade keeps the S it held before."""
        locks.acquire("A", "users", MODE_S)
        locks.acquire("B", "users", MODE_S)
        interrupted = threading.Event()
        real_wait = locks._mu.wait

        def wait_then_interrupt(timeout=None):
            real_wait(timeout)
            if locks._tables["users"].holders.get("B") == MODE_X:
                raise KeyboardInterrupt

        locks._mu.wait = wait_then_interrupt

        def upgrading():
            try:
                locks.acquire("B", "users", MODE_X, timeout=10.0)
            except KeyboardInterrupt:
                interrupted.set()

        thread = start(upgrading)
        time.sleep(0.05)
        locks.release_all("A")  # B's upgrade is granted while it waits
        thread.join(5.0)
        del locks._mu.wait
        assert interrupted.is_set()
        assert locks.holding("B") == {"users": MODE_S}
        # X is refused to others (B still shares), S is compatible.
        with pytest.raises(LockTimeoutError):
            locks.acquire("C", "users", MODE_X, timeout=0.1)
        locks.acquire("C", "users", MODE_S, timeout=0.5)
