"""Durable job queue: lifecycle, retry/backoff, recovery, corruption."""

import threading
import time

import pytest

from repro.errors import JobError, QueueCorruptionError
from repro.service.queue import DEAD, DONE, PENDING, RUNNING, JobQueue


@pytest.fixture
def path(tmp_path):
    return tmp_path / "queue.jobs"


def make_queue(path, **kw):
    kw.setdefault("fsync", False)  # the tests that care opt back in
    return JobQueue(path, **kw)


class TestLifecycle:
    def test_submit_claim_complete(self, path):
        queue = make_queue(path)
        job = queue.submit("apply", {"spec": "Scrub", "uid": 7})
        assert job.state == PENDING and job.job_id == 1
        assert queue.depth() == 1

        claimed = queue.claim(timeout=0)
        assert claimed is job
        assert claimed.state == RUNNING and claimed.attempts == 1

        queue.complete(claimed, {"did": 42})
        assert job.state == DONE and job.result == {"did": 42}
        assert queue.depth() == 0
        assert queue.counts()[DONE] == 1

    def test_claims_are_fifo(self, path):
        queue = make_queue(path)
        ids = [queue.submit("apply", {"n": n}).job_id for n in range(5)]
        claimed = [queue.claim(timeout=0).job_id for _ in range(5)]
        assert claimed == ids

    def test_claim_empty_returns_none(self, path):
        queue = make_queue(path)
        assert queue.claim(timeout=0) is None

    def test_claim_blocks_until_submit(self, path):
        queue = make_queue(path)
        got = []

        def consumer():
            got.append(queue.claim(timeout=5.0))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.02)
        job = queue.submit("apply", {})
        thread.join(5.0)
        assert got == [job]

    def test_submit_after_close_raises(self, path):
        queue = make_queue(path)
        queue.close()
        with pytest.raises(JobError):
            queue.submit("apply", {})

    def test_close_wakes_blocked_claim(self, path):
        queue = make_queue(path)
        got = ["sentinel"]

        def consumer():
            got[0] = queue.claim(timeout=10.0)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(5.0)
        assert got[0] is None

    def test_wait_idle(self, path):
        queue = make_queue(path)
        assert queue.wait_idle(timeout=0.01)
        job = queue.submit("apply", {})
        assert not queue.wait_idle(timeout=0.01)
        queue.claim(timeout=0)
        queue.complete(job, None)
        assert queue.wait_idle(timeout=1.0)


class TestRetry:
    def test_fail_requeues_with_backoff(self, path):
        queue = make_queue(path, max_attempts=3, backoff_base=0.05)
        job = queue.submit("apply", {})
        queue.claim(timeout=0)
        state = queue.fail(job, "boom")
        assert state == PENDING
        assert job.error == "boom"
        # Inside the backoff window the job is not claimable.
        assert queue.claim(timeout=0) is None
        deadline = time.monotonic() + 5.0
        reclaimed = None
        while reclaimed is None and time.monotonic() < deadline:
            reclaimed = queue.claim(timeout=0.05)
        assert reclaimed is job
        assert job.attempts == 2

    def test_backoff_grows_exponentially(self, path):
        queue = make_queue(path, max_attempts=5, backoff_base=0.1, backoff_cap=10.0)
        job = queue.submit("apply", {})
        gaps = []
        for _ in range(3):
            claimed = None
            while claimed is None:
                claimed = queue.claim(timeout=0.05)
            queue.fail(job, "boom")
            gaps.append(job.not_before - time.time())
        assert gaps[0] < gaps[1] < gaps[2]

    def test_dead_letter_after_max_attempts(self, path):
        queue = make_queue(path, max_attempts=2, backoff_base=0.0)
        job = queue.submit("apply", {})
        queue.claim(timeout=0)
        assert queue.fail(job, "first") == PENDING
        queue.claim(timeout=0)
        assert queue.fail(job, "second") == DEAD
        assert job.state == DEAD and job.error == "second"
        assert queue.claim(timeout=0) is None
        assert queue.depth() == 0  # dead jobs are not owed work

    def test_per_job_max_attempts_override(self, path):
        queue = make_queue(path, max_attempts=5, backoff_base=0.0)
        job = queue.submit("apply", {}, max_attempts=1)
        queue.claim(timeout=0)
        assert queue.fail(job, "boom") == DEAD


class TestRecovery:
    def test_states_survive_reopen(self, path):
        queue = make_queue(path, fsync=True)
        done = queue.submit("apply", {"uid": 1})
        running = queue.submit("apply", {"uid": 2})
        pending = queue.submit("apply", {"uid": 3})
        queue.claim(timeout=0)
        queue.complete(done, {"did": 1})
        queue.claim(timeout=0)  # `running` claimed, never finished: the crash
        queue.close()

        recovered = make_queue(path)
        assert recovered.get(done.job_id).state == DONE
        assert recovered.get(done.job_id).result == {"did": 1}
        # Acked work is never redone; claimed-but-unacked work is re-queued.
        assert recovered.get(running.job_id).state == PENDING
        assert recovered.get(running.job_id).attempts == 1
        assert recovered.get(pending.job_id).state == PENDING
        assert recovered.requeued_on_recovery == 1

    def test_recovered_job_claimable_immediately(self, path):
        queue = make_queue(path)
        job = queue.submit("apply", {})
        queue.claim(timeout=0)
        queue.close()
        recovered = make_queue(path)
        reclaimed = recovered.claim(timeout=0)
        assert reclaimed.job_id == job.job_id
        assert reclaimed.attempts == 2

    def test_crash_looping_job_dead_letters(self, path):
        """A job that kills the process every run must not loop forever."""
        for _ in range(2):
            queue = make_queue(path, max_attempts=2)
            queue.claim(timeout=0) if queue.jobs() else queue.submit("apply", {})
            if not queue.jobs()[0].state == RUNNING:
                queue.claim(timeout=0)
            queue.close()  # crash with the job RUNNING
        recovered = make_queue(path, max_attempts=2)
        assert recovered.jobs()[0].state == DEAD
        assert recovered.dead_on_recovery == 1

    def test_torn_tail_is_tolerated(self, path):
        queue = make_queue(path, fsync=True)
        survivor = queue.submit("apply", {"uid": 1})
        queue.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('deadbeef {"ev":"enqueue","id":2,"ki')  # torn write
        recovered = make_queue(path)
        assert [j.job_id for j in recovered.jobs()] == [survivor.job_id]
        # And the journal keeps working after the torn tail.
        recovered.submit("apply", {"uid": 3})
        recovered.close()
        assert len(make_queue(path).jobs()) == 2

    def test_mid_file_corruption_raises(self, path):
        queue = make_queue(path, fsync=True)
        queue.submit("apply", {"uid": 1})
        queue.submit("apply", {"uid": 2})
        queue.close()
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[0] = "00000000" + lines[0][8:]  # break the first CRC
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(QueueCorruptionError):
            make_queue(path)

    def test_compact_preserves_state_and_shrinks(self, path):
        queue = make_queue(path, max_attempts=3, backoff_base=0.0)
        finished = queue.submit("apply", {"uid": 1})
        retried = queue.submit("apply", {"uid": 2})
        queue.claim(timeout=0)
        queue.complete(finished, {"did": 9})
        queue.claim(timeout=0)
        queue.fail(retried, "boom")
        queue.compact()
        queue.close()
        recovered = make_queue(path)
        assert recovered.get(finished.job_id).state == DONE
        assert recovered.get(finished.job_id).result == {"did": 9}
        assert recovered.get(retried.job_id).state == PENDING
        assert recovered.get(retried.job_id).attempts == 1

    def test_forget_finished_drops_history(self, path):
        queue = make_queue(path)
        done = queue.submit("apply", {})
        keep = queue.submit("apply", {})
        queue.claim(timeout=0)
        queue.complete(done, None)
        assert queue.forget_finished() == 1
        queue.close()
        recovered = make_queue(path)
        assert [j.job_id for j in recovered.jobs()] == [keep.job_id]
        # Ids are not reused after compaction.
        assert recovered.submit("apply", {}).job_id > keep.job_id


class TestConcurrency:
    def test_many_producers_many_consumers_no_loss(self, path):
        queue = make_queue(path)
        total = 200
        claimed = []
        mu = threading.Lock()

        def producer(base):
            for n in range(total // 4):
                queue.submit("apply", {"n": base + n})

        def consumer():
            while True:
                job = queue.claim(timeout=0.5)
                if job is None:
                    return
                queue.complete(job, None)
                with mu:
                    claimed.append(job.job_id)

        producers = [
            threading.Thread(target=producer, args=(i * 1000,), daemon=True)
            for i in range(4)
        ]
        consumers = [threading.Thread(target=consumer, daemon=True) for _ in range(4)]
        for thread in producers + consumers:
            thread.start()
        for thread in producers:
            thread.join(30.0)
        assert queue.wait_idle(timeout=30.0)
        queue.close()
        for thread in consumers:
            thread.join(5.0)
        assert sorted(claimed) == sorted(j.job_id for j in queue.jobs())
        assert len(claimed) == total
        assert queue.counts()[DONE] == total


class TestClosedQueue:
    """Regression: close() must fence every journaling entry point.

    Before the fix, claim() handed out ready PENDING jobs after close and
    complete()/fail() hit _append() on the closed journal file, raising a
    raw ValueError that killed worker threads and lost done-acks.
    """

    def test_close_stops_claims_even_with_ready_jobs(self, path):
        queue = make_queue(path)
        job = queue.submit("apply", {"n": 1})
        queue.close()
        assert queue.claim(timeout=0) is None
        assert job.state == PENDING  # untouched: runs after the next open
        reopened = make_queue(path)
        assert reopened.claim(timeout=0).job_id == job.job_id

    def test_complete_and_fail_raise_joberror_after_close(self, path):
        queue = make_queue(path)
        queue.submit("apply", {})
        job = queue.claim(timeout=0)
        queue.close()
        with pytest.raises(JobError):
            queue.complete(job, {"ok": True})
        with pytest.raises(JobError):
            queue.fail(job, "boom")
        # Neither call mutated the job before the append was refused; the
        # claim is journaled, so recovery re-queues it.
        assert job.state == RUNNING
        reopened = make_queue(path)
        assert reopened.get(job.job_id).state == PENDING
        assert reopened.requeued_on_recovery == 1

    def test_compact_refused_after_close(self, path):
        queue = make_queue(path)
        queue.submit("apply", {})
        queue.close()
        with pytest.raises(JobError):
            queue.compact()
        with pytest.raises(JobError):
            queue.forget_finished()
