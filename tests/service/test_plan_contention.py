"""Plan-cache and statistics thread-safety under the multi-worker service.

PR 4 introduced concurrent workers sharing one Database; the plan cache
and statistics (this PR) sit on that shared read path. The contract under
contention: reads stay exactly correct (a racing DDL bump may only cause
a re-plan, never a stale probe or a wrong row set), the cache never grows
past its bound, and no operation raises. Estimates may be torn — they are
advisory — so these tests assert result sets, not plans.
"""

import threading

from repro.storage.compile import PlanCache
from repro.storage.database import Database
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.sql import parse_where
from repro.storage.types import ColumnType as T


def contention_db(n: int = 120) -> Database:
    schema = Schema(
        [
            TableSchema(
                "items",
                [
                    Column("id", T.INTEGER, nullable=False),
                    Column("kind", T.TEXT),
                    Column("score", T.INTEGER),
                ],
                primary_key="id",
            ),
            TableSchema(
                "journal",
                [
                    Column("id", T.INTEGER, nullable=False),
                    Column("note", T.TEXT),
                ],
                primary_key="id",
            ),
        ]
    )
    db = Database(schema)
    for i in range(1, n + 1):
        db.insert("items", {"id": i, "kind": f"k{i % 4}", "score": i % 10})
    return db


def run_threads(targets, timeout=60.0):
    errors: list[BaseException] = []

    def guard(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        return run

    threads = [threading.Thread(target=guard(fn)) for fn in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    assert not any(t.is_alive() for t in threads)
    assert errors == []


class TestPlanCacheContention:
    def test_lookup_store_bump_hammer(self):
        cache = PlanCache()
        preds = [parse_where(f"score = {i}") for i in range(40)]
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for pred in preds:
                    entry = cache.lookup("items", pred)
                    if entry is not None:
                        # A served entry must carry a current-or-older stamp.
                        assert entry.generation <= cache.generation

        def writer():
            for _ in range(300):
                for pred in preds:
                    cache.store("items", pred, None, None)

        def bumper():
            last = cache.generation
            for _ in range(200):
                now = cache.bump()
                assert now > last
                last = now

        def finish():
            for fn in (writer, bumper):
                fn()
            stop.set()

        run_threads([reader, reader, writer, finish])
        stop.set()
        assert len(cache) <= cache.MAXSIZE

    def test_store_eviction_races_stay_bounded(self):
        cache = PlanCache()

        def filler(base):
            for i in range(cache.MAXSIZE):
                cache.store("t", parse_where(f"score = {base + i}"), None, None)

        run_threads([lambda b=b: filler(b * cache.MAXSIZE) for b in range(4)])
        assert len(cache) <= cache.MAXSIZE


class TestScanUnderDDLChurn:
    def test_readers_exact_while_indexes_churn(self):
        db = contention_db()
        pred = parse_where("score = 7 AND kind = 'k3'")
        expected = sorted(
            row["id"]
            for row in db.select("items")
            if row["score"] == 7 and row["kind"] == "k3"
        )
        assert expected  # the workload must actually select something
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                got = sorted(r["id"] for r in db.select("items", pred))
                assert got == expected

        def churner():
            table = db.table("items")
            for _ in range(150):
                table.create_index("score")
                table.drop_index("score")
                table.create_index("kind")
                table.drop_index("kind")
            stop.set()

        def writer():
            # Unrelated-table writes share the database (stats, plan cache).
            i = 0
            while not stop.is_set():
                i += 1
                db.insert("journal", {"id": i, "note": "x"})

        run_threads([reader, reader, reader, churner, writer])
        # Post-churn: a fresh plan against the final schema is still right.
        assert sorted(r["id"] for r in db.select("items", pred)) == expected

    def test_param_scans_race_with_bumps(self):
        db = contention_db()
        pred = parse_where("id = $I")
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for i in (1, 50, 120, 9999):
                    rows = db.select("items", pred, {"I": i})
                    if i <= 120:
                        assert [r["id"] for r in rows] == [i]
                    else:
                        assert rows == []

        def bumper():
            for _ in range(400):
                db.plans.bump()
            stop.set()

        run_threads([reader, reader, bumper])
