"""Unit tests for trace spans and the slow-op log (repro.obs.trace)."""

import json
import threading

from repro.obs import NULL_SPAN, Tracer, render_spans, spans_to_jsonl
from repro.obs.trace import traced


class TestSpanNesting:
    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = Tracer()
        assert tracer.span("x") is NULL_SPAN
        with tracer.span("x") as sp:
            sp.set("k", 1)  # no-op, no error
        assert tracer.roots() == []

    def test_parent_child_nesting(self):
        tracer = Tracer().enable()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        roots = tracer.roots()
        assert [sp.name for sp in roots] == ["parent"]
        assert [sp.name for sp in parent.children] == ["child", "sibling"]
        assert [sp.name for sp in child.children] == ["grandchild"]
        assert [sp.name for sp in parent.walk()] == [
            "parent", "child", "grandchild", "sibling",
        ]

    def test_attributes_and_find(self):
        tracer = Tracer().enable()
        with tracer.span("op", table="users") as sp:
            sp.set("rows", 7)
            sp["owner"] = 19
        root = tracer.roots()[0]
        assert root.attrs == {"table": "users", "rows": 7, "owner": 19}
        assert root.find("op") is root
        assert root.find("absent") is None

    def test_durations_are_measured_and_nested(self):
        tracer = Tracer().enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots()[0]
        inner = outer.children[0]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer().enable()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        root = tracer.roots()[0]
        assert root.attrs["error"] == "ValueError"

    def test_threads_build_separate_trees(self):
        tracer = Tracer().enable()

        def work(label):
            with tracer.span(f"root.{label}"):
                with tracer.span(f"leaf.{label}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots()
        assert len(roots) == 4
        for root in roots:
            assert len(root.children) == 1
            assert root.children[0].name == f"leaf.{root.name.split('.')[1]}"

    def test_take_clears_retained_roots(self):
        tracer = Tracer().enable()
        with tracer.span("a"):
            pass
        assert [sp.name for sp in tracer.take()] == ["a"]
        assert tracer.roots() == []

    def test_retention_is_bounded(self):
        tracer = Tracer(keep=4).enable()
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [sp.name for sp in tracer.roots()] == ["s6", "s7", "s8", "s9"]

    def test_decorator_traces_only_while_enabled(self):
        tracer_calls = []

        @traced("my.op", kind="test")
        def fn(x):
            tracer_calls.append(x)
            return x * 2

        assert fn(3) == 6  # module tracer disabled: plain call
        assert tracer_calls == [3]


class TestSlowOpLog:
    def test_over_budget_root_is_captured(self):
        tracer = Tracer().enable(slow_threshold_s=0.0)
        with tracer.span("disguise.apply"):
            pass
        assert [op.name for op in tracer.slow_ops] == ["disguise.apply"]
        op = tracer.slow_ops[0]
        assert op.threshold_s == 0.0
        assert op.root.name == "disguise.apply"
        assert "SLOW disguise.apply" in op.render()

    def test_under_budget_is_not_captured(self):
        tracer = Tracer().enable(slow_threshold_s=60.0)
        with tracer.span("disguise.apply"):
            pass
        assert len(tracer.slow_ops) == 0

    def test_nested_statement_gets_its_own_record(self):
        tracer = Tracer().enable(slow_threshold_s=0.0)
        with tracer.span("disguise.apply"):
            with tracer.span("storage.update_where"):
                pass
            with tracer.span("wal.fsync"):
                pass
        names = [op.name for op in tracer.slow_ops]
        # Statements and disguises open slow records; leaf spans like one
        # fsync are only visible inside the captured trees.
        assert names == ["storage.update_where", "disguise.apply"]

    def test_no_threshold_means_no_slow_ops(self):
        tracer = Tracer().enable()
        with tracer.span("storage.select"):
            pass
        assert len(tracer.slow_ops) == 0


class TestExport:
    def _tree(self):
        tracer = Tracer().enable()
        with tracer.span("root", spec="x") as sp:
            sp.set("obj", object())  # non-JSON attr must not break export
            with tracer.span("leaf"):
                pass
        return tracer.roots()

    def test_render_tree_indents_children(self):
        text = render_spans(self._tree())
        lines = text.splitlines()
        assert lines[0].startswith("root ")
        assert lines[1].startswith("  leaf ")

    def test_jsonl_links_children_to_parents(self):
        lines = [json.loads(line) for line in spans_to_jsonl(self._tree()).splitlines()]
        assert len(lines) == 2
        root, leaf = lines
        assert root["name"] == "root" and root["parent_id"] is None
        assert leaf["name"] == "leaf" and leaf["parent_id"] == root["id"]
        assert root["attrs"]["spec"] == "x"
        assert isinstance(root["attrs"]["obj"], str)  # repr()'d, not dropped
