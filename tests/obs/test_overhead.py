"""Disabled-mode observability must be near-free on the write path.

The strict <=5% claim lives in benchmarks/bench_observability.py (run via
``--smoke`` in CI, recorded in BENCH_obs.json); this smoke test uses a
deliberately lenient bound so scheduler noise cannot flake the suite.
"""

import time

from repro.obs import TRACER
from repro.storage.database import Database
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.sql import parse_where
from repro.storage.types import ColumnType as T


ROWS = 400
BATCHES = 60


def make_db() -> Database:
    db = Database(
        Schema(
            [
                TableSchema(
                    "events",
                    (
                        Column("id", T.INTEGER, nullable=False),
                        Column("kind", T.INTEGER),
                        Column("note", T.TEXT),
                    ),
                    primary_key="id",
                )
            ]
        )
    )
    for i in range(ROWS):
        db.insert("events", {"id": i, "kind": i % 10, "note": "x" * 32})
    return db


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledOverhead:
    def test_instrumented_write_path_tracks_the_undecorated_seed(self):
        assert not TRACER.enabled  # the default the bound is claimed under

        pred = parse_where("kind = 3")
        db = make_db()

        def instrumented():
            for i in range(BATCHES):
                db.update_where("events", pred, {"note": f"n{i}"})

        seed_db = make_db()
        undecorated = Database.update_where.__wrapped__

        def seed():
            for i in range(BATCHES):
                undecorated(seed_db, "events", pred, {"note": f"n{i}"})

        # Warm plan caches so both sides measure steady state.
        instrumented()
        seed()

        ratio = _best_of(instrumented) / _best_of(seed)
        # Benchmarked headroom is ~5%; the CI bound is loose on purpose.
        assert ratio < 1.25, f"disabled-mode overhead ratio {ratio:.3f}"

    def test_disabled_span_entry_is_cheap(self):
        assert not TRACER.enabled
        start = time.perf_counter()
        for _ in range(10_000):
            with TRACER.span("storage.noop"):
                pass
        per_span = (time.perf_counter() - start) / 10_000
        assert per_span < 5e-6  # a handful of attribute reads, no allocation
