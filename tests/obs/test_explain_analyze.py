"""EXPLAIN ANALYZE: typed reports whose actuals agree with scan stats."""

import pytest

from repro.obs import PlanReport
from repro.storage.database import Database
from repro.storage.predicate import TrueP, column_equals_param
from repro.storage.schema import Column, Schema, TableSchema
from repro.storage.sql import parse_where
from repro.storage.types import ColumnType as T


def make_db(rows: int = 200) -> Database:
    db = Database(
        Schema(
            [
                TableSchema(
                    "events",
                    (
                        Column("id", T.INTEGER, nullable=False),
                        Column("kind", T.INTEGER),
                        Column("score", T.INTEGER),
                    ),
                    primary_key="id",
                )
            ]
        )
    )
    for i in range(rows):
        db.insert("events", {"id": i, "kind": i % 10, "score": i % 7})
    db.table("events").create_index("kind")
    return db


class TestPlanReportType:
    def test_explain_returns_typed_report(self):
        db = make_db()
        report = db.explain("events", parse_where("kind = 3"))
        assert isinstance(report, PlanReport)
        assert report.table == "events"
        assert report.plan == "eq(kind)"
        assert report.compiled is True
        assert report.analyzed is False
        assert report.actual_rows is None

    def test_mapping_access_keeps_old_callers_working(self):
        db = make_db()
        report = db.explain("events", parse_where("kind = 3"))
        # The PR 5 dict shape, via mapping-style indexing.
        assert report["plan"] == "eq(kind)"
        assert report["table_rows"] == 200
        assert report["cached"] is False
        assert report["generation"] == db.plans.generation
        assert report["estimated_rows"] > 0
        assert "plan" in report and "nope" not in report
        assert set(report.keys()) >= {"plan", "estimated_rows", "compiled"}
        with pytest.raises(KeyError):
            report["nope"]
        assert report.get("nope", 42) == 42

    def test_str_renders_plan_and_analyze_sections(self):
        db = make_db()
        plain = str(db.explain("events", parse_where("kind = 3")))
        assert plain.startswith("EXPLAIN events")
        analyzed = str(
            db.explain("events", parse_where("kind = 3"), analyze=True)
        )
        assert analyzed.startswith("EXPLAIN ANALYZE events")
        assert "actual:" in analyzed

    def test_to_dict_round_trips_nodes(self):
        db = make_db()
        report = db.explain("events", parse_where("kind = 3"), analyze=True)
        data = report.to_dict()
        assert data["analyzed"] is True
        assert all(
            set(node) == {"label", "rows", "time_s"} for node in data["nodes"]
        )


class TestAnalyzeActualsAgreeWithStats:
    """report.rows_examined must equal the delta an identical scan causes."""

    @pytest.mark.parametrize(
        "where",
        ["kind = 3", "score > 4", "kind = 3 AND score > 1", "id = 17"],
    )
    def test_examined_matches_scan_delta_exactly(self, where):
        db = make_db()
        pred = parse_where(where)
        table = db.table("events")

        before = table.rows_examined
        report = db.explain("events", pred, analyze=True)
        analyze_delta = table.rows_examined - before

        before = table.rows_examined
        rows = db.select("events", pred)
        scan_delta = table.rows_examined - before

        assert report.analyzed is True
        assert report.rows_examined == analyze_delta == scan_delta
        assert report.actual_rows == len(rows)
        assert report.wall_time_s is not None and report.wall_time_s >= 0.0

    def test_full_scan_analyze(self):
        db = make_db(50)
        table = db.table("events")
        before = table.rows_examined
        report = db.explain("events", analyze=True)
        assert isinstance(report, PlanReport)
        assert report.plan == "full"
        assert report.rows_examined == 50 == table.rows_examined - before
        assert report.actual_rows == 50
        assert [node.label for node in report.nodes] == ["seq scan"]

    def test_analyze_does_not_touch_query_stats(self):
        # EXPLAIN ANALYZE executes the plan, not the statement: it advances
        # the table's rows_examined (honest execution) but never the
        # statement counters a real select would bump.
        db = make_db()
        before = db.stats.snapshot()
        db.explain("events", parse_where("kind = 3"), analyze=True)
        delta = db.stats.delta(before)
        assert delta.selects == 0 and delta.statements == 0

    def test_cache_hit_reflects_prior_plan(self):
        db = make_db()
        pred = column_equals_param("kind", "k")
        first = db.explain("events", pred, {"k": 3}, analyze=True)
        assert first.cache_hit is False
        db.select("events", pred, {"k": 3})
        second = db.explain("events", pred, {"k": 3}, analyze=True)
        assert second.cache_hit is True and second.cached is True

    def test_nodes_split_probe_and_filter(self):
        db = make_db()
        report = db.explain("events", parse_where("kind = 3"), analyze=True)
        labels = [node.label for node in report.nodes]
        assert labels == ["eq(kind)", "filter [compiled]"]
        probe, filt = report.nodes
        assert probe.rows == report.rows_examined
        assert filt.rows == report.actual_rows
        assert probe.time_s >= 0.0 and filt.time_s >= 0.0

    def test_truep_estimate_is_table_rows(self):
        db = make_db(30)
        report = db.explain("events")
        assert report.plan == "full"
        assert report.estimated_rows == 30.0
        assert report.analyzed is False
