"""Unit tests for the metrics registry (repro.obs.registry)."""

import json
import threading
import warnings

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsView, Registry


class TestCounter:
    def test_increments(self):
        reg = Registry()
        c = reg.counter("x.hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_disabled_registry_makes_inc_a_noop(self):
        reg = Registry(enabled=False)
        c = reg.counter("x.hits")
        c.inc(100)
        assert c.value == 0
        reg.enable()
        c.inc()
        assert c.value == 1

    def test_get_or_create_returns_same_instrument(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = Registry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_thread_safe_under_contention(self):
        reg = Registry()
        c = reg.counter("hot")

        def bump():
            for _ in range(5_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 20_000


class TestGauge:
    def test_callback_reads_live_state(self):
        reg = Registry()
        box = {"n": 1}
        g = reg.gauge("box.n", lambda: box["n"])
        assert g.read() == 1
        box["n"] = 7
        assert g.read() == 7

    def test_set_value_overrides_callback(self):
        g = Gauge("g", lambda: 3)
        g.set(9)
        assert g.read() == 9

    def test_reregistering_replaces_callback(self):
        reg = Registry()
        reg.gauge("g", lambda: 1)
        reg.gauge("g", lambda: 2)
        assert reg.snapshot()["g"] == 2

    def test_raising_callback_reads_none(self):
        g = Gauge("g", lambda: 1 / 0)
        assert g.read() is None


class TestHistogram:
    def test_count_sum_and_percentiles(self):
        reg = Registry()
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == pytest.approx(5050.0)
        snap = h.read()
        assert snap["p50"] == pytest.approx(50.0, abs=2.0)
        assert snap["p95"] == pytest.approx(95.0, abs=2.0)
        assert snap["p99"] == pytest.approx(99.0, abs=2.0)

    def test_window_bounds_memory_but_not_count(self):
        reg = Registry()
        h = reg.histogram("lat", window=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        # Percentiles reflect only the retained window (most recent 8).
        assert h.percentile(0.0) >= 92.0

    def test_disabled_observe_is_noop(self):
        reg = Registry(enabled=False)
        h = reg.histogram("lat")
        h.observe(1.0)
        assert h.count == 0

    def test_snapshot_expands_subkeys(self):
        reg = Registry()
        reg.histogram("lat").observe(2.0)
        snap = reg.snapshot()
        assert snap["lat.count"] == 1
        assert snap["lat.sum"] == pytest.approx(2.0)
        assert "lat.p50" in snap and "lat.p95" in snap and "lat.p99" in snap


class TestSnapshotAndView:
    def test_prefix_filtering(self):
        reg = Registry()
        reg.counter("storage.selects").inc()
        reg.counter("wal.fsyncs").inc(3)
        reg.counter("service.jobs_done")
        assert set(reg.snapshot("wal")) == {"wal.fsyncs"}
        assert set(reg.snapshot(("storage", "wal"))) == {
            "storage.selects",
            "wal.fsyncs",
        }
        # Prefixes match dotted segments, not raw string prefixes.
        reg.counter("walrus.count")
        assert "walrus.count" not in reg.snapshot("wal")

    def test_view_is_json_serializable_with_new_names_only(self):
        reg = Registry()
        reg.counter("a.b").inc()
        view = reg.view(aliases={"old_b": "a.b"})
        data = json.loads(json.dumps(view))
        assert data == {"a.b": 1}

    def test_legacy_key_warns_and_resolves(self):
        reg = Registry()
        reg.counter("a.b").inc(5)
        view = reg.view(aliases={"old_b": "a.b"})
        with pytest.warns(DeprecationWarning, match="old_b"):
            assert view["old_b"] == 5
        # New name resolves silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert view["a.b"] == 5

    def test_legacy_alias_to_absent_metric_reads_none(self):
        view = MetricsView({}, aliases={"wal_syncs": "wal.fsyncs"})
        with pytest.warns(DeprecationWarning):
            assert view["wal_syncs"] is None

    def test_unknown_key_still_raises(self):
        view = MetricsView({"a": 1}, aliases={})
        with pytest.raises(KeyError):
            view["nope"]

    def test_legacy_merges_both_schemas_without_warning(self):
        reg = Registry()
        reg.counter("a.b").inc(2)
        view = reg.view(aliases={"old_b": "a.b"})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merged = view.legacy()
        assert merged == {"a.b": 2, "old_b": 2}
