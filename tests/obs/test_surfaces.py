"""The redesigned surfaces: every legacy metrics dict resolves through the
registry, and a real disguise traces down to the WAL and vault leaves."""

import warnings

import pytest

from repro.apps.lobsters import LobstersPopulation, generate_lobsters, lobsters_gdpr
from repro.core.engine import Disguiser
from repro.obs import MetricsView, disable_tracing, enable_tracing, TRACER
from repro.service.server import DisguiseService
from repro.storage.persist import save_database
from repro.storage.wal import open_in_place
from repro.vault.file_vault import FileVault

from tests.conftest import make_blog_db


@pytest.fixture(autouse=True)
def _tracer_off():
    yield
    disable_tracing()
    TRACER.clear()


class TestLegacySurfacesResolveThroughRegistry:
    def test_database_stats_item_access_warns_but_matches(self):
        db = make_blog_db()
        db.select("users")
        with pytest.warns(DeprecationWarning, match="storage.selects"):
            assert db.stats["selects"] == db.stats.selects
        with pytest.raises(KeyError):
            db.stats["not_a_field"]
        assert db.stats.as_dict()["selects"] == db.stats.selects

    def test_database_metrics_view_carries_storage_and_plancache(self):
        db = make_blog_db()
        db.select("users")
        view = db.metrics()
        assert isinstance(view, MetricsView)
        assert view["storage.selects"] == db.stats.selects
        assert view["storage.rows"] == db.total_rows()
        assert view["plancache.hits"] == db.plans.hits
        assert view["plancache.misses"] == db.plans.misses
        with pytest.warns(DeprecationWarning):
            assert view["selects"] == db.stats.selects

    def test_wal_counters_surface_as_wal_gauges(self, tmp_path):
        snapshot = tmp_path / "app.jsonl"
        save_database(make_blog_db(), snapshot)
        with open_in_place(snapshot, fsync="always") as handle:
            db = handle.db
            db.update_where("users", "id = 1", {"name": "x"})
            view = db.metrics()
            assert view["wal.appends"] == handle.wal.commits_appended > 0
            assert view["wal.fsyncs"] == handle.wal.syncs > 0
            assert view["wal.bytes_written"] == handle.wal.bytes_written > 0
            assert view["wal.unsynced_commits"] == 0  # fsync=always

    def test_vault_counters_surface_under_engine_database(self, tmp_path):
        db = make_blog_db()
        engine = Disguiser(db, vault=FileVault(tmp_path / "vaults"))
        from repro.spec.parser import spec_from_dict
        from tests.integration.test_cli import SCRUB_DOC

        engine.register(spec_from_dict(SCRUB_DOC))
        engine.apply("CliScrub", uid=2)
        view = db.metrics()
        assert view["vault.writes"] == engine.vault.stats.writes > 0
        assert view["vault.journal_appends"] == engine.vault.appends > 0
        assert view["vault.compactions"] == engine.vault.compactions

    def test_service_metrics_is_a_registry_view(self, tmp_path):
        db = make_blog_db()
        engine = Disguiser(db)
        service = DisguiseService(
            engine, tmp_path / "q.jobs", workers=2, queue_fsync=False
        )
        with service:
            metrics = service.metrics()
        assert isinstance(metrics, MetricsView)
        assert metrics["service.workers"] == 2
        assert metrics["service.queue_depth"] == 0
        assert metrics["service.lock_wait_s"] >= 0.0
        # Old keys warn but resolve to the same registry values.
        with pytest.warns(DeprecationWarning):
            assert metrics["workers"] == metrics["service.workers"]
        with pytest.warns(DeprecationWarning):
            assert metrics["wal_syncs"] is None  # no WAL attached
        merged = metrics.legacy()
        assert merged["jobs_done"] == merged["service.jobs_done"]

    def test_statement_latency_histogram_records_under_tracing(self):
        db = make_blog_db()
        enable_tracing()
        db.select("users")
        disable_tracing()
        snap = db.metrics()
        assert snap["storage.statement_s.count"] >= 1
        assert snap["storage.statement_s.sum"] > 0.0


class TestApplySpanTree:
    def test_lobsters_apply_traces_to_wal_and_vault_leaves(self, tmp_path):
        """Acceptance: a full apply yields one tree from disguise.apply
        down through per-table ops and statements to WAL/vault leaves."""
        snapshot = tmp_path / "app.jsonl"
        save_database(
            generate_lobsters(
                population=LobstersPopulation(users=20, stories=40, comments=80),
                seed=7,
            ),
            snapshot,
        )
        with open_in_place(snapshot, fsync="always") as handle:
            engine = Disguiser(
                handle.db, vault=FileVault(tmp_path / "vaults")
            )
            engine.register(lobsters_gdpr())
            tracer = enable_tracing()
            try:
                report = engine.apply("Lobsters-GDPR", uid=3)
            finally:
                disable_tracing()
            roots = tracer.take()

        assert len(roots) == 1
        root = roots[0]
        assert root.name == "disguise.apply"
        assert root.attrs["spec"] == "Lobsters-GDPR"
        assert root.attrs["uid"] == 3
        assert root.attrs["did"] == report.disguise_id

        names = {span.name for span in root.walk()}
        # Ops...
        assert {"op.remove", "op.decorrelate"} <= names
        # ...statements...
        assert any(name.startswith("storage.") for name in names)
        # ...and the WAL and vault leaves.
        assert {"wal.append", "wal.fsync"} <= names
        assert "vault.put_many" in names
        assert "vault.journal_append" in names

        # Ops nest under the apply; statements nest under ops.
        op = root.find("op.decorrelate")
        assert op is not None and op.parent is root
        stmt = next(
            span for span in op.walk() if span.name.startswith("storage.")
        )
        assert stmt.attrs["table"]

        # The vault journal leaf hangs below the put that caused it.
        put = root.find("vault.put_many")
        assert put.find("vault.journal_append") is not None

    def test_reveal_traces_its_own_tree(self, tmp_path):
        db = make_blog_db()
        engine = Disguiser(db, vault=FileVault(tmp_path / "vaults"))
        from repro.spec.parser import spec_from_dict
        from tests.integration.test_cli import SCRUB_DOC

        engine.register(spec_from_dict(SCRUB_DOC))
        report = engine.apply("CliScrub", uid=2)
        tracer = enable_tracing()
        try:
            engine.reveal(report.disguise_id)
        finally:
            disable_tracing()
        roots = tracer.take()
        assert [root.name for root in roots] == ["disguise.reveal"]
        assert roots[0].attrs["did"] == report.disguise_id
        assert any(
            span.name.startswith("storage.") for span in roots[0].walk()
        )
