"""Lint: the concurrency stack must get time, sleeps, and threads from
the injected clock, never from the ambient modules.

The simulation harness (``repro.simtest``) replays a whole service run
from one seed. That only holds if every nondeterministic primitive on
the hot path flows through the clock seam (``repro.simtest.clock``):
a single stray ``time.time()`` or ``threading.Thread(...)`` makes a
failing seed unreproducible. This test walks the AST of the audited
modules and fails loudly on regressions, with the offending file:line.

A call site that is genuinely outside the deterministic surface can opt
out with a trailing ``# determinism: exempt`` comment on its line.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose behavior a simulation seed must fully determine: the
#: whole service layer plus the storage/vault/shard files on the
#: journaled write path.
AUDITED = [
    *sorted((SRC / "service").glob("*.py")),
    SRC / "storage" / "wal.py",
    SRC / "storage" / "persist.py",
    SRC / "storage" / "fsio.py",
    SRC / "vault" / "file_vault.py",
    SRC / "shard" / "apply.py",
]

#: module -> attributes that must come from the injected clock/RNG.
FORBIDDEN_CALLS = {
    "time": {"time", "monotonic", "sleep", "perf_counter", "perf_counter_ns"},
    "random": None,  # any module-level random.* call (incl. Random())
    "datetime": {"now", "utcnow", "today"},
    "threading": {"Thread", "Timer"},
}

EXEMPT_MARK = "determinism: exempt"


def _violations(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            continue
        module, attr = func.value.id, func.attr
        allowed = FORBIDDEN_CALLS.get(module, ...)
        if allowed is ... or (allowed is not None and attr not in allowed):
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if EXEMPT_MARK in line:
            continue
        try:
            shown = path.relative_to(SRC.parent.parent)
        except ValueError:
            shown = path
        found.append(
            f"{shown}:{node.lineno}: "
            f"{module}.{attr}(...) bypasses the injected clock"
        )
    return found


class TestDeterminismAudit:
    def test_audited_files_exist(self):
        # Guard against the audit silently auditing nothing after a move.
        assert len(AUDITED) >= 8
        for path in AUDITED:
            assert path.exists(), f"audited file moved: {path}"

    def test_no_ambient_time_random_or_threads_on_hot_paths(self):
        offenders = [v for path in AUDITED for v in _violations(path)]
        assert offenders == [], "\n" + "\n".join(offenders)

    def test_lint_actually_detects_offenses(self, tmp_path):
        # The lint itself must not rot: plant each forbidden call and
        # check it is flagged, and that the exemption comment works.
        planted = tmp_path / "planted.py"
        planted.write_text(
            "import random\nimport threading\nimport time\n"
            "a = time.time()\n"
            "b = random.Random(7)\n"
            "c = threading.Thread(target=print)\n"
            "d = time.sleep(1)  # determinism: exempt\n"
            "e = threading.Lock()\n",
            encoding="utf-8",
        )
        found = "\n".join(_violations(planted))
        assert "time.time" in found
        assert "random.Random" in found
        assert "threading.Thread" in found
        assert "time.sleep" not in found  # exempted
        assert "threading.Lock" not in found  # locks are fine; waits go via clock
