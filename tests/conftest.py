"""Shared fixtures: a small blog-like schema and a mini HotCRP instance."""

from __future__ import annotations

import pytest

from repro import Database, Disguiser, Schema, parse_schema
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp

BLOG_DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII,
  disabled BOOL NOT NULL DEFAULT FALSE,
  last_login DATETIME
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  title TEXT NOT NULL,
  body TEXT,
  score INT NOT NULL DEFAULT 0
);
CREATE TABLE comments (
  id INT PRIMARY KEY,
  post_id INT NOT NULL REFERENCES posts(id) ON DELETE CASCADE,
  user_id INT NOT NULL REFERENCES users(id),
  body TEXT
);
CREATE TABLE follows (
  id INT PRIMARY KEY,
  follower_id INT NOT NULL REFERENCES users(id),
  followee_id INT NOT NULL REFERENCES users(id)
);
"""


def make_blog_db() -> Database:
    """A small populated blog database (3 users, 4 posts, comments)."""
    db = Database(Schema(parse_schema(BLOG_DDL)))
    users = [
        {"id": 1, "name": "Ada", "email": "ada@x.io", "last_login": 100.0},
        {"id": 2, "name": "Bea", "email": "bea@x.io", "last_login": 200.0},
        {"id": 3, "name": "Cal", "email": "cal@x.io", "last_login": 300.0},
    ]
    for user in users:
        db.insert("users", user)
    posts = [
        {"id": 10, "user_id": 1, "title": "p1", "body": "ada post", "score": 5},
        {"id": 11, "user_id": 2, "title": "p2", "body": "bea post", "score": 3},
        {"id": 12, "user_id": 2, "title": "p3", "body": "bea again", "score": 0},
        {"id": 13, "user_id": 3, "title": "p4", "body": "cal post", "score": 9},
    ]
    for post in posts:
        db.insert("posts", post)
    comments = [
        {"id": 100, "post_id": 10, "user_id": 2, "body": "nice"},
        {"id": 101, "post_id": 11, "user_id": 1, "body": "thanks"},
        {"id": 102, "post_id": 11, "user_id": 3, "body": "+1"},
        {"id": 103, "post_id": 13, "user_id": 2, "body": "hm"},
    ]
    for comment in comments:
        db.insert("comments", comment)
    db.insert("follows", {"id": 1000, "follower_id": 1, "followee_id": 2})
    db.insert("follows", {"id": 1001, "follower_id": 2, "followee_id": 3})
    db.stats.reset()
    return db


@pytest.fixture
def blog_db() -> Database:
    return make_blog_db()


def blog_scrub_spec():
    """User scrubbing for the blog app: remove account, decorrelate posts
    and comments, drop follow edges."""
    from repro import Decorrelate, Default, DisguiseSpec, FakeName, Remove, TableDisguise

    return DisguiseSpec(
        "BlogScrub",
        [
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={
                    "name": FakeName(),
                    "email": Default(None),
                    "disabled": Default(True),
                },
            ),
            TableDisguise(
                "posts",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "comments",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "follows",
                transformations=[Remove("follower_id = $UID OR followee_id = $UID")],
            ),
        ],
    )


def blog_delete_spec():
    """Hard deletion: remove the user and everything they wrote."""
    from repro import DisguiseSpec, Remove, TableDisguise

    return DisguiseSpec(
        "BlogDelete",
        [
            TableDisguise("users", transformations=[Remove("id = $UID")]),
            TableDisguise("posts", transformations=[Remove("user_id = $UID")]),
            TableDisguise("comments", transformations=[Remove("user_id = $UID")]),
            TableDisguise(
                "follows",
                transformations=[Remove("follower_id = $UID OR followee_id = $UID")],
            ),
        ],
    )


def blog_anon_spec():
    """Global anonymization: redact names, decorrelate all posts."""
    from repro import (
        Default,
        DisguiseSpec,
        FakeName,
        Modify,
        Decorrelate,
        TableDisguise,
        named_modifier,
    )

    redact, redact_label = named_modifier("redact")
    return DisguiseSpec(
        "BlogAnon",
        [
            TableDisguise(
                "users",
                owner_column="id",
                transformations=[
                    Modify("TRUE", column="name", fn=redact, label=redact_label),
                    Modify("TRUE", column="email", fn=named_modifier("null")[0], label="null"),
                ],
                generate_placeholder={
                    "name": FakeName(),
                    "email": Default(None),
                    "disabled": Default(True),
                },
            ),
            TableDisguise(
                "posts",
                owner_column="user_id",
                transformations=[Decorrelate("TRUE", foreign_key="user_id")],
            ),
        ],
    )


@pytest.fixture
def mini_hotcrp() -> tuple[Database, Disguiser]:
    """A small HotCRP conference with all three disguises registered."""
    db = generate_hotcrp(
        population=HotcrpPopulation(users=40, pc_members=6, papers=30, reviews=90),
        seed=3,
    )
    engine = Disguiser(db, seed=1)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine
