"""Synthetic Lobsters community data (deterministic under a seed).

Default population: 200 users, 600 stories, 2000 comments (threaded), plus
votes, messages, invitations, moderation records — enough to exercise
every table the GDPR disguise touches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.lobsters.schema import lobsters_schema
from repro.storage.database import Database

__all__ = ["LobstersPopulation", "generate_lobsters"]

_TAGS = ("programming", "security", "hardware", "culture", "practices",
         "python", "rust", "distributed", "databases", "meta")
_DOMAINS = ("example.com", "blog.example.org", "papers.example.net",
            "news.example.io", "code.example.dev")


@dataclass(frozen=True)
class LobstersPopulation:
    users: int = 200
    stories: int = 600
    comments: int = 2000

    @classmethod
    def at_scale(cls, scale: float) -> "LobstersPopulation":
        return cls(
            users=max(4, round(200 * scale)),
            stories=max(2, round(600 * scale)),
            comments=max(2, round(2000 * scale)),
        )


def generate_lobsters(
    scale: float = 1.0,
    seed: int = 7,
    population: LobstersPopulation | None = None,
) -> Database:
    """Build a populated Lobsters database."""
    pop = population or LobstersPopulation.at_scale(scale)
    rng = random.Random(seed)
    db = Database(lobsters_schema())

    for tag_id, tag in enumerate(_TAGS, start=1):
        db.insert("tags", {"id": tag_id, "tag": tag, "description": f"{tag} stories"})
    for domain_id, domain in enumerate(_DOMAINS, start=1):
        db.insert("domains", {"id": domain_id, "domain": domain})

    # -- users (inviter chains require insertion order) ----------------------------
    for uid in range(1, pop.users + 1):
        db.insert(
            "users",
            {
                "id": uid,
                "username": f"user{uid}",
                "email": f"user{uid}@example.net",
                "password_digest": f"digest-{rng.getrandbits(48):012x}",
                "about": f"I am user {uid}; I like {rng.choice(_TAGS)}.",
                "karma": rng.randint(-5, 500),
                "is_admin": uid == 1,
                "is_moderator": uid <= 3,
                "deleted_at": None,
                "last_login": float(rng.randint(1_000, 100_000)),
                "invited_by_user_id": rng.randint(1, uid - 1) if uid > 1 else None,
            },
        )

    # -- stories with taggings ------------------------------------------------------
    tagging_id = 1
    for sid in range(1, pop.stories + 1):
        author = 1 + rng.randrange(pop.users)
        db.insert(
            "stories",
            {
                "id": sid,
                "user_id": author,
                "domain_id": 1 + rng.randrange(len(_DOMAINS)),
                "title": f"Story {sid}: {rng.choice(_TAGS)} news",
                "url": f"https://{rng.choice(_DOMAINS)}/{sid}",
                "description": None if rng.random() < 0.7 else f"Text post {sid}",
                "upvotes": rng.randint(0, 100),
                "downvotes": rng.randint(0, 5),
                "created_at": float(rng.randint(1_000, 90_000)),
            },
        )
        for tag in rng.sample(range(1, len(_TAGS) + 1), rng.randint(1, 2)):
            db.insert(
                "taggings", {"id": tagging_id, "story_id": sid, "tag_id": tag}
            )
            tagging_id += 1

    # -- threaded comments ------------------------------------------------------------
    for cid in range(1, pop.comments + 1):
        sid = 1 + rng.randrange(pop.stories)
        parent = None
        if cid > 1 and rng.random() < 0.4:
            parent = 1 + rng.randrange(cid - 1)
        db.insert(
            "comments",
            {
                "id": cid,
                "user_id": 1 + rng.randrange(pop.users),
                "story_id": sid,
                "parent_comment_id": parent,
                "comment": f"Comment {cid}: insightful remark.",
                "upvotes": rng.randint(0, 40),
                "downvotes": rng.randint(0, 3),
                "created_at": float(rng.randint(1_000, 90_000)),
            },
        )

    # -- votes ---------------------------------------------------------------------------
    vote_id = 1
    for _ in range(pop.comments):
        on_story = rng.random() < 0.5
        db.insert(
            "votes",
            {
                "id": vote_id,
                "user_id": 1 + rng.randrange(pop.users),
                "story_id": 1 + rng.randrange(pop.stories) if on_story else None,
                "comment_id": None if on_story else 1 + rng.randrange(pop.comments),
                "vote": rng.choice((-1, 1)),
            },
        )
        vote_id += 1

    # -- messages, hats, invitations, moderation ---------------------------------------------
    for mid in range(1, max(2, pop.users)):
        author = 1 + rng.randrange(pop.users)
        recipient = 1 + rng.randrange(pop.users)
        db.insert(
            "messages",
            {
                "id": mid,
                "author_user_id": author,
                "recipient_user_id": recipient,
                "subject": f"Hello #{mid}",
                "body": f"Private note from {author} to {recipient}.",
                "created_at": float(rng.randint(1_000, 90_000)),
            },
        )
    for hat_id in range(1, max(2, pop.users // 20)):
        db.insert(
            "hats",
            {
                "id": hat_id,
                "user_id": 1 + rng.randrange(pop.users),
                "granted_by_user_id": 1,
                "hat": rng.choice(("Maintainer", "Author", "Organizer")),
            },
        )
        db.insert(
            "hat_requests",
            {
                "id": hat_id,
                "user_id": 1 + rng.randrange(pop.users),
                "hat": "Contributor",
                "comment": "I maintain a project.",
            },
        )
    for inv_id in range(1, max(2, pop.users // 4)):
        db.insert(
            "invitations",
            {
                "id": inv_id,
                "user_id": 1 + rng.randrange(pop.users),
                "email": f"invitee{inv_id}@example.net",
                "code": f"{rng.getrandbits(48):012x}",
                "memo": None,
                "used_at": float(rng.randint(1_000, 90_000)) if rng.random() < 0.5 else None,
            },
        )
        db.insert(
            "invitation_requests",
            {
                "id": inv_id,
                "name": f"Applicant {inv_id}",
                "email": f"applicant{inv_id}@example.net",
                "memo": "Long-time reader.",
                "is_verified": rng.random() < 0.7,
            },
        )
    for mod_id in range(1, max(2, pop.stories // 30)):
        db.insert(
            "moderations",
            {
                "id": mod_id,
                "moderator_user_id": 1 + rng.randrange(3),
                "story_id": 1 + rng.randrange(pop.stories),
                "comment_id": None,
                "target_user_id": 1 + rng.randrange(pop.users),
                "action": "edited title",
                "reason": "clarity",
                "created_at": float(rng.randint(1_000, 90_000)),
            },
        )
        db.insert(
            "mod_notes",
            {
                "id": mod_id,
                "moderator_user_id": 1 + rng.randrange(3),
                "user_id": 1 + rng.randrange(pop.users),
                "markeddown_note": "Warned about self-promotion.",
                "created_at": float(rng.randint(1_000, 90_000)),
            },
        )

    # -- per-user story state --------------------------------------------------------------
    ribbon_id = 1
    saved_id = 1
    hidden_id = 1
    suggestion_id = 1
    for uid in range(1, pop.users + 1):
        for sid in rng.sample(range(1, pop.stories + 1), min(5, pop.stories)):
            db.insert(
                "read_ribbons",
                {
                    "id": ribbon_id,
                    "user_id": uid,
                    "story_id": sid,
                    "updated_at": float(rng.randint(1_000, 90_000)),
                },
            )
            ribbon_id += 1
        if rng.random() < 0.4:
            db.insert(
                "saved_stories",
                {"id": saved_id, "user_id": uid, "story_id": 1 + rng.randrange(pop.stories)},
            )
            saved_id += 1
        if rng.random() < 0.2:
            db.insert(
                "hidden_stories",
                {"id": hidden_id, "user_id": uid, "story_id": 1 + rng.randrange(pop.stories)},
            )
            hidden_id += 1
        if rng.random() < 0.1:
            db.insert(
                "suggested_titles",
                {
                    "id": suggestion_id,
                    "story_id": 1 + rng.randrange(pop.stories),
                    "user_id": uid,
                    "title": "Better title",
                },
            )
            db.insert(
                "suggested_taggings",
                {
                    "id": suggestion_id,
                    "story_id": 1 + rng.randrange(pop.stories),
                    "tag_id": 1 + rng.randrange(len(_TAGS)),
                    "user_id": uid,
                },
            )
            suggestion_id += 1

    db.assert_integrity()
    db.stats.reset()
    return db
