"""Application-level helpers for the Lobsters case study."""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.assertions import PrivacyAssertion
from repro.storage.database import Database

__all__ = ["check_invariants", "user_activity", "deletion_assertions", "user_footprint"]


def check_invariants(db: Database) -> list[str]:
    """Lobsters invariants beyond referential integrity.

    * placeholder accounts (no email) must carry a tombstone
      ``deleted_at`` so the UI renders them as "[deleted]";
    * every vote targets exactly one of story/comment;
    * comments always have an author and a story (FK re-check).
    """
    problems = list(db.check_integrity())
    for user in db.select("users", "email IS NULL"):
        if user["deleted_at"] is None:
            problems.append(f"users {user['id']} has no email but no deleted_at")
    for vote in db.select("votes"):
        targets = (vote["story_id"] is not None) + (vote["comment_id"] is not None)
        if targets != 1:
            problems.append(f"votes {vote['id']} targets {targets} objects")
    return problems


def user_activity(db: Database) -> Mapping[Any, float]:
    """Last-login per live user, for expiration/decay policies."""
    return {
        row["id"]: row["last_login"] if row["last_login"] is not None else 0.0
        for row in db.select("users", "deleted_at IS NULL")
    }


def deletion_assertions() -> list[PrivacyAssertion]:
    """Privacy goals of Lobsters account deletion."""
    return [
        PrivacyAssertion("account deleted", table="users", pred="id = $UID"),
        PrivacyAssertion("no stories linked", table="stories", pred="user_id = $UID"),
        PrivacyAssertion("no comments linked", table="comments", pred="user_id = $UID"),
        PrivacyAssertion("no votes", table="votes", pred="user_id = $UID"),
        PrivacyAssertion("no received messages", table="messages", pred="recipient_user_id = $UID"),
        PrivacyAssertion("no authored messages linked", table="messages", pred="author_user_id = $UID"),
    ]


def user_footprint(db: Database, uid: int) -> dict[str, int]:
    """Rows in each user-linked table that mention *uid*."""
    checks = {
        "users": "id = $UID OR invited_by_user_id = $UID",
        "stories": "user_id = $UID",
        "comments": "user_id = $UID",
        "votes": "user_id = $UID",
        "messages": "author_user_id = $UID OR recipient_user_id = $UID",
        "hats": "user_id = $UID OR granted_by_user_id = $UID",
        "hat_requests": "user_id = $UID",
        "invitations": "user_id = $UID",
        "moderations": "moderator_user_id = $UID OR target_user_id = $UID",
        "mod_notes": "user_id = $UID OR moderator_user_id = $UID",
        "read_ribbons": "user_id = $UID",
        "saved_stories": "user_id = $UID",
        "hidden_stories": "user_id = $UID",
        "suggested_titles": "user_id = $UID",
        "suggested_taggings": "user_id = $UID",
    }
    return {
        table: db.count(table, pred, {"UID": uid}) for table, pred in checks.items()
    }
