"""Lobsters-like news aggregator schema: 19 object types (paper Figure 4).

A reduced version of the open-source Lobsters Rails schema
(https://lobste.rs), keeping the tables and columns its account-deletion
policy touches. As with HotCRP, FKs into ``users`` are RESTRICT so
disguises must trace the full user footprint.
"""

from __future__ import annotations

from repro.storage.schema import Schema
from repro.storage.sql import parse_schema

__all__ = ["SCHEMA_DDL", "lobsters_schema", "schema_loc", "USER_TABLE"]

USER_TABLE = "users"

SCHEMA_DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  username TEXT PII,
  email TEXT PII,
  password_digest TEXT,
  about TEXT PII,
  karma INT NOT NULL DEFAULT 0,
  is_admin BOOL NOT NULL DEFAULT FALSE,
  is_moderator BOOL NOT NULL DEFAULT FALSE,
  deleted_at DATETIME,
  last_login DATETIME,
  invited_by_user_id INT REFERENCES users(id) ON DELETE SET NULL
);

CREATE TABLE tags (
  id INT PRIMARY KEY,
  tag TEXT NOT NULL,
  description TEXT
);

CREATE TABLE domains (
  id INT PRIMARY KEY,
  domain TEXT NOT NULL,
  is_banned BOOL NOT NULL DEFAULT FALSE
);

CREATE TABLE stories (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  domain_id INT REFERENCES domains(id),
  title TEXT NOT NULL,
  url TEXT,
  description TEXT,
  upvotes INT NOT NULL DEFAULT 0,
  downvotes INT NOT NULL DEFAULT 0,
  created_at DATETIME
);

CREATE TABLE comments (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  story_id INT NOT NULL REFERENCES stories(id),
  parent_comment_id INT REFERENCES comments(id) ON DELETE SET NULL,
  comment TEXT NOT NULL,
  upvotes INT NOT NULL DEFAULT 0,
  downvotes INT NOT NULL DEFAULT 0,
  created_at DATETIME
);

CREATE TABLE votes (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  story_id INT REFERENCES stories(id),
  comment_id INT REFERENCES comments(id) ON DELETE CASCADE,
  vote INT NOT NULL
);

CREATE TABLE taggings (
  id INT PRIMARY KEY,
  story_id INT NOT NULL REFERENCES stories(id) ON DELETE CASCADE,
  tag_id INT NOT NULL REFERENCES tags(id)
);

CREATE TABLE messages (
  id INT PRIMARY KEY,
  author_user_id INT REFERENCES users(id),
  recipient_user_id INT NOT NULL REFERENCES users(id),
  subject TEXT,
  body TEXT,
  created_at DATETIME,
  deleted_by_author BOOL NOT NULL DEFAULT FALSE,
  deleted_by_recipient BOOL NOT NULL DEFAULT FALSE
);

CREATE TABLE hats (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  granted_by_user_id INT REFERENCES users(id),
  hat TEXT NOT NULL
);

CREATE TABLE hat_requests (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  hat TEXT NOT NULL,
  comment TEXT
);

CREATE TABLE invitations (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  email TEXT PII,
  code TEXT,
  memo TEXT,
  used_at DATETIME
);

CREATE TABLE invitation_requests (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII,
  memo TEXT,
  is_verified BOOL NOT NULL DEFAULT FALSE
);

CREATE TABLE moderations (
  id INT PRIMARY KEY,
  moderator_user_id INT REFERENCES users(id),
  story_id INT REFERENCES stories(id),
  comment_id INT REFERENCES comments(id) ON DELETE SET NULL,
  target_user_id INT REFERENCES users(id),
  action TEXT,
  reason TEXT,
  created_at DATETIME
);

CREATE TABLE mod_notes (
  id INT PRIMARY KEY,
  moderator_user_id INT REFERENCES users(id),
  user_id INT NOT NULL REFERENCES users(id),
  markeddown_note TEXT,
  created_at DATETIME
);

CREATE TABLE read_ribbons (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  story_id INT NOT NULL REFERENCES stories(id) ON DELETE CASCADE,
  updated_at DATETIME
);

CREATE TABLE saved_stories (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  story_id INT NOT NULL REFERENCES stories(id) ON DELETE CASCADE
);

CREATE TABLE hidden_stories (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  story_id INT NOT NULL REFERENCES stories(id) ON DELETE CASCADE
);

CREATE TABLE suggested_titles (
  id INT PRIMARY KEY,
  story_id INT NOT NULL REFERENCES stories(id) ON DELETE CASCADE,
  user_id INT NOT NULL REFERENCES users(id),
  title TEXT NOT NULL
);

CREATE TABLE suggested_taggings (
  id INT PRIMARY KEY,
  story_id INT NOT NULL REFERENCES stories(id) ON DELETE CASCADE,
  tag_id INT NOT NULL REFERENCES tags(id),
  user_id INT NOT NULL REFERENCES users(id)
);

"""


def lobsters_schema() -> Schema:
    """Parse ``SCHEMA_DDL`` into a validated :class:`Schema`."""
    schema = Schema(parse_schema(SCHEMA_DDL))
    schema.validate()
    return schema


def schema_loc() -> int:
    """Non-blank DDL lines — the Figure 4 'Schema LoC' metric."""
    return sum(1 for line in SCHEMA_DDL.splitlines() if line.strip())
