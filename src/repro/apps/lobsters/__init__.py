"""Lobsters case study: schema (19 object types), data generator, disguise."""

from repro.apps.lobsters.app import (
    check_invariants,
    deletion_assertions,
    user_activity,
    user_footprint,
)
from repro.apps.lobsters.disguises import all_disguises, lobsters_gdpr
from repro.apps.lobsters.generate import LobstersPopulation, generate_lobsters
from repro.apps.lobsters.schema import SCHEMA_DDL, lobsters_schema, schema_loc

__all__ = [
    "SCHEMA_DDL",
    "lobsters_schema",
    "schema_loc",
    "LobstersPopulation",
    "generate_lobsters",
    "lobsters_gdpr",
    "all_disguises",
    "check_invariants",
    "user_activity",
    "deletion_assertions",
    "user_footprint",
]

from repro.apps.lobsters import workload

__all__.append("workload")
