"""Application-level operations for the Lobsters case study (paper §2)."""

from __future__ import annotations

from typing import Any

from repro.storage.database import Database
from repro.storage.query import parse_select

__all__ = ["login", "front_page", "user_profile", "post_comment", "story_thread"]


def login(db: Database, username: str, password_digest: str) -> dict[str, Any] | None:
    """The live account matching the credentials, or None."""
    rows = parse_select(
        "SELECT id, username, karma FROM users "
        "WHERE username = $U AND password_digest = $P AND deleted_at IS NULL"
    ).run(db, {"U": username, "P": password_digest})
    return rows[0] if rows else None


def front_page(db: Database, limit: int = 25) -> list[dict[str, Any]]:
    """Top stories with their author display names."""
    return parse_select(
        "SELECT s.id, s.title, s.upvotes, u.username FROM stories s "
        "JOIN users u ON s.user_id = u.id "
        "ORDER BY s.upvotes DESC, s.id LIMIT " + str(limit)
    ).run(db)


def user_profile(db: Database, uid: int) -> dict[str, Any] | None:
    """A user's public profile: about text, stories, comment count."""
    users = parse_select(
        "SELECT id, username, about, karma FROM users WHERE id = $U"
    ).run(db, {"U": uid})
    if not users:
        return None
    profile = users[0]
    profile["stories"] = parse_select(
        "SELECT id, title FROM stories WHERE user_id = $U ORDER BY id"
    ).run(db, {"U": uid})
    profile["comment_count"] = parse_select(
        "SELECT COUNT(*) FROM comments WHERE user_id = $U"
    ).run(db, {"U": uid})
    return profile


def post_comment(db: Database, uid: int, story_id: int, text: str) -> dict[str, Any]:
    """The application's normal comment write path."""
    return db.insert(
        "comments",
        {
            "id": db.next_id("comments"),
            "user_id": uid,
            "story_id": story_id,
            "comment": text,
            "created_at": 0.0,
        },
    )


def story_thread(db: Database, story_id: int) -> list[dict[str, Any]]:
    """A story's comments with commenter names and tombstone state."""
    return parse_select(
        "SELECT c.id, c.comment, u.username, u.deleted_at FROM comments c "
        "JOIN users u ON c.user_id = u.id "
        "WHERE c.story_id = $S ORDER BY c.id"
    ).run(db, {"S": story_id})
