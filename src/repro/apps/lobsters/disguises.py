"""The Lobsters-GDPR disguise: the site's actual account-deletion policy.

Lobsters keeps public contributions visible but reattributes them to a
"[deleted]" placeholder (paper §2's survey: Reddit/Lobsters' "[deleted]").
Concretely, deleting an account:

* removes the account row, private messages authored by the user, votes,
  per-user story state (ribbons, saved/hidden stories, suggestions), hats,
  hat requests, and outstanding invitations;
* keeps stories and comments, decorrelated to per-row placeholder users
  with the comment text intact (story/comment bodies are public record);
* nulls the moderator/inviter back-references so moderation history and
  the invitation tree survive without naming the user.
"""

from __future__ import annotations

from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import Default, Sequence
from repro.spec.transform import Decorrelate, Modify, Remove, named_modifier

__all__ = ["lobsters_gdpr", "all_disguises"]


def _null(pred: str, column: str) -> Modify:
    fn, label = named_modifier("null")
    return Modify(pred, column=column, fn=fn, label=label)


def lobsters_gdpr() -> DisguiseSpec:
    """Lobsters account deletion with "[deleted]"-style placeholders."""
    return DisguiseSpec(
        "Lobsters-GDPR",
        description="Account deletion; public contributions reattributed to placeholders",
        tables=[
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={
                    "username": Sequence("deleted-user-"),
                    "email": Default(None),
                    "password_digest": Default(None),
                    "about": Default(None),
                    "karma": Default(0),
                    "deleted_at": Default(0.0),
                },
            ),
            TableDisguise(
                "stories",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "comments",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise("votes", transformations=[Remove("user_id = $UID")]),
            TableDisguise(
                "messages",
                transformations=[
                    # Messages are shared objects (§2): the recipient keeps
                    # their copy, reattributed; messages *received* by the
                    # departing user are removed with their account.
                    Decorrelate(
                        "author_user_id = $UID", foreign_key="author_user_id"
                    ),
                    Remove("recipient_user_id = $UID"),
                ],
            ),
            TableDisguise("hats", transformations=[
                Remove("user_id = $UID"),
                _null("granted_by_user_id = $UID", "granted_by_user_id"),
            ]),
            TableDisguise("hat_requests", transformations=[Remove("user_id = $UID")]),
            TableDisguise("invitations", transformations=[Remove("user_id = $UID")]),
            TableDisguise(
                "moderations",
                transformations=[
                    _null("moderator_user_id = $UID", "moderator_user_id"),
                    _null("target_user_id = $UID", "target_user_id"),
                ],
            ),
            TableDisguise(
                "mod_notes",
                transformations=[
                    Remove("user_id = $UID"),
                    _null("moderator_user_id = $UID", "moderator_user_id"),
                ],
            ),
            TableDisguise("read_ribbons", transformations=[Remove("user_id = $UID")]),
            TableDisguise("saved_stories", transformations=[Remove("user_id = $UID")]),
            TableDisguise("hidden_stories", transformations=[Remove("user_id = $UID")]),
            TableDisguise(
                "suggested_titles", transformations=[Remove("user_id = $UID")]
            ),
            TableDisguise(
                "suggested_taggings", transformations=[Remove("user_id = $UID")]
            ),
        ],
    )


def all_disguises() -> list[DisguiseSpec]:
    return [lobsters_gdpr()]
