"""Case-study applications: HotCRP and Lobsters (paper §6)."""
