"""Synthetic HotCRP conference data, sized per the paper's §6 experiment.

"a HotCRP database with 430 users (30 PC members), 450 papers, and 1400
reviews" — :func:`generate_hotcrp` reproduces exactly that population at
``scale=1.0`` and scales every table linearly for the linearity benchmark
(E2). Generation is deterministic under a fixed seed.

Population model (scale 1.0):

* 430 users: contacts 1..430; the first 30 are PC members (``roles=1``).
* 450 papers with 1-3 authors each (author contacts + PaperConflict rows).
* 1400 reviews, distributed round-robin over PC members.
* Review preferences for PC members (~30 each), topic interests, watches,
  comments, ratings, documents, action log — all proportional.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.hotcrp.schema import hotcrp_schema
from repro.storage.database import Database

__all__ = ["HotcrpPopulation", "generate_hotcrp"]

_FIRST = ("Ada", "Bea", "Cyd", "Dov", "Eva", "Fay", "Gil", "Hal", "Ida", "Jun",
          "Kai", "Lia", "Mo", "Nia", "Oz", "Pia", "Quin", "Rex", "Sol", "Tia")
_LAST = ("Adams", "Baker", "Clark", "Diaz", "Evans", "Ford", "Gray", "Hahn",
         "Ito", "Jain", "Kim", "Lee", "Moss", "Ng", "Ochs", "Park", "Qi",
         "Roy", "Shaw", "Tan")
_TOPICS = ("Systems", "Networks", "Security", "Databases", "PL", "Arch",
           "HCI", "Theory", "ML", "OS")


@dataclass(frozen=True)
class HotcrpPopulation:
    """Row counts for one generated conference."""

    users: int = 430
    pc_members: int = 30
    papers: int = 450
    reviews: int = 1400

    @classmethod
    def at_scale(cls, scale: float) -> "HotcrpPopulation":
        return cls(
            users=max(4, round(430 * scale)),
            pc_members=max(2, round(30 * scale)),
            papers=max(2, round(450 * scale)),
            reviews=max(2, round(1400 * scale)),
        )


def generate_hotcrp(
    scale: float = 1.0,
    seed: int = 42,
    population: HotcrpPopulation | None = None,
) -> Database:
    """Build a populated HotCRP database.

    PC members are contacts ``1..pc_members``; they hold the reviews and
    preferences, so they are the interesting GDPR+ subjects (the paper's
    composition experiment scrubs "a PC member").
    """
    pop = population or HotcrpPopulation.at_scale(scale)
    rng = random.Random(seed)
    db = Database(hotcrp_schema())

    # -- topics and settings ----------------------------------------------------
    for topic_id, name in enumerate(_TOPICS, start=1):
        db.insert("TopicArea", {"topicId": topic_id, "topicName": name})
    db.insert("Settings", {"name": "sub_open", "value": 1, "data": None})
    db.insert("Settings", {"name": "rev_open", "value": 1, "data": None})

    # -- users -------------------------------------------------------------------
    for uid in range(1, pop.users + 1):
        first = rng.choice(_FIRST)
        last = rng.choice(_LAST)
        db.insert(
            "ContactInfo",
            {
                "contactId": uid,
                "firstName": first,
                "lastName": last,
                "email": f"{first.lower()}.{last.lower()}.{uid}@example.edu",
                "affiliation": f"University {1 + uid % 40}",
                "collaborators": f"collab-{rng.randint(1, pop.users)}",
                "country": rng.choice(("US", "DE", "JP", "BR", "IN")),
                "roles": 1 if uid <= pop.pc_members else 0,
                "disabled": False,
                "password": f"hash-{rng.getrandbits(48):012x}",
                "lastLogin": float(rng.randint(1_000, 100_000)),
            },
        )

    # -- papers, authors (conflicts), topics, documents ----------------------------
    storage_id = 1
    conflict_id = 1
    paper_topic_id = 1
    option_id = 1
    for pid in range(1, pop.papers + 1):
        # Authors are non-PC contacts where possible, mirroring a real PC.
        n_authors = rng.randint(1, 3)
        author_pool = range(pop.pc_members + 1, pop.users + 1)
        authors = rng.sample(list(author_pool), min(n_authors, len(author_pool)))
        db.insert(
            "Paper",
            {
                "paperId": pid,
                "title": f"Paper {pid}: {rng.choice(_TOPICS)} considered harmful",
                "abstract": f"Abstract of paper {pid}.",
                "authorInformation": "; ".join(f"contact {a}" for a in authors),
                "outcome": 0,
                "leadContactId": rng.randint(1, pop.pc_members) if rng.random() < 0.5 else None,
                "shepherdContactId": None,
                "managerContactId": None,
                "timeSubmitted": float(rng.randint(1_000, 50_000)),
            },
        )
        for author in authors:
            db.insert(
                "PaperConflict",
                {
                    "paperConflictId": conflict_id,
                    "paperId": pid,
                    "contactId": author,
                    "conflictType": 9,  # CONFLICT_CONTACTAUTHOR
                },
            )
            conflict_id += 1
        for topic in rng.sample(range(1, len(_TOPICS) + 1), rng.randint(1, 3)):
            db.insert(
                "PaperTopic",
                {"paperTopicId": paper_topic_id, "paperId": pid, "topicId": topic},
            )
            paper_topic_id += 1
        db.insert(
            "PaperStorage",
            {
                "paperStorageId": storage_id,
                "paperId": pid,
                "mimetype": "application/pdf",
                "sha1": f"{rng.getrandbits(64):016x}",
                "size": rng.randint(50_000, 2_000_000),
                "timestamp": float(rng.randint(1_000, 50_000)),
            },
        )
        db.insert(
            "DocumentLink",
            {"linkId": storage_id, "paperId": pid, "documentId": storage_id, "linkType": 0},
        )
        storage_id += 1
        if rng.random() < 0.2:
            db.insert(
                "PaperOption",
                {
                    "optionId": option_id,
                    "paperId": pid,
                    "optionName": "artifact",
                    "value": 1,
                    "data": None,
                },
            )
            option_id += 1

    # -- reviews: round-robin over the PC ----------------------------------------------
    for rid in range(1, pop.reviews + 1):
        reviewer = 1 + (rid - 1) % pop.pc_members
        pid = 1 + (rid - 1) % pop.papers
        db.insert(
            "PaperReview",
            {
                "reviewId": rid,
                "paperId": pid,
                "contactId": reviewer,
                "requestedBy": 1 + rng.randrange(pop.pc_members) if rng.random() < 0.3 else None,
                "reviewType": 2,
                "reviewSubmitted": float(rng.randint(1_000, 50_000)),
                "overAllMerit": rng.randint(1, 5),
                "reviewText": f"Review {rid} of paper {pid}. Sound but incremental.",
            },
        )

    # -- PC activity: preferences, interests, watches ------------------------------------
    pref_id = 1
    interest_id = 1
    watch_id = 1
    for member in range(1, pop.pc_members + 1):
        for pid in rng.sample(range(1, pop.papers + 1), min(30, pop.papers)):
            db.insert(
                "PaperReviewPreference",
                {
                    "prefId": pref_id,
                    "paperId": pid,
                    "contactId": member,
                    "preference": rng.randint(-20, 20),
                    "expertise": rng.randint(-2, 2),
                },
            )
            pref_id += 1
        for topic in rng.sample(range(1, len(_TOPICS) + 1), 3):
            db.insert(
                "TopicInterest",
                {
                    "interestId": interest_id,
                    "contactId": member,
                    "topicId": topic,
                    "interest": rng.choice((-2, 2)),
                },
            )
            interest_id += 1
        for pid in rng.sample(range(1, pop.papers + 1), min(3, pop.papers)):
            db.insert(
                "PaperWatch",
                {"watchId": watch_id, "paperId": pid, "contactId": member, "watch": 1},
            )
            watch_id += 1

    # -- comments and review ratings (PC discussion) ---------------------------------------
    n_comments = max(1, pop.reviews // 3)
    for cid in range(1, n_comments + 1):
        db.insert(
            "PaperComment",
            {
                "commentId": cid,
                "paperId": 1 + (cid - 1) % pop.papers,
                "contactId": 1 + rng.randrange(pop.pc_members),
                "comment": f"Comment {cid}: I lean accept.",
                "commentType": 0,
                "timeModified": float(rng.randint(1_000, 50_000)),
            },
        )
    n_ratings = max(1, pop.reviews // 2)
    for rating_id in range(1, n_ratings + 1):
        db.insert(
            "ReviewRating",
            {
                "ratingId": rating_id,
                "reviewId": 1 + rng.randrange(pop.reviews),
                "contactId": 1 + rng.randrange(pop.pc_members),
                "rating": rng.choice((-1, 1)),
            },
        )

    # -- requests, refusals, capabilities, logs ------------------------------------------------
    n_requests = max(1, pop.reviews // 20)
    for request_id in range(1, n_requests + 1):
        db.insert(
            "ReviewRequest",
            {
                "requestId": request_id,
                "paperId": 1 + rng.randrange(pop.papers),
                "email": f"external{request_id}@example.org",
                "firstName": rng.choice(_FIRST),
                "lastName": rng.choice(_LAST),
                "requestedBy": 1 + rng.randrange(pop.pc_members),
            },
        )
        db.insert(
            "PaperReviewRefused",
            {
                "refusedId": request_id,
                "paperId": 1 + rng.randrange(pop.papers),
                "contactId": 1 + rng.randrange(pop.users),
                "requestedBy": 1 + rng.randrange(pop.pc_members),
                "reason": "conflict of interest",
            },
        )
    for cap_id in range(1, max(2, pop.users // 20)):
        db.insert(
            "Capability",
            {
                "capId": cap_id,
                "capabilityType": 1,
                "contactId": 1 + rng.randrange(pop.users),
                "paperId": 1 + rng.randrange(pop.papers),
                "salt": f"{rng.getrandbits(64):016x}",
                "timeExpires": float(rng.randint(50_000, 99_000)),
            },
        )
    n_log = max(2, pop.users)
    for log_id in range(1, n_log + 1):
        actor = 1 + rng.randrange(pop.users)
        db.insert(
            "ActionLog",
            {
                "logId": log_id,
                "contactId": actor,
                "destContactId": None,
                "paperId": 1 + rng.randrange(pop.papers) if rng.random() < 0.7 else None,
                "ipaddr": f"10.{actor % 256}.{rng.randrange(256)}.{rng.randrange(256)}",
                "action": rng.choice(("login", "review_update", "paper_view")),
                "timestamp": float(rng.randint(1_000, 99_000)),
            },
        )
    for mail_id in range(1, max(2, pop.papers // 10)):
        db.insert(
            "MailLog",
            {
                "mailId": mail_id,
                "recipients": f"contact{1 + rng.randrange(pop.users)}@example.edu",
                "cc": None,
                "subject": "Review reminder",
                "emailBody": "Please submit your reviews.",
                "timestamp": float(rng.randint(1_000, 99_000)),
            },
        )
    for formula_id in range(1, 4):
        db.insert(
            "Formula",
            {
                "formulaId": formula_id,
                "name": f"formula{formula_id}",
                "expression": "avg(OveMer)",
                "createdBy": 1 + rng.randrange(pop.pc_members),
            },
        )
    for anno_id, tag in enumerate(("accept", "reject", "discuss"), start=1):
        db.insert("PaperTagAnno", {"annoId": anno_id, "tag": tag, "heading": tag.title()})
    tag_id = 1
    for pid in range(1, pop.papers + 1):
        if rng.random() < 0.3:
            db.insert(
                "PaperTag",
                {
                    "tagId": tag_id,
                    "paperId": pid,
                    "tag": rng.choice(("accept", "reject", "discuss")),
                    "tagIndex": None,
                },
            )
            tag_id += 1

    db.assert_integrity()
    db.stats.reset()
    return db
