"""HotCRP case study: schema (25 object types), data generator, disguises."""

from repro.apps.hotcrp.app import (
    check_invariants,
    scrub_assertions,
    user_activity,
    user_footprint,
)
from repro.apps.hotcrp.disguises import (
    all_disguises,
    hotcrp_confanon,
    hotcrp_gdpr,
    hotcrp_gdpr_plus,
)
from repro.apps.hotcrp.generate import HotcrpPopulation, generate_hotcrp
from repro.apps.hotcrp.schema import SCHEMA_DDL, hotcrp_schema, schema_loc

__all__ = [
    "SCHEMA_DDL",
    "hotcrp_schema",
    "schema_loc",
    "HotcrpPopulation",
    "generate_hotcrp",
    "hotcrp_gdpr",
    "hotcrp_gdpr_plus",
    "hotcrp_confanon",
    "all_disguises",
    "check_invariants",
    "user_activity",
    "scrub_assertions",
    "user_footprint",
]

from repro.apps.hotcrp import workload

__all__.append("workload")
