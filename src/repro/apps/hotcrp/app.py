"""Application-level helpers for the HotCRP case study.

These model the *application's* view of the database: invariants it relies
on (referential integrity plus HotCRP-specific ones) and the activity
signal the expiration/decay schedulers consume. Disguises must preserve
``check_invariants``; the case-study tests assert it after every apply,
reveal, and composition.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.assertions import PrivacyAssertion
from repro.storage.database import Database

__all__ = [
    "check_invariants",
    "user_activity",
    "scrub_assertions",
    "user_footprint",
]


def check_invariants(db: Database) -> list[str]:
    """HotCRP invariants beyond referential integrity. Empty list = clean.

    * every review belongs to an existing, non-NULL contact and paper
      (implied by NOT NULL + FK, but re-checked explicitly);
    * placeholder-style accounts (no email) must be disabled, so they can
      never log in (§3: "placeholder users should be disabled");
    * review ratings reference live reviews.
    """
    problems = list(db.check_integrity())
    for contact in db.select("ContactInfo", "email IS NULL"):
        if not contact["disabled"]:
            problems.append(
                f"ContactInfo {contact['contactId']} has no email but is enabled"
            )
    for review in db.select("PaperReview"):
        if review["contactId"] is None:
            problems.append(f"PaperReview {review['reviewId']} has no contact")
    return problems


def user_activity(db: Database) -> Mapping[Any, float]:
    """Last-login per user, for expiration/decay policies (§2)."""
    return {
        row["contactId"]: row["lastLogin"] if row["lastLogin"] is not None else 0.0
        for row in db.select("ContactInfo", "disabled = FALSE")
    }


def scrub_assertions() -> list[PrivacyAssertion]:
    """Privacy goals of user scrubbing, as end-state assertions (§7).

    "user no longer has any reviews" is the paper's own example.
    """
    return [
        PrivacyAssertion("account deleted", table="ContactInfo", pred="contactId = $UID"),
        PrivacyAssertion("no reviews", table="PaperReview", pred="contactId = $UID"),
        PrivacyAssertion("no preferences", table="PaperReviewPreference", pred="contactId = $UID"),
        PrivacyAssertion("no authorships", table="PaperConflict", pred="contactId = $UID"),
        PrivacyAssertion("no comments", table="PaperComment", pred="contactId = $UID"),
        PrivacyAssertion("no watches", table="PaperWatch", pred="contactId = $UID"),
    ]


def user_footprint(db: Database, uid: int) -> dict[str, int]:
    """How many rows in each user-linked table mention *uid* — the tracing
    a developer would otherwise do by hand (§2)."""
    checks = {
        "ContactInfo": "contactId = $UID",
        "PaperConflict": "contactId = $UID",
        "PaperReview": "contactId = $UID OR requestedBy = $UID",
        "PaperReviewPreference": "contactId = $UID",
        "PaperReviewRefused": "contactId = $UID OR requestedBy = $UID",
        "ReviewRequest": "requestedBy = $UID",
        "ReviewRating": "contactId = $UID",
        "PaperComment": "contactId = $UID",
        "TopicInterest": "contactId = $UID",
        "PaperWatch": "contactId = $UID",
        "Capability": "contactId = $UID",
        "ActionLog": "contactId = $UID OR destContactId = $UID",
        "Formula": "createdBy = $UID",
        "Paper": (
            "leadContactId = $UID OR shepherdContactId = $UID "
            "OR managerContactId = $UID"
        ),
    }
    return {
        table: db.count(table, pred, {"UID": uid}) for table, pred in checks.items()
    }
