"""Application-level operations for the HotCRP case study.

Privacy transformations "must not compromise application functionality"
(paper §2). These functions model the conference site's actual behaviour —
login, the paper list, a reviewer dashboard, submitting a review — using
the storage engine's query layer, so the case-study tests can assert that
the application keeps working across disguises:

* the front page still lists every paper with its review count after a
  user scrub (reviews were retained, §3);
* placeholder users can never log in (they are disabled and have no
  email/password);
* a scrubbed reviewer's dashboard is empty, everyone else's is intact.
"""

from __future__ import annotations

from typing import Any

from repro.storage.database import Database
from repro.storage.query import parse_select

__all__ = [
    "login",
    "front_page",
    "reviewer_dashboard",
    "submit_review",
    "paper_discussion",
]


def login(db: Database, email: str, password: str) -> dict[str, Any] | None:
    """The account matching (email, password), if enabled; else None."""
    rows = parse_select(
        "SELECT contactId, firstName, lastName, roles FROM ContactInfo "
        "WHERE email = $E AND password = $P AND disabled = FALSE"
    ).run(db, {"E": email, "P": password})
    return rows[0] if rows else None


def front_page(db: Database, limit: int = 50) -> list[dict[str, Any]]:
    """Submitted papers, most recent first, with their review counts."""
    papers = parse_select(
        "SELECT paperId, title FROM Paper "
        "WHERE timeSubmitted IS NOT NULL "
        "ORDER BY timeSubmitted DESC, paperId LIMIT $L".replace("$L", str(limit))
    ).run(db)
    for paper in papers:
        paper["reviews"] = parse_select(
            "SELECT COUNT(*) FROM PaperReview WHERE paperId = $P"
        ).run(db, {"P": paper["paperId"]})
    return papers


def reviewer_dashboard(db: Database, uid: int) -> dict[str, Any]:
    """What a logged-in reviewer sees: their reviews and preferences."""
    reviews = parse_select(
        "SELECT r.reviewId, r.paperId, p.title, r.overAllMerit "
        "FROM PaperReview r JOIN Paper p ON r.paperId = p.paperId "
        "WHERE r.contactId = $U ORDER BY r.reviewId"
    ).run(db, {"U": uid})
    preferences = parse_select(
        "SELECT paperId, preference FROM PaperReviewPreference "
        "WHERE contactId = $U ORDER BY paperId"
    ).run(db, {"U": uid})
    return {"reviews": reviews, "preferences": preferences}


def submit_review(
    db: Database, uid: int, paper_id: int, merit: int, text: str
) -> dict[str, Any]:
    """Create a review (the application's normal write path)."""
    return db.insert(
        "PaperReview",
        {
            "reviewId": db.next_id("PaperReview"),
            "paperId": paper_id,
            "contactId": uid,
            "reviewType": 2,
            "reviewSubmitted": 1.0,
            "overAllMerit": merit,
            "reviewText": text,
        },
    )


def paper_discussion(db: Database, paper_id: int) -> list[dict[str, Any]]:
    """Comments on a paper with each commenter's display name."""
    return parse_select(
        "SELECT c.commentId, c.comment, u.firstName, u.lastName, u.disabled "
        "FROM PaperComment c JOIN ContactInfo u ON c.contactId = u.contactId "
        "WHERE c.paperId = $P ORDER BY c.commentId"
    ).run(db, {"P": paper_id})
