"""HotCRP-like conference review schema: 25 object types (paper Figure 4).

A faithful subset of HotCRP's MySQL schema, reduced to the columns the
disguises and the evaluation touch. Foreign keys into ``ContactInfo`` are
RESTRICT by default so a disguise that removes a user *must* address every
referencing table — exactly the "extensive tracing of user identities
through application data schemas" burden (§2) the framework absorbs.
``ReviewRating.reviewId`` cascades: deleting a review takes its ratings
with it (the engine vaults cascaded rows, keeping removal reversible).

``SCHEMA_DDL`` is the source of truth; :func:`hotcrp_schema` parses it.
Its line count is the "Schema LoC" column of the Figure 4 reproduction.
"""

from __future__ import annotations

from repro.storage.schema import Schema
from repro.storage.sql import parse_schema

__all__ = ["SCHEMA_DDL", "hotcrp_schema", "schema_loc", "USER_TABLE"]

USER_TABLE = "ContactInfo"

SCHEMA_DDL = """
CREATE TABLE ContactInfo (
  contactId INT PRIMARY KEY,
  firstName TEXT PII,
  lastName TEXT PII,
  email TEXT PII,
  affiliation TEXT PII,
  collaborators TEXT PII,
  country TEXT,
  roles INT NOT NULL DEFAULT 0,
  disabled BOOL NOT NULL DEFAULT FALSE,
  password TEXT,
  lastLogin DATETIME
);

CREATE TABLE Settings (
  name TEXT PRIMARY KEY,
  value INT,
  data TEXT
);

CREATE TABLE TopicArea (
  topicId INT PRIMARY KEY,
  topicName TEXT NOT NULL
);

CREATE TABLE Paper (
  paperId INT PRIMARY KEY,
  title TEXT NOT NULL,
  abstract TEXT,
  authorInformation TEXT PII,
  outcome INT NOT NULL DEFAULT 0,
  leadContactId INT REFERENCES ContactInfo(contactId),
  shepherdContactId INT REFERENCES ContactInfo(contactId),
  managerContactId INT REFERENCES ContactInfo(contactId),
  timeSubmitted DATETIME
);

CREATE TABLE PaperConflict (
  paperConflictId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  conflictType INT NOT NULL DEFAULT 0
);

CREATE TABLE PaperReview (
  reviewId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  requestedBy INT REFERENCES ContactInfo(contactId),
  reviewType INT NOT NULL DEFAULT 1,
  reviewSubmitted DATETIME,
  overAllMerit INT,
  reviewText TEXT
);

CREATE TABLE PaperReviewPreference (
  prefId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  preference INT NOT NULL DEFAULT 0,
  expertise INT
);

CREATE TABLE PaperReviewRefused (
  refusedId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  requestedBy INT REFERENCES ContactInfo(contactId),
  reason TEXT
);

CREATE TABLE ReviewRequest (
  requestId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  email TEXT PII,
  firstName TEXT PII,
  lastName TEXT PII,
  requestedBy INT REFERENCES ContactInfo(contactId)
);

CREATE TABLE ReviewRating (
  ratingId INT PRIMARY KEY,
  reviewId INT NOT NULL REFERENCES PaperReview(reviewId) ON DELETE CASCADE,
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  rating INT NOT NULL DEFAULT 0
);

CREATE TABLE PaperComment (
  commentId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  comment TEXT,
  commentType INT NOT NULL DEFAULT 0,
  timeModified DATETIME
);

CREATE TABLE PaperTag (
  tagId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  tag TEXT NOT NULL,
  tagIndex REAL
);

CREATE TABLE PaperTagAnno (
  annoId INT PRIMARY KEY,
  tag TEXT NOT NULL,
  heading TEXT
);

CREATE TABLE PaperTopic (
  paperTopicId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  topicId INT NOT NULL REFERENCES TopicArea(topicId)
);

CREATE TABLE TopicInterest (
  interestId INT PRIMARY KEY,
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  topicId INT NOT NULL REFERENCES TopicArea(topicId),
  interest INT NOT NULL DEFAULT 0
);

CREATE TABLE PaperWatch (
  watchId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  watch INT NOT NULL DEFAULT 0
);

CREATE TABLE PaperStorage (
  paperStorageId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  mimetype TEXT,
  sha1 TEXT,
  size INT NOT NULL DEFAULT 0,
  timestamp DATETIME
);

CREATE TABLE DocumentLink (
  linkId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  documentId INT NOT NULL REFERENCES PaperStorage(paperStorageId),
  linkType INT NOT NULL DEFAULT 0
);

CREATE TABLE FilteredDocument (
  filterId INT PRIMARY KEY,
  inDocId INT NOT NULL REFERENCES PaperStorage(paperStorageId),
  outDocId INT NOT NULL REFERENCES PaperStorage(paperStorageId)
);

CREATE TABLE Capability (
  capId INT PRIMARY KEY,
  capabilityType INT NOT NULL DEFAULT 0,
  contactId INT NOT NULL REFERENCES ContactInfo(contactId),
  paperId INT REFERENCES Paper(paperId),
  salt TEXT,
  timeExpires DATETIME
);

CREATE TABLE ActionLog (
  logId INT PRIMARY KEY,
  contactId INT REFERENCES ContactInfo(contactId),
  destContactId INT REFERENCES ContactInfo(contactId),
  paperId INT REFERENCES Paper(paperId),
  ipaddr TEXT PII,
  action TEXT,
  timestamp DATETIME
);

CREATE TABLE MailLog (
  mailId INT PRIMARY KEY,
  recipients TEXT PII,
  cc TEXT PII,
  subject TEXT,
  emailBody TEXT,
  timestamp DATETIME
);

CREATE TABLE DeletedContactInfo (
  deletedContactId INT PRIMARY KEY,
  contactId INT NOT NULL,
  firstName TEXT PII,
  lastName TEXT PII,
  email TEXT PII,
  deletedAt DATETIME
);

CREATE TABLE Formula (
  formulaId INT PRIMARY KEY,
  name TEXT NOT NULL,
  expression TEXT,
  createdBy INT REFERENCES ContactInfo(contactId)
);

CREATE TABLE PaperOption (
  optionId INT PRIMARY KEY,
  paperId INT NOT NULL REFERENCES Paper(paperId),
  optionName TEXT NOT NULL,
  value INT,
  data TEXT
);
"""


def hotcrp_schema() -> Schema:
    """Parse ``SCHEMA_DDL`` into a validated :class:`Schema`."""
    schema = Schema(parse_schema(SCHEMA_DDL))
    schema.validate()
    return schema


def schema_loc() -> int:
    """Non-blank DDL lines — the Figure 4 'Schema LoC' metric."""
    return sum(1 for line in SCHEMA_DDL.splitlines() if line.strip())
