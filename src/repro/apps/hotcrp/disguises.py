"""The three HotCRP disguises evaluated in the paper (§3, §6).

* ``HotCRP-GDPR`` — HotCRP's *current* account-deletion policy: when a
  user deletes their account, "the HotCRP code transitively deletes all of
  the user's data, including their reviews" (§3).
* ``HotCRP-GDPR+`` — *user scrubbing* (§3): delete the account, the data
  only relevant to the user (preferences, watches, capabilities), and the
  contact-author relationships, but *retain* reviews and comments by
  decorrelating them to per-row anonymous placeholders (Figure 2).
* ``HotCRP-ConfAnon`` — anonymize the entire conference: scrub all user
  PII and decorrelate every review, comment, and rating from its author.

Every foreign key into ``ContactInfo`` is addressed (the schema is
RESTRICT), so applying these disguises preserves referential integrity by
construction.
"""

from __future__ import annotations

from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import Default, FakeName
from repro.spec.transform import Decorrelate, Modify, Remove, named_modifier

__all__ = ["hotcrp_gdpr", "hotcrp_gdpr_plus", "hotcrp_confanon", "all_disguises"]


def _placeholder_contact() -> dict:
    """Placeholder users are disabled and carry no PII (paper §3: "suitable
    default values; ... placeholder users should be disabled")."""
    return {
        "firstName": FakeName(),
        "lastName": Default("Placeholder"),
        "email": Default(None),
        "affiliation": Default(None),
        "collaborators": Default(None),
        "password": Default(None),
        "disabled": Default(True),
    }


def _null(pred: str, column: str) -> Modify:
    fn, label = named_modifier("null")
    return Modify(pred, column=column, fn=fn, label=label)


def _redact(pred: str, column: str) -> Modify:
    fn, label = named_modifier("redact")
    return Modify(pred, column=column, fn=fn, label=label)


def _anon_email(value):
    """Replace an address with a stable, undeliverable token.

    Live (enabled) accounts must keep *some* email — HotCRP treats
    email-less accounts as disabled placeholders — so anonymization maps
    to a synthetic address rather than NULL.
    """
    if value is None:
        return None
    token = format(hash(("hotcrp-anon", value)) & 0xFFFFFFFFFF, "010x")
    return f"{token}@anon.invalid"


def hotcrp_gdpr() -> DisguiseSpec:
    """Current HotCRP account deletion: transitively delete everything."""
    return DisguiseSpec(
        "HotCRP-GDPR",
        description="Transitive deletion of the user's account and all contributions",
        tables=[
            TableDisguise(
                "Paper",
                transformations=[
                    _null("leadContactId = $UID", "leadContactId"),
                    _null("shepherdContactId = $UID", "shepherdContactId"),
                    _null("managerContactId = $UID", "managerContactId"),
                ],
            ),
            TableDisguise(
                "PaperConflict", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise(
                # Ratings of the user's reviews cascade with the review;
                # ratings *by* the user are removed explicitly.
                "ReviewRating", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise(
                "PaperReview",
                transformations=[
                    Remove("contactId = $UID"),
                    _null("requestedBy = $UID", "requestedBy"),
                ],
            ),
            TableDisguise(
                "PaperReviewPreference", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise(
                "PaperReviewRefused",
                transformations=[
                    Remove("contactId = $UID"),
                    _null("requestedBy = $UID", "requestedBy"),
                ],
            ),
            TableDisguise(
                "ReviewRequest", transformations=[Remove("requestedBy = $UID")]
            ),
            TableDisguise(
                "PaperComment", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise(
                "TopicInterest", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise("PaperWatch", transformations=[Remove("contactId = $UID")]),
            TableDisguise("Capability", transformations=[Remove("contactId = $UID")]),
            TableDisguise(
                "ActionLog",
                transformations=[
                    _null("contactId = $UID", "contactId"),
                    _null("destContactId = $UID", "destContactId"),
                    _redact("contactId IS NULL AND ipaddr LIKE '10.%'", "ipaddr"),
                ],
            ),
            TableDisguise("Formula", transformations=[_null("createdBy = $UID", "createdBy")]),
            TableDisguise("ContactInfo", transformations=[Remove("contactId = $UID")]),
        ],
    )


def hotcrp_gdpr_plus() -> DisguiseSpec:
    """User scrubbing (§3): delete the user, retain decorrelated reviews.

    Steps match the paper's enumeration: (1) delete the account,
    (2) delete data only relevant to the user, (3) delete contact-author
    relationships, (4)+(5) decorrelate retained contributions to fresh
    placeholder users.
    """
    return DisguiseSpec(
        "HotCRP-GDPR+",
        description="User scrubbing: delete the user, keep reviews via placeholders",
        tables=[
            TableDisguise(
                "ContactInfo",
                transformations=[Remove("contactId = $UID")],
                generate_placeholder=_placeholder_contact(),
            ),
            TableDisguise(
                "Paper",
                transformations=[
                    _null("leadContactId = $UID", "leadContactId"),
                    _null("shepherdContactId = $UID", "shepherdContactId"),
                    _null("managerContactId = $UID", "managerContactId"),
                ],
            ),
            TableDisguise(
                "PaperConflict", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise(
                "PaperReview",
                transformations=[
                    Decorrelate("contactId = $UID", foreign_key="contactId"),
                    _null("requestedBy = $UID", "requestedBy"),
                ],
            ),
            TableDisguise(
                "PaperReviewPreference", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise(
                "PaperReviewRefused",
                transformations=[
                    Remove("contactId = $UID"),
                    _null("requestedBy = $UID", "requestedBy"),
                ],
            ),
            TableDisguise(
                "ReviewRequest", transformations=[Remove("requestedBy = $UID")]
            ),
            TableDisguise(
                "ReviewRating",
                transformations=[Decorrelate("contactId = $UID", foreign_key="contactId")],
            ),
            TableDisguise(
                "PaperComment",
                transformations=[Decorrelate("contactId = $UID", foreign_key="contactId")],
            ),
            TableDisguise(
                "TopicInterest", transformations=[Remove("contactId = $UID")]
            ),
            TableDisguise("PaperWatch", transformations=[Remove("contactId = $UID")]),
            TableDisguise("Capability", transformations=[Remove("contactId = $UID")]),
            TableDisguise(
                "ActionLog",
                transformations=[
                    _null("contactId = $UID", "contactId"),
                    _null("destContactId = $UID", "destContactId"),
                ],
            ),
            TableDisguise("Formula", transformations=[_null("createdBy = $UID", "createdBy")]),
        ],
    )


def hotcrp_confanon() -> DisguiseSpec:
    """Conference anonymization: scrub all users, decorrelate everything."""
    return DisguiseSpec(
        "HotCRP-ConfAnon",
        description="Anonymize all conference data (reversible, global)",
        tables=[
            TableDisguise(
                "ContactInfo",
                owner_column="contactId",
                generate_placeholder=_placeholder_contact(),
                transformations=[
                    _redact("TRUE", "firstName"),
                    _redact("TRUE", "lastName"),
                    Modify("email IS NOT NULL", column="email", fn=_anon_email, label="anon_email"),
                    _null("TRUE", "affiliation"),
                    _null("TRUE", "collaborators"),
                ],
            ),
            TableDisguise(
                "Paper",
                transformations=[
                    _redact("authorInformation IS NOT NULL", "authorInformation"),
                    _null("leadContactId IS NOT NULL", "leadContactId"),
                    _null("shepherdContactId IS NOT NULL", "shepherdContactId"),
                    _null("managerContactId IS NOT NULL", "managerContactId"),
                ],
            ),
            TableDisguise(
                "PaperReview",
                owner_column="contactId",
                transformations=[
                    Decorrelate("TRUE", foreign_key="contactId"),
                    _null("requestedBy IS NOT NULL", "requestedBy"),
                ],
            ),
            TableDisguise(
                "PaperComment",
                owner_column="contactId",
                transformations=[Decorrelate("TRUE", foreign_key="contactId")],
            ),
            TableDisguise(
                "ReviewRating",
                owner_column="contactId",
                transformations=[Decorrelate("TRUE", foreign_key="contactId")],
            ),
            TableDisguise(
                "PaperReviewPreference",
                owner_column="contactId",
                transformations=[Remove("TRUE")],
            ),
            TableDisguise(
                "TopicInterest",
                owner_column="contactId",
                transformations=[Remove("TRUE")],
            ),
            TableDisguise(
                "ReviewRequest",
                transformations=[
                    _redact("TRUE", "email"),
                    _redact("TRUE", "firstName"),
                    _redact("TRUE", "lastName"),
                    _null("requestedBy IS NOT NULL", "requestedBy"),
                ],
            ),
            TableDisguise(
                "ActionLog",
                owner_column="contactId",
                transformations=[
                    _redact("ipaddr IS NOT NULL", "ipaddr"),
                    _null("contactId IS NOT NULL", "contactId"),
                    _null("destContactId IS NOT NULL", "destContactId"),
                ],
            ),
            TableDisguise(
                "MailLog",
                transformations=[
                    _redact("recipients IS NOT NULL", "recipients"),
                    _null("cc IS NOT NULL", "cc"),
                ],
            ),
        ],
    )


def all_disguises() -> list[DisguiseSpec]:
    return [hotcrp_gdpr(), hotcrp_gdpr_plus(), hotcrp_confanon()]
