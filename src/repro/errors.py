"""Exception hierarchy for the ``repro`` data-disguising framework.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish storage-level problems from disguise-level ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for errors raised by the relational storage engine."""


class SchemaError(StorageError):
    """A schema definition is invalid (bad column, duplicate table, ...)."""


class TypeMismatchError(StorageError):
    """A value does not conform to its declared column type."""


class ConstraintError(StorageError):
    """A constraint (primary key, NOT NULL, uniqueness) was violated."""


class ForeignKeyError(ConstraintError):
    """A foreign-key constraint was violated (dangling reference)."""


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist."""


class UnknownColumnError(StorageError):
    """A predicate or statement referenced a column that does not exist."""


class NoSuchRowError(StorageError):
    """A row lookup by primary key found nothing."""


class TransactionError(StorageError):
    """Invalid transaction usage (nested begin, commit without begin, ...)."""


class ParseError(StorageError):
    """A SQL fragment (WHERE clause or DDL) could not be parsed."""


class SpecError(ReproError):
    """A disguise specification is malformed or inconsistent with a schema."""


class DisguiseError(ReproError):
    """Applying or revealing a disguise failed."""


class AssertionFailure(DisguiseError):
    """A privacy-goal assertion did not hold after disguise application."""


class VaultError(ReproError):
    """A vault operation failed (missing entry, locked vault, bad key)."""


class CryptoError(ReproError):
    """An encryption, decryption, or secret-sharing operation failed."""


class IntegrityViolation(StorageError):
    """The referential-integrity checker found a dangling foreign key."""


class ServiceError(ReproError):
    """Base class for errors raised by the concurrent disguise service."""


class LockTimeoutError(ServiceError):
    """A lock request waited longer than its timeout."""


class DeadlockError(ServiceError):
    """Granting a lock request would close a cycle in the wait-for graph.

    The requester is the victim: it should roll back, release its locks,
    and retry. ``cycle`` names the transactions on the detected cycle.
    """

    def __init__(self, message: str, cycle: tuple = ()) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)


class JobError(ServiceError):
    """A job queue operation failed (unknown job, invalid transition)."""


class QueueCorruptionError(ServiceError):
    """The job-queue journal is damaged somewhere other than its torn tail."""


class ShardError(ReproError):
    """A sharded-engine operation failed (bad shard count, routing misuse)."""
