"""Placeholder-value generators for decorrelation.

When a disguise decorrelates a row from its owner, the engine creates a
fresh *placeholder* row in the parent table (paper Figure 2: "Axolotl",
"Fossa"). The disguise specification describes how to populate each
placeholder column (Figure 3's ``generate_placeholder`` block):

    generate_placeholder: [
        ("name",     Random),
        ("email",    Default(None)),
        ("disabled", Default(true)),
    ]

Generators are deterministic given the engine's seeded RNG, so disguise
application is reproducible in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SpecError
from repro.storage.schema import Column
from repro.storage.types import ColumnType

__all__ = [
    "GenContext",
    "Generator",
    "RandomValue",
    "Default",
    "Sequence",
    "FakeName",
    "FakeEmail",
    "Compute",
    "generator_from_config",
]


@dataclass
class GenContext:
    """Everything a generator may draw on: RNG, target column, a counter.

    ``counter`` increments once per placeholder row created during one
    disguise application, so :class:`Sequence` values never collide within
    a disguise.
    """

    rng: random.Random
    column: Column
    counter: int


class Generator:
    """Base class: produce a value for one placeholder column."""

    def generate(self, ctx: GenContext) -> Any:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line rendering used by spec LoC accounting and debugging."""
        return type(self).__name__

    def config(self) -> Any:
        """The document form :func:`generator_from_config` parses back.

        Raises :class:`~repro.errors.SpecError` for generators with no
        document form (:class:`Compute` closures) — serializing a spec
        containing one is a caller error, not silent data loss.
        """
        raise SpecError(
            f"generator {self.describe()} has no document form; "
            "programmatic specs stay in Python"
        )


@dataclass(frozen=True)
class RandomValue(Generator):
    """A random value appropriate for the column type.

    TEXT columns get a 12-character lowercase token; INTEGER columns a
    value in ``[lo, hi]``; BOOL a coin flip; REAL a uniform [0, 1).
    """

    lo: int = 1_000_000
    hi: int = 9_999_999

    def generate(self, ctx: GenContext) -> Any:
        ctype = ctx.column.ctype
        if ctype is ColumnType.TEXT:
            alphabet = "abcdefghijklmnopqrstuvwxyz"
            return "".join(ctx.rng.choice(alphabet) for _ in range(12))
        if ctype is ColumnType.INTEGER:
            return ctx.rng.randint(self.lo, self.hi)
        if ctype is ColumnType.BOOL:
            return bool(ctx.rng.getrandbits(1))
        if ctype is ColumnType.REAL:
            return ctx.rng.random()
        if ctype is ColumnType.DATETIME:
            return float(ctx.rng.randint(0, 2**31))
        raise SpecError(f"Random cannot generate a {ctype.value} value")

    def describe(self) -> str:
        return "Random"

    def config(self) -> Any:
        return ["random", self.lo, self.hi]


@dataclass(frozen=True)
class Default(Generator):
    """A fixed value, e.g. ``Default(None)`` or ``Default(True)``."""

    value: Any = None

    def generate(self, ctx: GenContext) -> Any:
        return self.value

    def describe(self) -> str:
        return f"Default({self.value!r})"

    def config(self) -> Any:
        return ["default", self.value]


@dataclass(frozen=True)
class Sequence(Generator):
    """``prefix`` + per-disguise counter, e.g. ``anon-1``, ``anon-2``."""

    prefix: str = "anon-"

    def generate(self, ctx: GenContext) -> Any:
        text = f"{self.prefix}{ctx.counter}"
        if ctx.column.ctype is ColumnType.INTEGER:
            return ctx.counter
        return text

    def describe(self) -> str:
        return f"Sequence({self.prefix!r})"

    def config(self) -> Any:
        return ["sequence", self.prefix]


_ADJECTIVES = (
    "amber", "brisk", "coral", "dapper", "eager", "fuzzy", "gentle", "hazel",
    "ivory", "jolly", "keen", "lively", "mellow", "noble", "opal", "plucky",
    "quiet", "rustic", "sleek", "tidy", "umber", "vivid", "wistful", "zesty",
)

_ANIMALS = (
    "axolotl", "badger", "capybara", "dugong", "echidna", "fossa", "gecko",
    "heron", "ibex", "jackal", "kudu", "lemur", "marmot", "numbat", "ocelot",
    "pangolin", "quokka", "raccoon", "serval", "tapir", "urchin", "vole",
    "wombat", "yak",
)


@dataclass(frozen=True)
class FakeName(Generator):
    """A plausible anonymous display name ("Fuzzy Axolotl"), as in Figure 2."""

    def generate(self, ctx: GenContext) -> Any:
        adjective = ctx.rng.choice(_ADJECTIVES)
        animal = ctx.rng.choice(_ANIMALS)
        return f"{adjective.title()} {animal.title()}"

    def describe(self) -> str:
        return "FakeName"

    def config(self) -> Any:
        return "fake_name"


@dataclass(frozen=True)
class FakeEmail(Generator):
    """A syntactically valid but undeliverable address."""

    domain: str = "anon.invalid"

    def generate(self, ctx: GenContext) -> Any:
        token = "".join(ctx.rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(10))
        return f"{token}@{self.domain}"

    def describe(self) -> str:
        return f"FakeEmail({self.domain!r})"

    def config(self) -> Any:
        return ["fake_email", self.domain]


@dataclass(frozen=True)
class Compute(Generator):
    """Escape hatch: an arbitrary callable over the generation context."""

    fn: Callable[[GenContext], Any]
    label: str = "Compute"

    def generate(self, ctx: GenContext) -> Any:
        return self.fn(ctx)

    def describe(self) -> str:
        return self.label


_NAMED: dict[str, Callable[..., Generator]] = {
    "random": RandomValue,
    "default": Default,
    "sequence": Sequence,
    "fake_name": FakeName,
    "fake_email": FakeEmail,
}


def generator_from_config(config: Any) -> Generator:
    """Build a generator from a parsed-spec value.

    Accepted forms::

        "random"                         -> RandomValue()
        ["default", null]                -> Default(None)
        ["sequence", "anon-"]            -> Sequence("anon-")
        {"kind": "fake_email", "args": ["x.invalid"]}
        <Generator instance>             -> itself
    """
    if isinstance(config, Generator):
        return config
    if isinstance(config, str):
        name = config.lower()
        if name not in _NAMED:
            raise SpecError(f"unknown generator {config!r}")
        return _NAMED[name]()
    if isinstance(config, (list, tuple)) and config:
        name = str(config[0]).lower()
        if name not in _NAMED:
            raise SpecError(f"unknown generator {config[0]!r}")
        return _NAMED[name](*config[1:])
    if isinstance(config, dict) and "kind" in config:
        name = str(config["kind"]).lower()
        if name not in _NAMED:
            raise SpecError(f"unknown generator {config['kind']!r}")
        return _NAMED[name](*config.get("args", ()))
    raise SpecError(f"cannot interpret generator config {config!r}")
