"""Disguise specifications: transformations, generators, parsing, analysis."""

from repro.spec.analysis import (
    Interaction,
    SpecWarning,
    find_interactions,
    redundant_decorrelations,
    validate_spec,
)
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import (
    Compute,
    Default,
    FakeEmail,
    FakeName,
    GenContext,
    Generator,
    RandomValue,
    Sequence,
    generator_from_config,
)
from repro.spec.parser import spec_from_dict, spec_from_json, spec_to_dict
from repro.spec.statistical import (
    QuasiGroup,
    generalize_numeric,
    generalize_text,
    k_anonymity_groups,
    k_anonymity_predicate,
    k_anonymity_violations,
    l_diversity_violations,
    laplace_count,
)
from repro.spec.transform import (
    Decorrelate,
    Modify,
    Remove,
    Transformation,
    named_modifier,
)

__all__ = [
    "DisguiseSpec",
    "TableDisguise",
    "Transformation",
    "Remove",
    "Modify",
    "Decorrelate",
    "named_modifier",
    "Generator",
    "GenContext",
    "RandomValue",
    "Default",
    "Sequence",
    "FakeName",
    "FakeEmail",
    "Compute",
    "generator_from_config",
    "QuasiGroup",
    "k_anonymity_groups",
    "k_anonymity_violations",
    "k_anonymity_predicate",
    "l_diversity_violations",
    "generalize_numeric",
    "generalize_text",
    "laplace_count",
    "spec_from_dict",
    "spec_from_json",
    "spec_to_dict",
    "validate_spec",
    "SpecWarning",
    "Interaction",
    "find_interactions",
    "redundant_decorrelations",
]
