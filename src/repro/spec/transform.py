"""The three fundamental transformation operations (paper §4.1).

Data disguises are built on *data removal*, *object content modification*,
and *decorrelation* — predicated per-table operations. Each transformation
carries a predicate ("arbitrary SQL WHERE clauses", §5) selecting the rows
it applies to.

* :class:`Remove` deletes matching rows (reveal = reinsert).
* :class:`Modify` rewrites one column through a closure over the original
  value (reveal = restore the original).
* :class:`Decorrelate` repoints one foreign-key column at a freshly created
  placeholder row — one placeholder per row, so the contributions can no
  longer be correlated with each other or their owner (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SpecError
from repro.storage.predicate import Predicate
from repro.storage.sql import parse_where

__all__ = ["Transformation", "Remove", "Modify", "Decorrelate", "named_modifier"]


@dataclass(frozen=True)
class Transformation:
    """Base class: a predicated operation on one table's rows."""

    pred: Predicate

    def __post_init__(self) -> None:
        # Allow construction with a WHERE-clause string for convenience.
        if isinstance(self.pred, str):
            object.__setattr__(self, "pred", parse_where(self.pred))

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Remove(Transformation):
    """Delete every row matching ``pred``."""

    def describe(self) -> str:
        return f"Remove(pred: {self.pred})"


@dataclass(frozen=True)
class Decorrelate(Transformation):
    """Repoint ``foreign_key`` of matching rows at fresh placeholders.

    ``foreign_key`` names a column that the table's schema declares as a
    foreign key; the parent table must carry ``generate_placeholder``
    entries in the same spec so the engine knows how to populate the
    placeholder rows.
    """

    foreign_key: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.foreign_key:
            raise SpecError("Decorrelate requires a foreign_key column name")

    def describe(self) -> str:
        return f"Decorrelate(pred: {self.pred}, foreign_key: {self.foreign_key})"


# A modifier takes the original column value and returns the disguised one.
ModifierFn = Callable[[Any], Any]


@dataclass(frozen=True)
class Modify(Transformation):
    """Rewrite ``column`` of matching rows via ``fn(original_value)``.

    ``label`` names the closure for spec rendering and serialization;
    closures themselves are not serialized (the vault stores original
    values, so reveal never needs to invert ``fn``).
    """

    column: str = ""
    fn: ModifierFn = field(default=lambda value: value)
    label: str = "custom"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.column:
            raise SpecError("Modify requires a column name")

    def describe(self) -> str:
        return f"Modify(pred: {self.pred}, column: {self.column}, fn: {self.label})"


_NAMED_MODIFIERS: dict[str, ModifierFn] = {
    "null": lambda value: None,
    "redact": lambda value: "[redacted]" if value is not None else None,
    "deleted": lambda value: "[deleted]" if value is not None else None,
    "zero": lambda value: 0,
    "false": lambda value: False,
    "true": lambda value: True,
    "empty": lambda value: "" if value is not None else None,
    "hash": lambda value: format(hash(("repro", value)) & 0xFFFFFFFF, "08x"),
    "truncate": lambda value: value[:16] if isinstance(value, str) else value,
    "coarsen_day": lambda value: (value // 86_400) * 86_400 if value is not None else None,
    "coarsen_year": lambda value: (value // 31_536_000) * 31_536_000 if value is not None else None,
}


def named_modifier(name: str) -> tuple[ModifierFn, str]:
    """Look up a built-in modifier by name; returns (fn, label).

    Built-ins cover the transformations the surveyed applications use
    (§2): Reddit/Lobsters' "[deleted]", redaction, nulling, and the
    timestamp-coarsening used by data-decay policies.
    """
    try:
        return _NAMED_MODIFIERS[name], name
    except KeyError:
        raise SpecError(
            f"unknown modifier {name!r}; known: {sorted(_NAMED_MODIFIERS)}"
        ) from None
