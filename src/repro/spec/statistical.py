"""Statistical privacy meets disguising (paper §8).

"Privacy-preserving data mining approaches, such as k-anonymity,
l-diversity, and differential privacy, provide statistical privacy
guarantees. These complement data disguising: disguise predicates might be
based on differential privacy, for example."

This module provides the complementary pieces:

* :func:`k_anonymity_groups` / :func:`k_anonymity_violations` — group a
  table by quasi-identifier columns and find groups smaller than *k*;
* :func:`k_anonymity_predicate` — build a disguise predicate matching
  exactly the rows in violating groups, so a standard ``Modify`` /
  ``Remove`` / ``Decorrelate`` transformation can generalize or suppress
  them ("disguise predicates based on" the statistical criterion);
* :func:`l_diversity_violations` — groups whose sensitive column carries
  fewer than *l* distinct values;
* generalization modifiers for use with ``Modify``:
  :func:`generalize_numeric` (bucketing) and :func:`generalize_text`
  (prefix truncation), both deterministic and spec-friendly;
* :func:`laplace_count` — an (ε)-differentially-private counting query
  over a predicate, for answering "how many rows would this disguise
  touch" without revealing exact membership.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import SpecError
from repro.storage.database import Database
from repro.storage.predicate import (
    And,
    ColumnRef,
    Comparison,
    FalseP,
    IsNull,
    Literal,
    Or,
    Predicate,
)

__all__ = [
    "QuasiGroup",
    "k_anonymity_groups",
    "k_anonymity_violations",
    "k_anonymity_predicate",
    "l_diversity_violations",
    "generalize_numeric",
    "generalize_text",
    "laplace_count",
]


@dataclass(frozen=True)
class QuasiGroup:
    """One equivalence class under the quasi-identifier columns."""

    key: tuple[Any, ...]
    size: int
    pks: tuple[Any, ...]


def k_anonymity_groups(
    db: Database, table: str, quasi_identifiers: Iterable[str]
) -> list[QuasiGroup]:
    """All quasi-identifier equivalence classes of *table*."""
    columns = list(quasi_identifiers)
    if not columns:
        raise SpecError("k-anonymity needs at least one quasi-identifier column")
    schema = db.table(table).schema
    for column in columns:
        schema.column(column)  # raises on unknown
    groups: dict[tuple[Any, ...], list[Any]] = {}
    pk_col = schema.primary_key
    for row in db.table(table).rows():
        key = tuple(row[column] for column in columns)
        groups.setdefault(key, []).append(row[pk_col])
    return [
        QuasiGroup(key=key, size=len(pks), pks=tuple(pks))
        for key, pks in groups.items()
    ]


def k_anonymity_violations(
    db: Database, table: str, quasi_identifiers: Iterable[str], k: int
) -> list[QuasiGroup]:
    """Groups smaller than *k* — each is a re-identification risk."""
    if k < 1:
        raise SpecError("k must be >= 1")
    return [
        group
        for group in k_anonymity_groups(db, table, quasi_identifiers)
        if group.size < k
    ]


def _group_predicate(columns: list[str], key: tuple[Any, ...]) -> Predicate:
    parts: list[Predicate] = []
    for column, value in zip(columns, key):
        if value is None:
            parts.append(IsNull(ColumnRef(column)))
        else:
            parts.append(Comparison("=", ColumnRef(column), Literal(value)))
    pred = parts[0]
    for part in parts[1:]:
        pred = And(pred, part)
    return pred


def k_anonymity_predicate(
    db: Database, table: str, quasi_identifiers: Iterable[str], k: int
) -> Predicate:
    """A disguise predicate matching every row in a violating group.

    Feed it to any transformation::

        Modify(k_anonymity_predicate(db, "users", ["zip", "age"], k=5),
               column="zip", fn=generalize_text(3), label="zip3")

    The predicate selects by *primary key* rather than by quasi-identifier
    values: the transformation it drives typically rewrites those very
    columns, and a value-based predicate would stop matching after the
    first Modify in the spec. Returns an always-false predicate when the
    table is already k-anonymous, so the transformation is a clean no-op.
    """
    from repro.storage.predicate import InList

    columns = list(quasi_identifiers)
    violations = k_anonymity_violations(db, table, columns, k)
    if not violations:
        return FalseP()
    pk_col = db.table(table).schema.primary_key
    pks = tuple(
        Literal(pk) for group in violations for pk in group.pks
    )
    return InList(ColumnRef(pk_col), pks)


def l_diversity_violations(
    db: Database,
    table: str,
    quasi_identifiers: Iterable[str],
    sensitive: str,
    l: int,
) -> list[QuasiGroup]:
    """Groups whose *sensitive* column shows fewer than *l* distinct values."""
    if l < 1:
        raise SpecError("l must be >= 1")
    columns = list(quasi_identifiers)
    schema = db.table(table).schema
    schema.column(sensitive)
    pk_col = schema.primary_key
    sensitive_by_pk = {
        row[pk_col]: row[sensitive] for row in db.table(table).rows()
    }
    out = []
    for group in k_anonymity_groups(db, table, columns):
        distinct = {sensitive_by_pk[pk] for pk in group.pks}
        if len(distinct) < l:
            out.append(group)
    return out


# --------------------------------------------------------------------------
# Generalization modifiers (for Modify transformations)
# --------------------------------------------------------------------------


def generalize_numeric(bucket: int) -> Callable[[Any], Any]:
    """A modifier rounding numbers down to *bucket*-sized ranges
    (age 37, bucket 10 -> 30)."""
    if bucket <= 0:
        raise SpecError("bucket size must be positive")

    def fn(value: Any) -> Any:
        if value is None:
            return None
        return (int(value) // bucket) * bucket

    return fn


def generalize_text(prefix_len: int) -> Callable[[Any], Any]:
    """A modifier truncating strings to a prefix (zip 02139 -> 021**)."""
    if prefix_len < 0:
        raise SpecError("prefix length must be >= 0")

    def fn(value: Any) -> Any:
        if value is None:
            return None
        text = str(value)
        if len(text) <= prefix_len:
            return text
        return text[:prefix_len] + "*" * (len(text) - prefix_len)

    return fn


# --------------------------------------------------------------------------
# Differential privacy
# --------------------------------------------------------------------------


def laplace_count(
    db: Database,
    table: str,
    where,
    epsilon: float,
    params: Mapping[str, Any] | None = None,
    rng: random.Random | None = None,
) -> float:
    """An ε-differentially-private count of rows matching *where*.

    Counting queries have sensitivity 1, so Laplace noise with scale 1/ε
    gives ε-DP. Useful for disguise planning dashboards that must not leak
    exact membership ("how many users would this decay policy touch this
    week?").
    """
    if epsilon <= 0:
        raise SpecError("epsilon must be positive")
    true_count = db.count(table, where, params)
    generator = rng if rng is not None else random.SystemRandom()
    # Inverse-CDF sampling of Laplace(0, 1/epsilon).
    uniform = generator.random() - 0.5
    noise = -(1.0 / epsilon) * math.copysign(
        math.log(1 - 2 * abs(uniform)), uniform
    )
    return true_count + noise
