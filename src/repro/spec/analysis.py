"""Static analysis of disguise specifications (paper §6 end, §7).

Three analyses:

* :func:`validate_spec` — spec-vs-schema consistency: every table and
  column exists, decorrelated columns are declared foreign keys, and the
  parent tables of decorrelations carry placeholder generators. Also emits
  *warnings* for likely policy gaps (PII columns never touched; tables
  referencing a removed table that the spec does not address).
* :func:`find_interactions` — which (table, column) state two disguises
  both touch, classifying each interaction (paper §4.2: "applying one
  disguise may change the outcome of future disguises").
* :func:`redundant_decorrelations` — the automated version of the §6
  "manual optimization": decorrelations in a later disguise that an
  earlier disguise has already performed on the same foreign key, which
  the engine can skip rather than reverse-and-redo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.transform import Decorrelate, Modify, Remove
from repro.storage.schema import Schema

__all__ = [
    "validate_spec",
    "SpecWarning",
    "Interaction",
    "find_interactions",
    "redundant_decorrelations",
]


@dataclass(frozen=True)
class SpecWarning:
    """A non-fatal finding from spec validation."""

    table: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.table}: {self.message}"


def validate_spec(spec: DisguiseSpec, schema: Schema) -> list[SpecWarning]:
    """Check *spec* against *schema*; raise :class:`SpecError` on hard
    inconsistencies, return a list of warnings for soft ones."""
    warnings: list[SpecWarning] = []
    removed_tables = set()
    for table_disguise in spec.tables:
        if not schema.has_table(table_disguise.table):
            raise SpecError(
                f"{spec.name}: disguise references unknown table "
                f"{table_disguise.table!r}"
            )
        table_schema = schema.table(table_disguise.table)
        _validate_columns(spec, table_disguise, schema)
        if table_disguise.owner_column and not table_schema.has_column(
            table_disguise.owner_column
        ):
            raise SpecError(
                f"{spec.name}: {table_disguise.table}.owner column "
                f"{table_disguise.owner_column!r} does not exist"
            )
        for transformation in table_disguise.transformations:
            if isinstance(transformation, Remove):
                removed_tables.add(table_disguise.table)
    warnings.extend(_warn_unaddressed_children(spec, schema, removed_tables))
    warnings.extend(_warn_untouched_pii(spec, schema))
    return warnings


def _validate_columns(
    spec: DisguiseSpec, table_disguise: TableDisguise, schema: Schema
) -> None:
    table_schema = schema.table(table_disguise.table)
    for column in table_disguise.generate_placeholder:
        if not table_schema.has_column(column):
            raise SpecError(
                f"{spec.name}: generate_placeholder for "
                f"{table_disguise.table}.{column} — no such column"
            )
    for transformation in table_disguise.transformations:
        for column in transformation.pred.columns():
            if not table_schema.has_column(column):
                raise SpecError(
                    f"{spec.name}: predicate of {transformation.describe()} on "
                    f"{table_disguise.table} references unknown column {column!r}"
                )
        if isinstance(transformation, Modify):
            if not table_schema.has_column(transformation.column):
                raise SpecError(
                    f"{spec.name}: Modify targets unknown column "
                    f"{table_disguise.table}.{transformation.column}"
                )
        elif isinstance(transformation, Decorrelate):
            fk = table_schema.foreign_key_for(transformation.foreign_key)
            if fk is None:
                raise SpecError(
                    f"{spec.name}: Decorrelate on "
                    f"{table_disguise.table}.{transformation.foreign_key} — "
                    f"column is not a declared foreign key"
                )
            parent_disguise = spec.table_disguise(fk.parent_table)
            if parent_disguise is None or not parent_disguise.generate_placeholder:
                raise SpecError(
                    f"{spec.name}: Decorrelate into {fk.parent_table} but the "
                    f"spec provides no generate_placeholder for it"
                )


def _warn_unaddressed_children(
    spec: DisguiseSpec, schema: Schema, removed_tables: set[str]
) -> list[SpecWarning]:
    """Removing parent rows while a child table's FK is unhandled will fail
    at apply time with a referential-integrity error (RESTRICT) or silently
    cascade; either deserves a heads-up at spec-writing time."""
    warnings = []
    for parent in removed_tables:
        for child_schema, fk in schema.referencing(parent):
            handled = spec.table_disguise(child_schema.name) is not None
            if not handled and child_schema.name != parent:
                warnings.append(
                    SpecWarning(
                        child_schema.name,
                        f"references removed table {parent!r} via {fk.column} "
                        f"but the disguise does not address it",
                    )
                )
    return warnings


def _warn_untouched_pii(spec: DisguiseSpec, schema: Schema) -> list[SpecWarning]:
    warnings = []
    for table_disguise in spec.tables:
        table_schema = schema.table(table_disguise.table)
        removed = any(
            isinstance(t, Remove) for t in table_disguise.transformations
        )
        if removed:
            continue  # removal scrubs every column
        modified = {
            t.column
            for t in table_disguise.transformations
            if isinstance(t, Modify)
        }
        for column in table_schema.pii_columns():
            if column.name not in modified:
                warnings.append(
                    SpecWarning(
                        table_disguise.table,
                        f"PII column {column.name!r} is not removed or modified",
                    )
                )
    return warnings


@dataclass(frozen=True)
class Interaction:
    """One point of contact between two disguises.

    ``kind`` classifies the pair of operations, e.g. ``remove/decorrelate``.
    The paper's example: ConfAnon (decorrelate reviews) interacts with
    GDPR+ (remove account, decorrelate reviews) on the Review table.
    """

    table: str
    first_op: str
    second_op: str
    detail: str

    @property
    def kind(self) -> str:
        return f"{self.first_op}/{self.second_op}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.table}: {self.kind} ({self.detail})"


def find_interactions(first: DisguiseSpec, second: DisguiseSpec) -> list[Interaction]:
    """All table-level interactions between two disguises.

    An interaction exists when both disguises transform the same table and
    the second's operation could observe or be affected by the first's.
    """
    interactions = []
    for second_td in second.tables:
        first_td = first.table_disguise(second_td.table)
        if first_td is None:
            continue
        for first_t in first_td.transformations:
            for second_t in second_td.transformations:
                detail = _interaction_detail(first_t, second_t)
                if detail is not None:
                    interactions.append(
                        Interaction(
                            table=second_td.table,
                            first_op=first_t.kind,
                            second_op=second_t.kind,
                            detail=detail,
                        )
                    )
    return interactions


def _interaction_detail(first_t, second_t) -> str | None:
    if isinstance(first_t, Remove):
        # Data the first disguise removed cannot match the second's
        # predicates — composes naturally ("no need to decorrelate data that
        # another disguise removed", §4.2) but still worth surfacing.
        return "second sees fewer rows (first removed them); composes naturally"
    if isinstance(first_t, Decorrelate) and isinstance(second_t, (Remove, Decorrelate)):
        if second_t.pred.columns() & {first_t.foreign_key} or (
            isinstance(second_t, Decorrelate)
            and second_t.foreign_key == first_t.foreign_key
        ):
            return (
                f"first rewrote {first_t.foreign_key}; second's selection or "
                f"decorrelation depends on the original value — needs vault "
                f"recorrelation"
            )
        return None
    if isinstance(first_t, Modify) and isinstance(second_t, (Remove, Modify, Decorrelate)):
        if first_t.column in second_t.pred.columns():
            return (
                f"first modified {first_t.column}, which the second's "
                f"predicate reads — needs vault recorrelation"
            )
        if isinstance(second_t, Modify) and second_t.column == first_t.column:
            return f"both modify {first_t.column}; later reveal must re-apply"
        return None
    return None


@dataclass(frozen=True)
class RedundantDecorrelation:
    """A decorrelation in *second* that *first* already performed."""

    table: str
    foreign_key: str


def redundant_decorrelations(
    first: DisguiseSpec, second: DisguiseSpec
) -> list[RedundantDecorrelation]:
    """Decorrelations in *second* that duplicate ones in *first*.

    When the engine applies *second* on a database where *first* is active,
    rows that *first* already decorrelated on the same (table, foreign key)
    need not be recorrelated and re-decorrelated: the privacy goal
    (ownership unlinkability) is already met. This automates the §6 manual
    optimization that drops composed latency from 452 ms to 118 ms in the
    paper's experiment.
    """
    out = []
    for second_td in second.tables:
        first_td = first.table_disguise(second_td.table)
        if first_td is None:
            continue
        first_fks = {
            t.foreign_key
            for t in first_td.transformations
            if isinstance(t, Decorrelate)
        }
        for transformation in second_td.transformations:
            if (
                isinstance(transformation, Decorrelate)
                and transformation.foreign_key in first_fks
            ):
                out.append(
                    RedundantDecorrelation(
                        table=second_td.table,
                        foreign_key=transformation.foreign_key,
                    )
                )
    return out
