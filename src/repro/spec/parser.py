"""Parse disguise specifications from dicts or JSON documents.

The in-memory classes (:mod:`repro.spec.disguise`) are the source of
truth; this module lets applications keep their disguises as declarative
documents, in the spirit of the paper's Figure 3::

    {
      "disguise_name": "UserScrub",
      "tables": {
        "ContactInfo": {
          "generate_placeholder": [
            ["name", "fake_name"],
            ["email", ["default", null]],
            ["disabled", ["default", true]]
          ],
          "transformations": [
            {"op": "remove", "pred": "contactId = $UID"}
          ]
        },
        "ReviewPreference": {
          "transformations": [{"op": "remove", "pred": "contactId = $UID"}]
        },
        "Review": {
          "transformations": [
            {"op": "decorrelate", "pred": "contactId = $UID",
             "foreign_key": "contactId"}
          ]
        }
      }
    }

Modify operations name a built-in modifier
(:func:`repro.spec.transform.named_modifier`), e.g.
``{"op": "modify", "pred": "TRUE", "column": "bio", "fn": "redact"}``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import SpecError
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import generator_from_config
from repro.spec.transform import Decorrelate, Modify, Remove, named_modifier

__all__ = ["spec_from_dict", "spec_from_json", "spec_to_dict"]


def spec_from_json(document: str) -> DisguiseSpec:
    """Parse a JSON document into a :class:`DisguiseSpec`."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid JSON: {exc}") from None
    return spec_from_dict(data)


def spec_from_dict(data: Mapping[str, Any]) -> DisguiseSpec:
    """Build a :class:`DisguiseSpec` from a parsed document."""
    if "disguise_name" not in data:
        raise SpecError("spec document needs a 'disguise_name'")
    tables_doc = data.get("tables")
    if not isinstance(tables_doc, Mapping):
        raise SpecError("spec document needs a 'tables' mapping")
    tables = []
    for table_name, table_doc in tables_doc.items():
        tables.append(_table_from_dict(table_name, table_doc))
    return DisguiseSpec(
        name=str(data["disguise_name"]),
        tables=tables,
        description=str(data.get("description", "")),
    )


def _table_from_dict(table_name: str, doc: Mapping[str, Any]) -> TableDisguise:
    if not isinstance(doc, Mapping):
        raise SpecError(f"table entry {table_name!r} must be a mapping")
    generators = {}
    for item in doc.get("generate_placeholder", ()):
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise SpecError(
                f"{table_name}: generate_placeholder entries are "
                f"[column, generator] pairs, got {item!r}"
            )
        column, config = item
        generators[str(column)] = generator_from_config(config)
    transformations = []
    for op_doc in doc.get("transformations", ()):
        transformations.append(_transformation_from_dict(table_name, op_doc))
    return TableDisguise(
        table=table_name,
        transformations=transformations,
        generate_placeholder=generators,
        owner_column=doc.get("owner"),
    )


def _transformation_from_dict(table_name: str, doc: Mapping[str, Any]):
    if not isinstance(doc, Mapping) or "op" not in doc:
        raise SpecError(f"{table_name}: transformation needs an 'op': {doc!r}")
    op = str(doc["op"]).lower()
    pred = doc.get("pred", "TRUE")
    if op == "remove":
        return Remove(pred)
    if op == "decorrelate":
        if "foreign_key" not in doc:
            raise SpecError(f"{table_name}: decorrelate needs 'foreign_key'")
        return Decorrelate(pred, foreign_key=str(doc["foreign_key"]))
    if op == "modify":
        if "column" not in doc or "fn" not in doc:
            raise SpecError(f"{table_name}: modify needs 'column' and 'fn'")
        fn, label = named_modifier(str(doc["fn"]))
        return Modify(pred, column=str(doc["column"]), fn=fn, label=label)
    raise SpecError(f"{table_name}: unknown transformation op {op!r}")


def spec_to_dict(spec: DisguiseSpec) -> dict[str, Any]:
    """Serialize a spec back to the document format.

    Round-trips through :func:`spec_from_dict` for declarative specs:
    generators serialize via :meth:`~repro.spec.generate.Generator.config`.
    ``Modify`` operations with non-built-in closures serialize by label
    only and will not round-trip, and ``Compute`` generators raise — the
    document format is for declarative specs; programmatic specs stay in
    Python.
    """
    tables: dict[str, Any] = {}
    for table_disguise in spec.tables:
        doc: dict[str, Any] = {}
        if table_disguise.owner_column:
            doc["owner"] = table_disguise.owner_column
        if table_disguise.generate_placeholder:
            doc["generate_placeholder"] = [
                [column, generator.config()]
                for column, generator in table_disguise.generate_placeholder.items()
            ]
        ops = []
        for transformation in table_disguise.transformations:
            entry: dict[str, Any] = {
                "op": transformation.kind,
                "pred": str(transformation.pred),
            }
            if isinstance(transformation, Decorrelate):
                entry["foreign_key"] = transformation.foreign_key
            elif isinstance(transformation, Modify):
                entry["column"] = transformation.column
                entry["fn"] = transformation.label
            ops.append(entry)
        doc["transformations"] = ops
        tables[table_disguise.table] = doc
    out: dict[str, Any] = {"disguise_name": spec.name, "tables": tables}
    if spec.description:
        out["description"] = spec.description
    return out
