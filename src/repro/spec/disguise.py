"""Disguise specifications: the developer-facing policy objects.

A :class:`DisguiseSpec` captures one privacy transformation for one
application — e.g. ``HotCRP-GDPR+`` (user scrubbing, §3) or
``HotCRP-ConfAnon``. It maps each affected table to a
:class:`TableDisguise`: an ordered list of predicated transformations plus,
for tables that receive placeholders, ``generate_placeholder`` column
generators (Figure 3).

Specs are *parameterized*: predicates may reference ``$UID`` ("the user
invoking the disguise"); a spec whose predicates use ``$UID`` is a
*user disguise*, one without is a *global disguise* (ConfAnon).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SpecError
from repro.spec.generate import Generator
from repro.spec.transform import Decorrelate, Modify, Remove, Transformation

__all__ = ["TableDisguise", "DisguiseSpec"]

USER_PARAM = "UID"


@dataclass
class TableDisguise:
    """Disguise instructions for a single table.

    ``owner_column`` names the column whose value identifies the user who
    "owns" each row; vault entries produced by *global* disguises are
    routed to the owner's vault using it (paper §4.2 — ConfAnon reveal
    functions live in per-user vaults). For user disguises the invoking
    ``$UID`` is the owner and ``owner_column`` is unnecessary.
    """

    table: str
    transformations: list[Transformation] = field(default_factory=list)
    generate_placeholder: dict[str, Generator] = field(default_factory=dict)
    owner_column: str | None = None

    def describe_lines(self) -> list[str]:
        """Canonical text rendering, one logical line per element.

        This rendering is what the Figure 4 reproduction counts as
        "Disguise LoC": it mirrors the density of the paper's Figure 3
        format (one line per generator binding and per transformation).
        """
        lines = [f"{self.table}:"]
        if self.owner_column:
            lines.append(f"  owner: {self.owner_column}")
        if self.generate_placeholder:
            lines.append("  generate_placeholder: [")
            for column, generator in self.generate_placeholder.items():
                lines.append(f"    ({column!r}, {generator.describe()}),")
            lines.append("  ]")
        lines.append("  transformations: [")
        for transformation in self.transformations:
            lines.append(f"    {transformation.describe()},")
        lines.append("  ]")
        return lines


@dataclass
class DisguiseSpec:
    """A complete, named disguise specification."""

    name: str
    tables: list[TableDisguise] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("disguise needs a name")
        seen = set()
        for table_disguise in self.tables:
            if table_disguise.table in seen:
                raise SpecError(
                    f"disguise {self.name!r} lists table "
                    f"{table_disguise.table!r} twice; merge the entries"
                )
            seen.add(table_disguise.table)

    # -- introspection ---------------------------------------------------------

    def table_disguise(self, table: str) -> TableDisguise | None:
        for table_disguise in self.tables:
            if table_disguise.table == table:
                return table_disguise
        return None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(td.table for td in self.tables)

    def params(self) -> set[str]:
        """All ``$param`` names referenced by any predicate in the spec."""
        names: set[str] = set()
        for table_disguise in self.tables:
            for transformation in table_disguise.transformations:
                names |= transformation.pred.params()
        return names

    @property
    def is_user_disguise(self) -> bool:
        """True if the spec is parameterized by the invoking user (``$UID``)."""
        return USER_PARAM in self.params()

    def transformations_of(
        self, kinds: tuple[type, ...] = (Remove, Modify, Decorrelate)
    ) -> Iterable[tuple[TableDisguise, Transformation]]:
        """All (table-disguise, transformation) pairs of the given kinds."""
        for table_disguise in self.tables:
            for transformation in table_disguise.transformations:
                if isinstance(transformation, kinds):
                    yield table_disguise, transformation

    # -- Figure 4 accounting -----------------------------------------------------

    def to_text(self) -> str:
        """Render the spec in the paper's Figure 3 style."""
        lines = [f"disguise_name: {self.name!r}"]
        if self.is_user_disguise:
            lines.append("user_to_disguise: $UID")
        lines.append("tables:")
        for table_disguise in self.tables:
            lines.extend("  " + line for line in table_disguise.describe_lines())
        return "\n".join(lines)

    def loc(self) -> int:
        """Disguise LoC — non-blank lines of the canonical rendering.

        This is the metric Figure 4 reports per disguise.
        """
        return sum(1 for line in self.to_text().splitlines() if line.strip())
