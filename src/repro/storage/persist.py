"""Snapshot persistence: save and load a database as JSON lines.

The paper's vault discussion (§4.2) includes offline-storage deployment
models; this module provides the serialization layer those vaults and the
disguise history log build on. The format is line-oriented JSON: one header
line per table (schema), then one line per row.

BLOB values are hex-encoded; DATETIME values are stored as floats. The
format round-trips every canonical value type exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.errors import StorageError
from repro.storage import fsio
from repro.storage.database import Database
from repro.storage.schema import Column, FKAction, ForeignKey, Schema, TableSchema
from repro.storage.types import ColumnType

__all__ = [
    "save_database",
    "save_database_atomic",
    "load_database",
    "read_snapshot_generation",
    "dump_rows",
    "load_rows",
]

_FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"$blob": value.hex()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$blob" in value:
        return bytes.fromhex(value["$blob"])
    return value


def _schema_to_json(table: TableSchema) -> dict[str, Any]:
    return {
        "name": table.name,
        "primary_key": table.primary_key,
        "columns": [
            {
                "name": col.name,
                "type": col.ctype.value,
                "nullable": col.nullable,
                "default": _encode_value(col.default),
                "pii": col.pii,
            }
            for col in table.columns
        ],
        "foreign_keys": [
            {
                "column": fk.column,
                "parent_table": fk.parent_table,
                "parent_column": fk.parent_column,
                "on_delete": fk.on_delete.value,
            }
            for fk in table.foreign_keys
        ],
    }


def _schema_from_json(data: dict[str, Any]) -> TableSchema:
    columns = [
        Column(
            name=col["name"],
            ctype=ColumnType(col["type"]),
            nullable=col["nullable"],
            default=_decode_value(col["default"]),
            pii=col.get("pii", False),
        )
        for col in data["columns"]
    ]
    foreign_keys = [
        ForeignKey(
            column=fk["column"],
            parent_table=fk["parent_table"],
            parent_column=fk["parent_column"],
            on_delete=FKAction(fk["on_delete"]),
        )
        for fk in data["foreign_keys"]
    ]
    return TableSchema(data["name"], columns, data["primary_key"], foreign_keys)


def save_database(
    db: Database, path: str | Path, generation: int | None = None
) -> None:
    """Write *db* (schema + all rows) to *path* as JSON lines.

    ``generation`` is the checkpoint generation stamp used by the WAL layer
    to decide whether a log next to this snapshot is still live (see
    :mod:`repro.storage.wal`); snapshots without one read back as
    generation 0.
    """
    path = fsio.as_path(path)
    with path.open("w", encoding="utf-8") as handle:
        header: dict[str, Any] = {
            "version": _FORMAT_VERSION,
            "tables": list(db.table_names),
        }
        if generation is not None:
            header["generation"] = generation
        handle.write(json.dumps({"$header": header}) + "\n")
        for name in db.table_names:
            table = db.table(name)
            handle.write(json.dumps({"$table": _schema_to_json(table.schema)}) + "\n")
            for row in table.rows():
                encoded = {k: _encode_value(v) for k, v in row.items()}
                handle.write(json.dumps({"$row": [name, encoded]}) + "\n")


def save_database_atomic(
    db: Database, path: str | Path, generation: int | None = None
) -> None:
    """Crash-safe :func:`save_database`: temp file, fsync, rename, dir fsync.

    At no point is *path* missing or partially written: a crash before the
    ``os.replace`` leaves the old snapshot untouched, a crash after leaves
    the new one fully installed.
    """
    path = fsio.as_path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    save_database(db, tmp, generation=generation)
    with tmp.open("rb") as handle:
        fsio.fsync_handle(handle)
    fsio.replace(tmp, path)
    _fsync_dir(path.parent)


def _fsync_dir(directory: Any) -> None:
    try:
        fsio.fsync_dir(directory)
    except OSError:  # pragma: no cover - platform without dir fds
        return


def read_snapshot_generation(path: str | Path) -> int:
    """The checkpoint generation stamped in a snapshot's header.

    A missing file or a header without a stamp is generation 0 (the state
    of the world before the WAL layer existed).
    """
    path = fsio.as_path(path)
    if not path.exists():
        return 0
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    if not first:
        raise StorageError(f"{path}: empty snapshot")
    header = json.loads(first)
    if "$header" not in header:
        raise StorageError(f"{path}: not a snapshot")
    return int(header["$header"].get("generation", 0))


def load_database(path: str | Path, verify: bool = True) -> Database:
    """Rebuild a database previously written by :func:`save_database`.

    Rows are loaded without FK enforcement ordering concerns: all tables
    are created first, then rows inserted table-by-table in file order with
    checks deferred until the end (a final integrity assertion, skipped
    when ``verify=False`` — e.g. by tooling that wants to *inspect* a
    corrupt snapshot).
    """
    path = fsio.as_path(path)
    tables: list[TableSchema] = []
    rows_by_table: dict[str, list[dict[str, Any]]] = {}
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise StorageError(f"{path}: empty snapshot")
        header = json.loads(first)
        if "$header" not in header or header["$header"].get("version") != _FORMAT_VERSION:
            raise StorageError(f"{path}: not a v{_FORMAT_VERSION} snapshot")
        for line in handle:
            record = json.loads(line)
            if "$table" in record:
                tables.append(_schema_from_json(record["$table"]))
            elif "$row" in record:
                name, encoded = record["$row"]
                rows_by_table.setdefault(name, []).append(
                    {k: _decode_value(v) for k, v in encoded.items()}
                )
            else:
                raise StorageError(f"{path}: unrecognized record {record!r}")
    db = Database(Schema(tables))
    for name, rows in rows_by_table.items():
        # Bypass statement-level FK checks during bulk load (file order may
        # interleave children before parents); verify integrity at the end.
        # One batched insert per table groups the index maintenance.
        db.table(name).insert_rows(rows)
    if verify:
        db.assert_integrity()
    return db


def dump_rows(rows: list[dict[str, Any]], handle: TextIO) -> None:
    """Serialize a row list (vault entries use this for file vaults)."""
    for row in rows:
        handle.write(json.dumps({k: _encode_value(v) for k, v in row.items()}) + "\n")


def load_rows(handle: TextIO) -> list[dict[str, Any]]:
    """Inverse of :func:`dump_rows`."""
    out = []
    for line in handle:
        line = line.strip()
        if line:
            out.append({k: _decode_value(v) for k, v in json.loads(line).items()})
    return out
