"""Schema evolution: ALTER-TABLE-style changes on a live database.

Paper §7: "more research is required to handle updates to the application
schema or disguise specifications in a system that has already applied
disguises. Database schema evolution research may offer insights…"

This module implements the storage half: structural changes applied to a
live :class:`~repro.storage.database.Database`, rebuilding the affected
tables and keeping foreign keys across the schema consistent. The
disguising half — migrating vault entries and disguise specs so existing
disguises stay reversible — lives in :mod:`repro.core.migrate`.

Changes are modeled as small dataclasses so the engine can interpret the
same change object for the database, the vaults, and the specs:

* :class:`AddColumn` — new column with a default (NOT NULL requires one);
* :class:`DropColumn` — refuse for primary keys, foreign keys, and columns
  referenced by other tables;
* :class:`RenameColumn` — follows references: renaming a primary key
  updates every child foreign key's target name;
* :class:`RenameTable` — follows references likewise.

Schema changes are not transactional (they rebuild table storage outside
the undo log); attempting one inside an open transaction raises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError, TransactionError
from repro.storage.database import Database
from repro.storage.schema import Column, ForeignKey, Schema, TableSchema
from repro.storage.table import Table

__all__ = [
    "SchemaChange",
    "AddColumn",
    "DropColumn",
    "RenameColumn",
    "RenameTable",
    "apply_change",
]


@dataclass(frozen=True)
class SchemaChange:
    """Base class for schema changes."""

    table: str

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AddColumn(SchemaChange):
    column: Column

    def describe(self) -> str:
        return f"ADD COLUMN {self.table}.{self.column.name} {self.column.ctype.value}"


@dataclass(frozen=True)
class DropColumn(SchemaChange):
    column: str

    def describe(self) -> str:
        return f"DROP COLUMN {self.table}.{self.column}"


@dataclass(frozen=True)
class RenameColumn(SchemaChange):
    old: str
    new: str

    def describe(self) -> str:
        return f"RENAME COLUMN {self.table}.{self.old} -> {self.new}"


@dataclass(frozen=True)
class RenameTable(SchemaChange):
    new: str

    def describe(self) -> str:
        return f"RENAME TABLE {self.table} -> {self.new}"


def apply_change(db: Database, change: SchemaChange) -> None:
    """Apply one schema change to *db* (rows are migrated in place)."""
    if db.in_transaction:
        raise TransactionError("schema changes cannot run inside a transaction")
    if not db.has_table(change.table):
        raise SchemaError(f"no such table {change.table!r}")
    if isinstance(change, AddColumn):
        _add_column(db, change)
    elif isinstance(change, DropColumn):
        _drop_column(db, change)
    elif isinstance(change, RenameColumn):
        _rename_column(db, change)
    elif isinstance(change, RenameTable):
        _rename_table(db, change)
    else:
        raise SchemaError(f"unknown schema change {type(change).__name__}")
    db.schema.validate()
    # Cached plans and compiled predicates were extracted against the old
    # schema (columns, indexes, table names); bump the schema generation so
    # the plan cache rejects every stale entry (see PlanCache.bump).
    db.plans.bump()


def _rebuild_table(
    db: Database,
    old_name: str,
    new_schema: TableSchema,
    transform_row,
) -> None:
    """Swap in a rebuilt table, re-inserting transformed rows."""
    old_table = db.table(old_name)
    new_table = Table(new_schema, plans=db.plans)
    for row in old_table.rows():
        new_table.insert(transform_row(row))
    # Rebuild the schema collection, preserving table order.
    tables = []
    for table_schema in db.schema:
        if table_schema.name == old_name:
            tables.append(new_schema)
        else:
            tables.append(table_schema)
    db.schema = Schema(tables)
    db._tables.pop(old_name)
    db._tables[new_schema.name] = new_table


def _add_column(db: Database, change: AddColumn) -> None:
    schema = db.table(change.table).schema
    if schema.has_column(change.column.name):
        raise SchemaError(
            f"{change.table} already has a column {change.column.name!r}"
        )
    if not change.column.nullable and change.column.default is None:
        raise SchemaError(
            f"new NOT NULL column {change.column.name!r} needs a default"
        )
    new_schema = TableSchema(
        schema.name,
        [*schema.columns, change.column],
        schema.primary_key,
        schema.foreign_keys,
    )
    default = change.column.default
    _rebuild_table(
        db, change.table, new_schema, lambda row: {**row, change.column.name: default}
    )


def _drop_column(db: Database, change: DropColumn) -> None:
    schema = db.table(change.table).schema
    schema.column(change.column)  # raises if absent
    if change.column == schema.primary_key:
        raise SchemaError(f"cannot drop primary key {change.table}.{change.column}")
    if schema.foreign_key_for(change.column) is not None:
        raise SchemaError(
            f"cannot drop foreign-key column {change.table}.{change.column}; "
            f"drop the relationship first"
        )
    new_schema = TableSchema(
        schema.name,
        [col for col in schema.columns if col.name != change.column],
        schema.primary_key,
        schema.foreign_keys,
    )
    _rebuild_table(
        db,
        change.table,
        new_schema,
        lambda row: {k: v for k, v in row.items() if k != change.column},
    )


def _rename_column(db: Database, change: RenameColumn) -> None:
    schema = db.table(change.table).schema
    old_col = schema.column(change.old)
    if schema.has_column(change.new):
        raise SchemaError(f"{change.table} already has a column {change.new!r}")

    def rename(name: str) -> str:
        return change.new if name == change.old else name

    columns = [
        Column(rename(col.name), col.ctype, col.nullable, col.default, col.pii)
        for col in schema.columns
    ]
    foreign_keys = [
        ForeignKey(rename(fk.column), fk.parent_table, fk.parent_column, fk.on_delete)
        for fk in schema.foreign_keys
    ]
    new_schema = TableSchema(
        schema.name, columns, rename(schema.primary_key), foreign_keys
    )
    _rebuild_table(
        db,
        change.table,
        new_schema,
        lambda row: {rename(k): v for k, v in row.items()},
    )
    # If the renamed column is the table's primary key, children's FK
    # targets must follow.
    if change.old == schema.primary_key:
        for child_schema, fk in list(db.schema.referencing(change.table)):
            if fk.parent_column == change.old:
                _retarget_fk(db, child_schema.name, fk.column, change.table, change.new)


def _retarget_fk(
    db: Database, child: str, fk_column: str, parent_table: str, parent_column: str
) -> None:
    schema = db.table(child).schema
    foreign_keys = [
        ForeignKey(fk.column, parent_table, parent_column, fk.on_delete)
        if fk.column == fk_column
        else fk
        for fk in schema.foreign_keys
    ]
    new_schema = TableSchema(
        schema.name, schema.columns, schema.primary_key, foreign_keys
    )
    _rebuild_table(db, child, new_schema, lambda row: row)


def _rename_table(db: Database, change: RenameTable) -> None:
    if db.has_table(change.new):
        raise SchemaError(f"a table named {change.new!r} already exists")
    schema = db.table(change.table).schema
    new_schema = TableSchema(
        change.new, schema.columns, schema.primary_key, schema.foreign_keys
    )
    _rebuild_table(db, change.table, new_schema, lambda row: row)
    # The id high-water mark follows the table (ids must stay unrecycled).
    if change.table in db._id_watermark:
        db._id_watermark[change.new] = db._id_watermark.pop(change.table)
    # Repoint every FK that referenced the old name.
    for other in list(db.schema):
        if other.name == change.new:
            continue
        if any(fk.parent_table == change.table for fk in other.foreign_keys):
            foreign_keys = [
                ForeignKey(fk.column, change.new, fk.parent_column, fk.on_delete)
                if fk.parent_table == change.table
                else fk
                for fk in other.foreign_keys
            ]
            new_other = TableSchema(
                other.name, other.columns, other.primary_key, foreign_keys
            )
            _rebuild_table(db, other.name, new_other, lambda row: row)
    # Self-references were rewritten as part of new_schema? No: fix them.
    renamed = db.table(change.new).schema
    if any(fk.parent_table == change.table for fk in renamed.foreign_keys):
        foreign_keys = [
            ForeignKey(fk.column, change.new, fk.parent_column, fk.on_delete)
            if fk.parent_table == change.table
            else fk
            for fk in renamed.foreign_keys
        ]
        new_self = TableSchema(
            change.new, renamed.columns, renamed.primary_key, foreign_keys
        )
        _rebuild_table(db, change.new, new_self, lambda row: row)
