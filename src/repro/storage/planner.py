"""Access-path planning: turning WHERE predicates into index probes.

The §6 linearity claim — disguise cost proportional to the number of
affected objects — only holds when row selection is index-accelerated.
The original engine probed indexes for plain ``column = value`` equalities;
this module generalizes that into a small planner covering the predicate
shapes disguise specs and application queries actually use:

* ``col = v`` (literal or ``$param``)            -> single bucket probe
* ``col IN (v1, v2, ...)``                       -> union of bucket probes
* ``col = v1 OR col = v2 OR other = v3``         -> union of probes
* ``col > v`` / ``>=`` / ``<`` / ``<=``          -> sorted-key range probe
* ``col BETWEEN lo AND hi``                      -> sorted-key range probe
* ``col IS NULL``                                -> NULL-bucket probe
* ``a AND b``                                    -> cheapest plannable arm

A plan never changes results — it only narrows the candidate row set that
the predicate is then evaluated against, so every path must produce a
*superset* of the rows on which the predicate could evaluate to TRUE. SQL
three-valued logic makes this easy: a comparison with a non-NULL constant
can only be TRUE for rows whose column value equals (or falls in range of)
that constant, and NULL column values always yield UNKNOWN, never TRUE.

:func:`extract_path` is pure predicate analysis (no table access) so it is
unit-testable in isolation; :class:`repro.storage.table.Table` executes the
returned path against its indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.storage.predicate import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FalseP,
    InList,
    IsNull,
    Literal,
    Or,
    Param,
    Predicate,
)

__all__ = [
    "AccessPath",
    "EqProbe",
    "MultiProbe",
    "RangeProbe",
    "UnionPath",
    "EmptyPath",
    "extract_path",
]


class AccessPath:
    """Base class for planned access paths.

    ``cost_rank`` orders paths by expected selectivity so AND nodes can
    pick the cheapest plannable arm (lower = tighter candidate set).
    """

    cost_rank = 99

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class EqProbe(AccessPath):
    """``column = value`` (or ``column IS NULL`` as value=None)."""

    column: str
    value: Any

    cost_rank = 0

    def describe(self) -> str:
        return f"eq({self.column})"


@dataclass(frozen=True)
class MultiProbe(AccessPath):
    """``column IN (v1, ..., vk)`` — union of k bucket lookups."""

    column: str
    values: tuple[Any, ...]

    cost_rank = 1

    def describe(self) -> str:
        return f"in({self.column}, {len(self.values)})"


@dataclass(frozen=True)
class RangeProbe(AccessPath):
    """``lo <(=) column <(=) hi``; a None bound is unbounded."""

    column: str
    lo: Any = None
    hi: Any = None
    lo_incl: bool = True
    hi_incl: bool = True

    cost_rank = 2

    def describe(self) -> str:
        lo = "" if self.lo is None else f"{self.lo!r} <{'=' if self.lo_incl else ''} "
        hi = "" if self.hi is None else f" <{'=' if self.hi_incl else ''} {self.hi!r}"
        return f"range({lo}{self.column}{hi})"


@dataclass(frozen=True)
class UnionPath(AccessPath):
    """OR of plannable arms — candidates are the union of each arm's."""

    paths: tuple[AccessPath, ...]

    cost_rank = 3

    def describe(self) -> str:
        return "union(" + ", ".join(p.describe() for p in self.paths) + ")"


@dataclass(frozen=True)
class EmptyPath(AccessPath):
    """A predicate that can never be TRUE (``FALSE``) — zero candidates."""

    cost_rank = -1

    def describe(self) -> str:
        return "empty"


def _const_value(expr: Expr, params: Mapping[str, Any]) -> tuple[bool, Any]:
    """(is_constant, value) for literal/param expressions."""
    if isinstance(expr, Literal):
        return True, expr.value
    if isinstance(expr, Param) and expr.name in params:
        return True, params[expr.name]
    return False, None


def _column_and_const(
    left: Expr, right: Expr, params: Mapping[str, Any]
) -> tuple[str, Any, bool] | None:
    """Resolve ``col OP const`` in either orientation.

    Returns (column, value, flipped) where flipped means the column was on
    the right-hand side (so the comparison direction must be mirrored).
    """
    if isinstance(left, ColumnRef):
        ok, value = _const_value(right, params)
        if ok:
            return left.name, value, False
    if isinstance(right, ColumnRef):
        ok, value = _const_value(left, params)
        if ok:
            return right.name, value, True
    return None


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def extract_path(
    pred: Predicate,
    params: Mapping[str, Any],
    is_indexed: Callable[[str], bool],
) -> AccessPath | None:
    """The best index-usable access path for *pred*, or None for a full scan.

    *is_indexed* reports whether a column has an index available (primary
    key or secondary); unindexed columns never yield a path.
    """
    if isinstance(pred, FalseP):
        return EmptyPath()
    if isinstance(pred, And):
        left = extract_path(pred.left, params, is_indexed)
        right = extract_path(pred.right, params, is_indexed)
        if left is None:
            return right
        if right is None:
            return left
        return left if left.cost_rank <= right.cost_rank else right
    if isinstance(pred, Or):
        left = extract_path(pred.left, params, is_indexed)
        right = extract_path(pred.right, params, is_indexed)
        if left is None or right is None:
            return None  # one arm unplannable -> the union is unbounded
        arms: list[AccessPath] = []
        for arm in (left, right):
            if isinstance(arm, EmptyPath):
                continue
            if isinstance(arm, UnionPath):
                arms.extend(arm.paths)
            else:
                arms.append(arm)
        if not arms:
            return EmptyPath()
        if len(arms) == 1:
            return arms[0]
        return UnionPath(tuple(arms))
    if isinstance(pred, Comparison):
        resolved = _column_and_const(pred.left, pred.right, params)
        if resolved is None:
            return None
        column, value, flipped = resolved
        if not is_indexed(column):
            return None
        op = _MIRROR[pred.op] if flipped and pred.op in _MIRROR else pred.op
        if op == "=":
            if value is None:
                return EmptyPath()  # col = NULL is never TRUE
            return EqProbe(column, value)
        if op == ">":
            return None if value is None else RangeProbe(column, lo=value, lo_incl=False)
        if op == ">=":
            return None if value is None else RangeProbe(column, lo=value)
        if op == "<":
            return None if value is None else RangeProbe(column, hi=value, hi_incl=False)
        if op == "<=":
            return None if value is None else RangeProbe(column, hi=value)
        return None  # != cannot narrow
    if isinstance(pred, InList) and not pred.negated:
        if not isinstance(pred.expr, ColumnRef) or not is_indexed(pred.expr.name):
            return None
        values = []
        for item in pred.items:
            ok, value = _const_value(item, params)
            if not ok:
                return None
            if value is not None:  # a NULL item never makes the IN TRUE
                values.append(value)
        if not values:
            return EmptyPath()
        if len(values) == 1:
            return EqProbe(pred.expr.name, values[0])
        return MultiProbe(pred.expr.name, tuple(values))
    if isinstance(pred, Between) and not pred.negated:
        if not isinstance(pred.expr, ColumnRef) or not is_indexed(pred.expr.name):
            return None
        lo_ok, lo = _const_value(pred.lo, params)
        hi_ok, hi = _const_value(pred.hi, params)
        if not lo_ok or not hi_ok or lo is None or hi is None:
            return None
        return RangeProbe(pred.expr.name, lo=lo, hi=hi)
    if isinstance(pred, IsNull) and not pred.negated:
        if isinstance(pred.expr, ColumnRef) and is_indexed(pred.expr.name):
            return EqProbe(pred.expr.name, None)
        return None
    return None
