"""Access-path planning: turning WHERE predicates into index probes.

The §6 linearity claim — disguise cost proportional to the number of
affected objects — only holds when row selection is index-accelerated.
The original engine probed indexes for plain ``column = value`` equalities;
this module generalizes that into a small planner covering the predicate
shapes disguise specs and application queries actually use:

* ``col = v`` (literal or ``$param``)            -> single bucket probe
* ``col IN (v1, v2, ...)``                       -> union of bucket probes
* ``col = v1 OR col = v2 OR other = v3``         -> union of probes
* ``col > v`` / ``>=`` / ``<`` / ``<=``          -> sorted-key range probe
* ``col BETWEEN lo AND hi``                      -> sorted-key range probe
* ``col IS NULL``                                -> NULL-bucket probe
* ``a AND b``                                    -> cheapest plannable arm

A plan never changes results — it only narrows the candidate row set that
the predicate is then evaluated against, so every path must produce a
*superset* of the rows on which the predicate could evaluate to TRUE. SQL
three-valued logic makes this easy: a comparison with a non-NULL constant
can only be TRUE for rows whose column value equals (or falls in range of)
that constant, and NULL column values always yield UNKNOWN, never TRUE.

Planning is split into three phases so plans can be *cached across
parameter values* (see :class:`repro.storage.compile.PlanCache`):

1. :func:`extract_template` — pure structural analysis of the predicate.
   ``$param`` operands stay symbolic (:class:`ParamRef` slots) and AND
   nodes keep *all* plannable arms as a :class:`ChoicePath` instead of
   committing to one, since the right choice depends on data.
2. :func:`bind_path` — substitute one invocation's parameter values into
   the template. Cheap; runs per scan.
3. :func:`choose_path` — resolve ChoicePath alternatives and the
   probe-vs-full-scan decision by **estimated rows examined**, using the
   table's incremental statistics (:mod:`repro.storage.stats`) and exact
   index metadata. An equality probe on a two-valued column loses to a
   tight range probe here, which the old shape-based ranking got wrong.

:func:`extract_path` (the PR 1 API) is kept and now simply runs phases
1+2 with a statistics-free static tiebreak, so existing callers and tests
see identical plans; :class:`repro.storage.table.Table` uses the phased
API plus :func:`choose_path`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Protocol

from repro.storage.predicate import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FalseP,
    InList,
    IsNull,
    Literal,
    Or,
    Param,
    Predicate,
)

__all__ = [
    "AccessPath",
    "EqProbe",
    "MultiProbe",
    "RangeProbe",
    "UnionPath",
    "EmptyPath",
    "ChoicePath",
    "ParamRef",
    "extract_path",
    "extract_template",
    "bind_path",
    "estimate_rows",
    "choose_path",
    "FULL_SCAN_THRESHOLD",
]


class AccessPath:
    """Base class for planned access paths.

    ``cost_rank`` orders paths by expected selectivity so AND nodes can
    pick the cheapest plannable arm (lower = tighter candidate set) when
    no statistics are available.
    """

    cost_rank = 99

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ParamRef:
    """A ``$param`` slot inside an access-path template.

    Templates are extracted once per (table, predicate) and cached; the
    actual value is substituted by :func:`bind_path` on every scan, so one
    template serves every parameter binding.
    """

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class EqProbe(AccessPath):
    """``column = value`` (or ``column IS NULL`` as value=None)."""

    column: str
    value: Any

    cost_rank = 0

    def describe(self) -> str:
        return f"eq({self.column})"


@dataclass(frozen=True)
class MultiProbe(AccessPath):
    """``column IN (v1, ..., vk)`` — union of k bucket lookups."""

    column: str
    values: tuple[Any, ...]

    cost_rank = 1

    def describe(self) -> str:
        return f"in({self.column}, {len(self.values)})"


@dataclass(frozen=True)
class RangeProbe(AccessPath):
    """``lo <(=) column <(=) hi``; a None bound is unbounded."""

    column: str
    lo: Any = None
    hi: Any = None
    lo_incl: bool = True
    hi_incl: bool = True

    cost_rank = 2

    def describe(self) -> str:
        lo = "" if self.lo is None else f"{self.lo!r} <{'=' if self.lo_incl else ''} "
        hi = "" if self.hi is None else f" <{'=' if self.hi_incl else ''} {self.hi!r}"
        return f"range({lo}{self.column}{hi})"


@dataclass(frozen=True)
class UnionPath(AccessPath):
    """OR of plannable arms — candidates are the union of each arm's."""

    paths: tuple[AccessPath, ...]

    cost_rank = 3

    def describe(self) -> str:
        return "union(" + ", ".join(p.describe() for p in self.paths) + ")"


@dataclass(frozen=True)
class EmptyPath(AccessPath):
    """A predicate that can never be TRUE (``FALSE``) — zero candidates."""

    cost_rank = -1

    def describe(self) -> str:
        return "empty"


@dataclass(frozen=True)
class ChoicePath(AccessPath):
    """Alternative paths from an AND's arms — *any one* is a valid plan.

    Rows where ``a AND b`` is TRUE satisfy both arms, so either arm's
    candidates form a superset. The template keeps every plannable arm;
    :func:`choose_path` picks the one with the fewest estimated rows at
    scan time (parameter values and table contents both matter).
    """

    alternatives: tuple[AccessPath, ...]

    @property
    def cost_rank(self) -> int:  # type: ignore[override]
        return min(alt.cost_rank for alt in self.alternatives)

    def describe(self) -> str:
        return "choice(" + " | ".join(p.describe() for p in self.alternatives) + ")"


def _template_value(expr: Expr) -> tuple[bool, Any]:
    """(usable, value-or-ParamRef) for literal/param template operands."""
    if type(expr) is Literal:
        return True, expr.value
    if type(expr) is Param:
        return True, ParamRef(expr.name)
    return False, None


def _column_and_const(left: Expr, right: Expr) -> tuple[str, Any, bool] | None:
    """Resolve ``col OP const-or-param`` in either orientation.

    Returns (column, value, flipped) where flipped means the column was on
    the right-hand side (so the comparison direction must be mirrored).
    """
    if type(left) is ColumnRef:
        ok, value = _template_value(right)
        if ok:
            return left.name, value, False
    if type(right) is ColumnRef:
        ok, value = _template_value(left)
        if ok:
            return right.name, value, True
    return None


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _static_best(path: AccessPath) -> AccessPath:
    """Resolve a ChoicePath without statistics: first arm of minimal rank.

    This reproduces the PR 1 iterated ``left if left.cost_rank <=
    right.cost_rank else right`` exactly (ties keep the earlier arm).
    """
    if isinstance(path, ChoicePath):
        return min(path.alternatives, key=lambda alt: alt.cost_rank)
    return path


def extract_template(
    pred: Predicate,
    is_indexed: Callable[[str], bool],
) -> AccessPath | None:
    """The index-usable access-path *template* for *pred*, or None.

    Parameter operands become :class:`ParamRef` slots and AND arms stay as
    a :class:`ChoicePath`; call :func:`bind_path` then :func:`choose_path`
    to obtain an executable path for one invocation. *is_indexed* reports
    whether a column has an index available; unindexed columns never yield
    a path.

    Node dispatch is on exact type: a user subclass overriding ``eval3``
    has unknown semantics, so planning it structurally could narrow the
    candidate set below the rows it matches. Subclasses always full-scan.
    """
    if type(pred) is FalseP:
        return EmptyPath()
    if type(pred) is And:
        left = extract_template(pred.left, is_indexed)
        right = extract_template(pred.right, is_indexed)
        if left is None:
            return right
        if right is None:
            return left
        # FALSE on either arm makes the AND unsatisfiable outright.
        if isinstance(left, EmptyPath) or isinstance(right, EmptyPath):
            return EmptyPath()
        alts: list[AccessPath] = []
        for arm in (left, right):
            if isinstance(arm, ChoicePath):
                alts.extend(arm.alternatives)
            else:
                alts.append(arm)
        return ChoicePath(tuple(alts))
    if type(pred) is Or:
        left = extract_template(pred.left, is_indexed)
        right = extract_template(pred.right, is_indexed)
        if left is None or right is None:
            return None  # one arm unplannable -> the union is unbounded
        arms: list[AccessPath] = []
        for arm in (left, right):
            # Inside a union each arm must be a single concrete probe:
            # commit AND-choices by static rank (statistics still steer
            # the union-vs-full-scan decision as a whole).
            arm = _static_best(arm)
            if isinstance(arm, EmptyPath):
                continue
            if isinstance(arm, UnionPath):
                arms.extend(arm.paths)
            else:
                arms.append(arm)
        if not arms:
            return EmptyPath()
        if len(arms) == 1:
            return arms[0]
        return UnionPath(tuple(arms))
    if type(pred) is Comparison:
        resolved = _column_and_const(pred.left, pred.right)
        if resolved is None:
            return None
        column, value, flipped = resolved
        if not is_indexed(column):
            return None
        op = _MIRROR[pred.op] if flipped and pred.op in _MIRROR else pred.op
        if op == "=":
            if value is None:
                return EmptyPath()  # col = NULL is never TRUE
            return EqProbe(column, value)
        if value is None:
            return None  # col > NULL etc. — PR 1 treated this as unplannable

        if op == ">":
            return RangeProbe(column, lo=value, lo_incl=False)
        if op == ">=":
            return RangeProbe(column, lo=value)
        if op == "<":
            return RangeProbe(column, hi=value, hi_incl=False)
        if op == "<=":
            return RangeProbe(column, hi=value)
        return None  # != cannot narrow
    if type(pred) is InList and not pred.negated:
        if type(pred.expr) is not ColumnRef or not is_indexed(pred.expr.name):
            return None
        values = []
        for item in pred.items:
            ok, value = _template_value(item)
            if not ok:
                return None
            if value is not None:  # a NULL item never makes the IN TRUE
                values.append(value)
        if not values:
            return EmptyPath()
        if len(values) == 1:
            return EqProbe(pred.expr.name, values[0])
        return MultiProbe(pred.expr.name, tuple(values))
    if type(pred) is Between and not pred.negated:
        if type(pred.expr) is not ColumnRef or not is_indexed(pred.expr.name):
            return None
        lo_ok, lo = _template_value(pred.lo)
        hi_ok, hi = _template_value(pred.hi)
        if not lo_ok or not hi_ok or lo is None or hi is None:
            return None
        return RangeProbe(pred.expr.name, lo=lo, hi=hi)
    if type(pred) is IsNull and not pred.negated:
        if type(pred.expr) is ColumnRef and is_indexed(pred.expr.name):
            return EqProbe(pred.expr.name, None)
        return None
    return None


# --------------------------------------------------------------------------
# Binding: substitute one invocation's parameters into a template
# --------------------------------------------------------------------------

_UNBOUND = object()


def _bind_value(value: Any, params: Mapping[str, Any]) -> Any:
    if isinstance(value, ParamRef):
        return params.get(value.name, _UNBOUND)
    return value


def bind_path(template: AccessPath, params: Mapping[str, Any]) -> AccessPath | None:
    """Substitute *params* into *template*; None means "full scan".

    Mirrors what PR 1's value-embedding extraction produced for the same
    parameter binding: an unbound parameter makes the path unusable, an
    equality against a NULL parameter can never be TRUE (EmptyPath), NULL
    range bounds and NULL IN-items degrade exactly as literals did.
    """
    if isinstance(template, EmptyPath):
        return template
    if isinstance(template, EqProbe):
        value = _bind_value(template.value, params)
        if value is _UNBOUND:
            return None
        if value is None and isinstance(template.value, ParamRef):
            return EmptyPath()  # col = NULL is never TRUE
        return EqProbe(template.column, value) if value is not template.value else template
    if isinstance(template, MultiProbe):
        values = []
        for raw in template.values:
            value = _bind_value(raw, params)
            if value is _UNBOUND:
                return None
            if value is not None:  # NULL item never makes the IN TRUE
                values.append(value)
        if not values:
            return EmptyPath()
        if len(values) == 1:
            return EqProbe(template.column, values[0])
        return MultiProbe(template.column, tuple(values))
    if isinstance(template, RangeProbe):
        lo = _bind_value(template.lo, params)
        hi = _bind_value(template.hi, params)
        if lo is _UNBOUND or hi is _UNBOUND:
            return None
        if (lo is None and isinstance(template.lo, ParamRef)) or (
            hi is None and isinstance(template.hi, ParamRef)
        ):
            return None  # NULL bound: PR 1 fell back to a full scan
        if lo is template.lo and hi is template.hi:
            return template
        return RangeProbe(template.column, lo, hi, template.lo_incl, template.hi_incl)
    if isinstance(template, UnionPath):
        arms: list[AccessPath] = []
        for arm_template in template.paths:
            arm = bind_path(arm_template, params)
            if arm is None:
                return None  # one arm unbounded -> the union is unbounded
            if isinstance(arm, EmptyPath):
                continue
            arms.append(arm)
        if not arms:
            return EmptyPath()
        if len(arms) == 1:
            return arms[0]
        return UnionPath(tuple(arms))
    if isinstance(template, ChoicePath):
        alts: list[AccessPath] = []
        for alt_template in template.alternatives:
            alt = bind_path(alt_template, params)
            if alt is None:
                continue  # that arm is unusable for this binding
            if isinstance(alt, EmptyPath):
                return alt  # the AND can never be TRUE
            alts.append(alt)
        if not alts:
            return None
        if len(alts) == 1:
            return alts[0]
        return ChoicePath(tuple(alts))
    return None


def extract_path(
    pred: Predicate,
    params: Mapping[str, Any],
    is_indexed: Callable[[str], bool],
) -> AccessPath | None:
    """The best index-usable access path for *pred*, or None for a full scan.

    PR 1 compatibility API: template extraction + binding + the static
    shape-based tiebreak, with parameter values embedded in the result.
    Statistics-aware callers use the phased API directly.
    """
    template = extract_template(pred, is_indexed)
    if template is None:
        return None
    bound = bind_path(template, params)
    if bound is None:
        return None
    return _static_best(bound)


# --------------------------------------------------------------------------
# Cost estimation: statistics in, estimated rows examined out
# --------------------------------------------------------------------------


class StatsProvider(Protocol):
    """What the cost model needs from a table (duck-typed by ``Table``)."""

    def stat_row_count(self) -> int: ...
    def stat_distinct(self, column: str) -> int | None: ...
    def stat_null_count(self, column: str) -> int: ...
    def stat_min_max(self, column: str) -> tuple[Any, Any] | None: ...


# Fraction of the table a range probe is assumed to touch when min/max
# interpolation is impossible (non-numeric bounds, no statistics).
_DEFAULT_RANGE_FRACTION = 1 / 3

# A probe estimated to examine more than this fraction of the table loses
# to a plain full scan: walking the row dict is cheaper per row than
# probing buckets, sorting rids, and chasing them individually.
FULL_SCAN_THRESHOLD = 0.9


def _range_fraction(probe: RangeProbe, table: StatsProvider) -> float:
    bounds = table.stat_min_max(probe.column)
    if bounds is None:
        return _DEFAULT_RANGE_FRACTION
    lo_all, hi_all = bounds
    if not all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in (lo_all, hi_all)
        if v is not None
    ):
        return _DEFAULT_RANGE_FRACTION
    if not isinstance(lo_all, (int, float)) or not isinstance(hi_all, (int, float)):
        return _DEFAULT_RANGE_FRACTION
    width = hi_all - lo_all
    if width <= 0:
        return 1.0  # single-valued column: the range hits all or nothing
    lo = probe.lo if isinstance(probe.lo, (int, float)) and not isinstance(probe.lo, bool) else lo_all
    hi = probe.hi if isinstance(probe.hi, (int, float)) and not isinstance(probe.hi, bool) else hi_all
    lo = max(lo, lo_all)
    hi = min(hi, hi_all)
    if hi < lo:
        return 0.0
    return min(1.0, max(0.0, (hi - lo) / width))


def estimate_rows(path: AccessPath, table: StatsProvider) -> float:
    """Estimated rows a path will examine (never affects correctness)."""
    rows = table.stat_row_count()
    if rows == 0 or isinstance(path, EmptyPath):
        return 0.0
    if isinstance(path, EqProbe):
        if path.value is None:
            return float(table.stat_null_count(path.column))
        distinct = table.stat_distinct(path.column)
        if not distinct:
            return float(rows)
        return max(1.0, rows / distinct)
    if isinstance(path, MultiProbe):
        per_probe = estimate_rows(EqProbe(path.column, path.values[0]), table)
        return min(float(rows), per_probe * len(path.values))
    if isinstance(path, RangeProbe):
        non_null = rows - table.stat_null_count(path.column)
        return max(0.0, _range_fraction(path, table) * non_null)
    if isinstance(path, UnionPath):
        return min(float(rows), sum(estimate_rows(arm, table) for arm in path.paths))
    if isinstance(path, ChoicePath):
        return min(estimate_rows(alt, table) for alt in path.alternatives)
    return float(rows)


def choose_path(
    path: AccessPath | None, table: StatsProvider
) -> tuple[AccessPath | None, float]:
    """Resolve a bound path into ``(executable path | None, estimate)``.

    Picks the cheapest ChoicePath alternative by estimated rows examined
    (first wins ties, matching the static tiebreak) and demotes probes
    whose estimate exceeds :data:`FULL_SCAN_THRESHOLD` of the table to a
    plain full scan (returned as ``None``).
    """
    rows = float(table.stat_row_count())
    if path is None:
        return None, rows
    if isinstance(path, ChoicePath):
        best = None
        best_est = None
        for alt in path.alternatives:
            est = estimate_rows(alt, table)
            if best_est is None or est < best_est:
                best, best_est = alt, est
        path, estimate = best, best_est if best_est is not None else rows
    else:
        estimate = estimate_rows(path, table)
    if isinstance(path, EmptyPath):
        return path, 0.0
    if estimate > FULL_SCAN_THRESHOLD * rows:
        return None, rows
    return path, estimate
