"""Hash indexes over table columns, with a sorted-key range capability.

The engine maintains a unique index on every primary key and non-unique
indexes on every foreign-key column (so decorrelation's "find all rows
pointing at user U" scans are O(matches), which is what makes disguise cost
proportional to the number of affected objects — the §6 linearity claim).
Additional secondary indexes can be created explicitly.

Both index kinds keep a lazily rebuilt sorted list of their keys so the
query planner can serve range predicates (``col > v``, ``BETWEEN``) with a
bisect over the keys instead of a full table scan. The sorted list is
invalidated whenever the key set changes and rebuilt on the next range
probe; columns whose keys do not admit a total order (mixed types) simply
report the range as unplannable and the caller falls back to a scan.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

from repro.errors import ConstraintError

__all__ = ["HashIndex", "UniqueIndex"]


class _SortedKeys:
    """Lazily maintained sorted key list shared by both index kinds."""

    __slots__ = ("_keys", "_dirty")

    def __init__(self) -> None:
        self._keys: list[Any] | None = None
        self._dirty = True

    def invalidate(self) -> None:
        self._dirty = True

    def get(self, live_keys: Iterable[Any]) -> list[Any] | None:
        """The sorted non-NULL keys, or None when they cannot be ordered."""
        if self._dirty:
            try:
                self._keys = sorted(k for k in live_keys if k is not None)
            except TypeError:
                self._keys = None
            self._dirty = False
        return self._keys


def _keys_in_range(
    keys: list[Any],
    lo: Any,
    hi: Any,
    lo_incl: bool,
    hi_incl: bool,
) -> list[Any]:
    """Slice of *keys* (sorted) within the [lo, hi] bounds; None = unbounded."""
    start = 0
    end = len(keys)
    if lo is not None:
        start = bisect.bisect_left(keys, lo) if lo_incl else bisect.bisect_right(keys, lo)
    if hi is not None:
        end = bisect.bisect_right(keys, hi) if hi_incl else bisect.bisect_left(keys, hi)
    return keys[start:end]


class HashIndex:
    """Non-unique hash index: column value -> set of row ids."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, set[int]] = {}
        self._size = 0
        self._sorted = _SortedKeys()

    def insert(self, value: Any, rid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is None:
            self._buckets[value] = {rid}
            self._sorted.invalidate()
            self._size += 1
            return
        before = len(bucket)
        bucket.add(rid)
        self._size += len(bucket) - before

    def remove(self, value: Any, rid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            before = len(bucket)
            bucket.discard(rid)
            self._size -= before - len(bucket)
            if not bucket:
                del self._buckets[value]
                self._sorted.invalidate()

    def apply_batch(
        self,
        removes: Iterable[tuple[Any, int]],
        inserts: Iterable[tuple[Any, int]],
    ) -> None:
        """Apply grouped ``(value, rid)`` removals then insertions in one pass.

        Equivalent to per-pair :meth:`remove`/:meth:`insert` calls, but a
        batched write statement makes one call per index instead of two per
        row, and the sorted-key list is invalidated at most once.
        """
        buckets = self._buckets
        size = self._size
        keys_changed = False
        for value, rid in removes:
            bucket = buckets.get(value)
            if bucket is not None:
                before = len(bucket)
                bucket.discard(rid)
                size -= before - len(bucket)
                if not bucket:
                    del buckets[value]
                    keys_changed = True
        for value, rid in inserts:
            bucket = buckets.get(value)
            if bucket is None:
                buckets[value] = {rid}
                size += 1
                keys_changed = True
            elif rid not in bucket:
                bucket.add(rid)
                size += 1
        self._size = size
        if keys_changed:
            self._sorted.invalidate()

    def lookup(self, value: Any) -> frozenset[int]:
        return frozenset(self._buckets.get(value, ()))

    def range_rids(
        self,
        lo: Any,
        hi: Any,
        lo_incl: bool = True,
        hi_incl: bool = True,
    ) -> list[int] | None:
        """Row ids whose key falls in the range, or None if unplannable."""
        keys = self._sorted.get(self._buckets.keys())
        if keys is None:
            return None
        out: list[int] = []
        try:
            selected = _keys_in_range(keys, lo, hi, lo_incl, hi_incl)
        except TypeError:
            return None  # bound not comparable with the stored keys
        for key in selected:
            out.extend(self._buckets[key])
        return out

    def values(self) -> Iterable[Any]:
        return self._buckets.keys()

    def distinct(self) -> int:
        """Exact number of distinct keys currently indexed (incl. NULL)."""
        return len(self._buckets)

    def key_bounds(self) -> tuple[Any, Any] | None:
        """(min, max) over the non-NULL keys, or None if unorderable/empty.

        Served from the lazily maintained sorted key list, so it is free
        when a range probe has already run and O(n log n) at worst.
        """
        keys = self._sorted.get(self._buckets.keys())
        if not keys:
            return None
        return keys[0], keys[-1]

    def __len__(self) -> int:
        return self._size


class UniqueIndex:
    """Unique hash index: column value -> single row id."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._slots: dict[Any, int] = {}
        self._sorted = _SortedKeys()

    def insert(self, value: Any, rid: int) -> None:
        if value in self._slots:
            raise ConstraintError(
                f"duplicate value {value!r} for unique column {self.column!r}"
            )
        self._slots[value] = rid
        self._sorted.invalidate()

    def remove(self, value: Any, rid: int) -> None:
        existing = self._slots.get(value)
        if existing == rid:
            del self._slots[value]
            self._sorted.invalidate()

    def lookup(self, value: Any) -> int | None:
        return self._slots.get(value)

    def range_rids(
        self,
        lo: Any,
        hi: Any,
        lo_incl: bool = True,
        hi_incl: bool = True,
    ) -> list[int] | None:
        """Row ids whose key falls in the range, or None if unplannable."""
        keys = self._sorted.get(self._slots.keys())
        if keys is None:
            return None
        try:
            selected = _keys_in_range(keys, lo, hi, lo_incl, hi_incl)
        except TypeError:
            return None
        return [self._slots[key] for key in selected]

    def distinct(self) -> int:
        """Exact number of distinct keys (every key is unique here)."""
        return len(self._slots)

    def key_bounds(self) -> tuple[Any, Any] | None:
        """(min, max) over the non-NULL keys, or None if unorderable/empty."""
        keys = self._sorted.get(self._slots.keys())
        if not keys:
            return None
        return keys[0], keys[-1]

    def __contains__(self, value: Any) -> bool:
        return value in self._slots

    def __len__(self) -> int:
        return len(self._slots)
