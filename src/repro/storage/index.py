"""Hash indexes over table columns.

The engine maintains a unique index on every primary key and non-unique
indexes on every foreign-key column (so decorrelation's "find all rows
pointing at user U" scans are O(matches), which is what makes disguise cost
proportional to the number of affected objects — the §6 linearity claim).
Additional secondary indexes can be created explicitly.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConstraintError

__all__ = ["HashIndex", "UniqueIndex"]


class HashIndex:
    """Non-unique hash index: column value -> set of row ids."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, set[int]] = {}

    def insert(self, value: Any, rid: int) -> None:
        self._buckets.setdefault(value, set()).add(rid)

    def remove(self, value: Any, rid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> frozenset[int]:
        return frozenset(self._buckets.get(value, ()))

    def values(self) -> Iterable[Any]:
        return self._buckets.keys()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class UniqueIndex:
    """Unique hash index: column value -> single row id."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._slots: dict[Any, int] = {}

    def insert(self, value: Any, rid: int) -> None:
        if value in self._slots:
            raise ConstraintError(
                f"duplicate value {value!r} for unique column {self.column!r}"
            )
        self._slots[value] = rid

    def remove(self, value: Any, rid: int) -> None:
        existing = self._slots.get(value)
        if existing == rid:
            del self._slots[value]

    def lookup(self, value: Any) -> int | None:
        return self._slots.get(value)

    def __contains__(self, value: Any) -> bool:
        return value in self._slots

    def __len__(self) -> int:
        return len(self._slots)
