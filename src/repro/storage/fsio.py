"""Filesystem dispatch: real ``pathlib``/``os`` or the simulated fs.

The storage stack (WAL, snapshots, job queue, file vault) performs a
small set of durability-sensitive operations — open, fsync a handle,
atomically replace, fsync a directory — on paths that may be real
``Path`` objects or :class:`repro.simtest.simfs.SimPath` instances
under deterministic simulation. These helpers pick the right
implementation per call, so the production modules contain no
simulation conditionals beyond routing through this module.

Detection is by the ``_is_simpath`` marker / ``sim_fsync`` hook rather
than an import of ``repro.simtest``, keeping storage import-independent
of the test harness.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

__all__ = ["as_path", "fsync_dir", "fsync_handle", "replace"]


def as_path(path: Any) -> Any:
    """Coerce to ``Path`` unless it is already a simulated path."""
    if getattr(path, "_is_simpath", False):
        return path
    return Path(path)


def fsync_handle(handle: Any) -> None:
    """``os.fsync`` for real handles, the simulated fsync for sim ones."""
    sim = getattr(handle, "sim_fsync", None)
    if sim is not None:
        sim()
        return
    os.fsync(handle.fileno())


def replace(src: Any, dst: Any) -> None:
    """Atomic rename; dispatches on the source path's kind."""
    if getattr(src, "_is_simpath", False):
        src.replace_to(dst)
        return
    os.replace(src, dst)


def fsync_dir(directory: Any) -> None:
    """Make directory-entry updates (renames, creates) durable."""
    if getattr(directory, "_is_simpath", False):
        directory.fs.fsync_dir(str(directory))
        return
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
