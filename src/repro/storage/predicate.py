"""Predicate AST and evaluator with SQL three-valued logic.

Disguise specifications select rows with "arbitrary SQL WHERE clauses"
(paper §5). This module defines the abstract syntax those clauses parse
into (:mod:`repro.storage.sql` builds these nodes) and evaluates them
against row dictionaries.

Evaluation follows SQL semantics: comparisons involving NULL yield
``UNKNOWN``, which AND/OR/NOT propagate per Kleene logic; a row satisfies a
predicate only when the result is ``TRUE``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Mapping

from repro.errors import StorageError, UnknownColumnError
from repro.storage.types import is_comparable

__all__ = [
    "Tristate",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "IsNull",
    "Like",
    "Between",
    "TrueP",
    "FalseP",
    "ColumnRef",
    "Literal",
    "Param",
    "BinOp",
    "Expr",
    "Assignment",
    "SetClause",
    "like_regex",
]


class Tristate(enum.Enum):
    """SQL three-valued truth values."""

    TRUE = 1
    FALSE = 0
    UNKNOWN = -1


def _and3(a: Tristate, b: Tristate) -> Tristate:
    if a is Tristate.FALSE or b is Tristate.FALSE:
        return Tristate.FALSE
    if a is Tristate.TRUE and b is Tristate.TRUE:
        return Tristate.TRUE
    return Tristate.UNKNOWN


def _or3(a: Tristate, b: Tristate) -> Tristate:
    if a is Tristate.TRUE or b is Tristate.TRUE:
        return Tristate.TRUE
    if a is Tristate.FALSE and b is Tristate.FALSE:
        return Tristate.FALSE
    return Tristate.UNKNOWN


def _not3(a: Tristate) -> Tristate:
    if a is Tristate.TRUE:
        return Tristate.FALSE
    if a is Tristate.FALSE:
        return Tristate.TRUE
    return Tristate.UNKNOWN


# --------------------------------------------------------------------------
# Scalar expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions appearing inside predicates."""

    def eval(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        return set()

    def params(self) -> set[str]:
        """Names of all ``$param`` placeholders this expression uses."""
        return set()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column of the row being tested."""

    name: str

    def eval(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise UnknownColumnError(f"row has no column {self.name!r}") from None

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (number, string, bool, or NULL)."""

    value: Any

    def eval(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        return self.value

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A named parameter such as ``$UID``, bound at evaluation time.

    Disguise specs are written once and parameterized per invocation; the
    paper's Figure 3 uses ``$UID`` for "the user invoking the disguise".
    """

    name: str

    def eval(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        try:
            return params[self.name]
        except KeyError:
            raise StorageError(f"unbound predicate parameter ${self.name}") from None

    def params(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return f"${self.name}"


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic on numeric operands; NULL-propagating."""

    op: str
    left: Expr
    right: Expr

    def eval(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        lhs = self.left.eval(row, params)
        rhs = self.right.eval(row, params)
        if lhs is None or rhs is None:
            return None
        if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
            raise StorageError(f"arithmetic on non-numeric values: {lhs!r} {self.op} {rhs!r}")
        try:
            return _ARITH[self.op](lhs, rhs)
        except ZeroDivisionError:
            return None  # SQL: division by zero yields NULL in permissive mode

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def params(self) -> set[str]:
        return self.left.params() | self.right.params()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Assignment:
    """One ``column = expr`` item of an UPDATE SET clause."""

    column: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.column} = {self.expr}"


@dataclass(frozen=True)
class SetClause:
    """A parsed UPDATE SET list: ``col = expr [, col = expr ...]``.

    Frozen and hashable so compiled assignment closures can be cached in
    the plan cache exactly like predicates.
    """

    items: tuple[Assignment, ...]

    def columns(self) -> tuple[str, ...]:
        return tuple(item.column for item in self.items)

    def eval_row(
        self, row: Mapping[str, Any], params: Mapping[str, Any]
    ) -> list[Any]:
        """Interpreter fallback mirroring :meth:`Expr.eval` (used when a
        SET expression has no compiled form)."""
        return [item.expr.eval(row, params) for item in self.items]

    def __str__(self) -> str:
        return ", ".join(str(item) for item in self.items)


# --------------------------------------------------------------------------
# Predicates
# --------------------------------------------------------------------------


class Predicate:
    """Base class for boolean predicates over a row."""

    def test(self, row: Mapping[str, Any], params: Mapping[str, Any] | None = None) -> bool:
        """True iff the predicate evaluates to SQL TRUE for *row*."""
        return self.eval3(row, params or {}) is Tristate.TRUE

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        raise NotImplementedError

    def columns(self) -> set[str]:
        return set()

    def params(self) -> set[str]:
        return set()

    # Convenience combinators -------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TrueP(Predicate):
    """Always TRUE — matches every row (used for table-wide disguises)."""

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        return Tristate.TRUE

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseP(Predicate):
    """Always FALSE."""

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        return Tristate.FALSE

    def __str__(self) -> str:
        return "FALSE"


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left OP right`` with SQL NULL semantics."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise StorageError(f"unknown comparison operator {self.op!r}")

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        lhs = self.left.eval(row, params)
        rhs = self.right.eval(row, params)
        if lhs is None or rhs is None:
            return Tristate.UNKNOWN
        if self.op in ("=", "!="):
            if not is_comparable(lhs, rhs):
                # Cross-type equality is FALSE (not an error): predicates
                # routinely compare a TEXT column against an id parameter.
                return Tristate.FALSE if self.op == "=" else Tristate.TRUE
        elif not is_comparable(lhs, rhs):
            raise StorageError(f"cannot order {lhs!r} against {rhs!r}")
        return Tristate.TRUE if _COMPARATORS[self.op](lhs, rhs) else Tristate.FALSE

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def params(self) -> set[str]:
        return self.left.params() | self.right.params()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        lhs = self.left.eval3(row, params)
        if lhs is Tristate.FALSE:
            return Tristate.FALSE
        return _and3(lhs, self.right.eval3(row, params))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def params(self) -> set[str]:
        return self.left.params() | self.right.params()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        lhs = self.left.eval3(row, params)
        if lhs is Tristate.TRUE:
            return Tristate.TRUE
        return _or3(lhs, self.right.eval3(row, params))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def params(self) -> set[str]:
        return self.left.params() | self.right.params()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        return _not3(self.inner.eval3(row, params))

    def columns(self) -> set[str]:
        return self.inner.columns()

    def params(self) -> set[str]:
        return self.inner.params()

    def __str__(self) -> str:
        return f"(NOT {self.inner})"


@dataclass(frozen=True)
class InList(Predicate):
    """``expr IN (v1, v2, ...)`` with SQL NULL semantics."""

    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        value = self.expr.eval(row, params)
        if value is None:
            return Tristate.UNKNOWN
        saw_null = False
        found = False
        for item in self.items:
            candidate = item.eval(row, params)
            if candidate is None:
                saw_null = True
            elif is_comparable(value, candidate) and value == candidate:
                found = True
                break
        if found:
            result = Tristate.TRUE
        elif saw_null:
            result = Tristate.UNKNOWN
        else:
            result = Tristate.FALSE
        return _not3(result) if self.negated else result

    def columns(self) -> set[str]:
        cols = self.expr.columns()
        for item in self.items:
            cols |= item.columns()
        return cols

    def params(self) -> set[str]:
        names = self.expr.params()
        for item in self.items:
            names |= item.params()
        return names

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"{self.expr} {op} ({', '.join(str(i) for i in self.items)})"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``expr IS [NOT] NULL`` — the only predicate that is never UNKNOWN."""

    expr: Expr
    negated: bool = False

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        is_null = self.expr.eval(row, params) is None
        result = Tristate.TRUE if is_null else Tristate.FALSE
        return _not3(result) if self.negated else result

    def columns(self) -> set[str]:
        return self.expr.columns()

    def params(self) -> set[str]:
        return self.expr.params()

    def __str__(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.expr} {op}"


@lru_cache(maxsize=256)
def like_regex(pattern: str) -> "re.Pattern[str]":
    """Compiled regex for a SQL LIKE *pattern* (module-level LRU).

    Patterns are static strings in the AST, and disguise specs reuse the
    same handful of patterns across every scanned row — caching here means
    the translation and ``re.compile`` run once per distinct pattern
    instead of once per row. Shared by the tree-walking evaluator and the
    closure compiler (:mod:`repro.storage.compile`).
    """
    # Translate SQL wildcards to a regex; everything else is literal.
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


@dataclass(frozen=True)
class Like(Predicate):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""

    expr: Expr
    pattern: str
    negated: bool = False

    def _regex(self) -> "re.Pattern[str]":
        return like_regex(self.pattern)

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        value = self.expr.eval(row, params)
        if value is None:
            return Tristate.UNKNOWN
        if not isinstance(value, str):
            return Tristate.FALSE
        matched = bool(self._regex().match(value))
        result = Tristate.TRUE if matched else Tristate.FALSE
        return _not3(result) if self.negated else result

    def columns(self) -> set[str]:
        return self.expr.columns()

    def params(self) -> set[str]:
        return self.expr.params()

    def __str__(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"{self.expr} {op} '{escaped}'"


@dataclass(frozen=True)
class Between(Predicate):
    """``expr BETWEEN lo AND hi`` (inclusive both ends)."""

    expr: Expr
    lo: Expr
    hi: Expr
    negated: bool = False

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        inner = And(
            Comparison(">=", self.expr, self.lo),
            Comparison("<=", self.expr, self.hi),
        )
        result = inner.eval3(row, params)
        return _not3(result) if self.negated else result

    def columns(self) -> set[str]:
        return self.expr.columns() | self.lo.columns() | self.hi.columns()

    def params(self) -> set[str]:
        return self.expr.params() | self.lo.params() | self.hi.params()

    def __str__(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"{self.expr} {op} {self.lo} AND {self.hi}"


def column_equals(column: str, value: Any) -> Comparison:
    """Convenience constructor for the ubiquitous ``col = literal`` predicate."""
    return Comparison("=", ColumnRef(column), Literal(value))


def column_equals_param(column: str, param: str) -> Comparison:
    """Convenience constructor for ``col = $param`` (e.g. ``contactId = $UID``)."""
    return Comparison("=", ColumnRef(column), Param(param))
