"""Column type system for the embedded relational engine.

The engine supports a small but practical set of SQL-ish types. Values are
stored as plain Python objects; this module defines coercion from arbitrary
Python values into the canonical representation for each type, plus NULL
semantics shared by the predicate evaluator.

Canonical representations:

===========  =========================
Type         Python representation
===========  =========================
INTEGER      :class:`int`
REAL         :class:`float`
TEXT         :class:`str`
BOOL         :class:`bool`
DATETIME     :class:`float` (seconds since an arbitrary epoch; the engine
             never interprets wall-clock time, so a monotonic simulated
             clock works equally well)
BLOB         :class:`bytes`
===========  =========================

``None`` is NULL for every type.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError

__all__ = ["ColumnType", "coerce", "type_name", "is_comparable"]


class ColumnType(enum.Enum):
    """Declared type of a table column."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOL = "BOOL"
    DATETIME = "DATETIME"
    BLOB = "BLOB"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TYPE_ALIASES = {
    "INT": ColumnType.INTEGER,
    "INTEGER": ColumnType.INTEGER,
    "BIGINT": ColumnType.INTEGER,
    "SMALLINT": ColumnType.INTEGER,
    "TINYINT": ColumnType.INTEGER,
    "REAL": ColumnType.REAL,
    "FLOAT": ColumnType.REAL,
    "DOUBLE": ColumnType.REAL,
    "TEXT": ColumnType.TEXT,
    "VARCHAR": ColumnType.TEXT,
    "CHAR": ColumnType.TEXT,
    "STRING": ColumnType.TEXT,
    "BOOL": ColumnType.BOOL,
    "BOOLEAN": ColumnType.BOOL,
    "DATETIME": ColumnType.DATETIME,
    "TIMESTAMP": ColumnType.DATETIME,
    "DATE": ColumnType.DATETIME,
    "BLOB": ColumnType.BLOB,
    "BINARY": ColumnType.BLOB,
}


def parse_type(name: str) -> ColumnType:
    """Resolve a SQL type name (including common aliases) to a ColumnType.

    Parenthesized length suffixes such as ``VARCHAR(255)`` are accepted and
    ignored, matching the permissive behaviour of SQLite.
    """
    base = name.strip().upper()
    if "(" in base:
        base = base[: base.index("(")].strip()
    try:
        return _TYPE_ALIASES[base]
    except KeyError:
        raise TypeMismatchError(f"unknown column type {name!r}") from None


def type_name(ctype: ColumnType) -> str:
    """Return the canonical SQL name of *ctype*."""
    return ctype.value


def coerce(value: Any, ctype: ColumnType) -> Any:
    """Coerce *value* into the canonical representation for *ctype*.

    ``None`` (NULL) passes through for every type. Lossless numeric
    widenings are performed (int -> float for REAL); anything else raises
    :class:`TypeMismatchError`. Strings are *not* silently parsed into
    numbers: disguise transformations operate on values the application
    wrote, and silently reinterpreting them would mask spec bugs.
    """
    if value is None:
        return None
    if ctype is ColumnType.INTEGER:
        # bool is a subclass of int; allow it (SQL-style 0/1) explicitly.
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
    elif ctype is ColumnType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
    elif ctype is ColumnType.TEXT:
        if isinstance(value, str):
            return value
    elif ctype is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
    elif ctype is ColumnType.DATETIME:
        if isinstance(value, bool):
            pass  # fall through to error: a bool datetime is a bug
        elif isinstance(value, (int, float)):
            return float(value)
    elif ctype is ColumnType.BLOB:
        if isinstance(value, (bytes, bytearray)):
            return bytes(value)
    raise TypeMismatchError(
        f"cannot store {value!r} ({type(value).__name__}) in a {ctype.value} column"
    )


def is_comparable(a: Any, b: Any) -> bool:
    """Whether two non-NULL canonical values can be ordered against each other."""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return type(a) is type(b)
