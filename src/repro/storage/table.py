"""Row storage for a single table, with automatic index maintenance.

Rows are stored as dicts keyed by an internal row id (rid). The table keeps
a unique index on the primary key, a non-unique index on every foreign-key
column, and any explicitly created secondary indexes. All mutation goes
through :class:`Table` so indexes never go stale.

The table itself knows nothing about foreign-key *enforcement* — that is
the :class:`repro.storage.database.Database`'s job, since it requires
looking at other tables.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import ConstraintError, NoSuchRowError, UnknownColumnError
from repro.storage.index import HashIndex, UniqueIndex
from repro.storage.predicate import Predicate, TrueP
from repro.storage.schema import TableSchema

__all__ = ["Table"]


class Table:
    """In-memory storage of one table's rows."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rid = 1
        self._pk_index = UniqueIndex(schema.primary_key)
        self._secondary: dict[str, HashIndex] = {}
        for fk in schema.foreign_keys:
            self._secondary[fk.column] = HashIndex(fk.column)

    # -- introspection -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of all rows (callers cannot corrupt indexes)."""
        for row in self._rows.values():
            yield dict(row)

    def rids(self) -> list[int]:
        return list(self._rows)

    def row_by_rid(self, rid: int) -> dict[str, Any]:
        try:
            return dict(self._rows[rid])
        except KeyError:
            raise NoSuchRowError(f"{self.name}: no row with rid {rid}") from None

    def has_indexed(self, column: str) -> bool:
        return column == self.schema.primary_key or column in self._secondary

    def create_index(self, column: str) -> None:
        """Create (or no-op if present) a secondary index on *column*."""
        self.schema.column(column)  # raises UnknownColumnError if absent
        if column == self.schema.primary_key or column in self._secondary:
            return
        index = HashIndex(column)
        for rid, row in self._rows.items():
            index.insert(row[column], rid)
        self._secondary[column] = index

    def drop_index(self, column: str) -> None:
        self._secondary.pop(column, None)

    # -- lookups ---------------------------------------------------------------

    def get(self, pk_value: Any) -> dict[str, Any] | None:
        """Fetch the row whose primary key equals *pk_value*, or None."""
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            return None
        return dict(self._rows[rid])

    def rid_of(self, pk_value: Any) -> int | None:
        return self._pk_index.lookup(pk_value)

    def scan(
        self,
        predicate: Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """All rows satisfying *predicate* (all rows if None).

        Uses an index when the predicate is a simple equality on an indexed
        column; otherwise falls back to a full scan. Returns row copies.
        """
        pred = predicate if predicate is not None else TrueP()
        bound = params or {}
        rids = self._candidate_rids(pred, bound)
        out = []
        for rid in rids:
            row = self._rows[rid]
            if pred.test(row, bound):
                out.append(dict(row))
        return out

    def count(self, predicate: Predicate | None = None,
              params: Mapping[str, Any] | None = None) -> int:
        return len(self.scan(predicate, params))

    def _candidate_rids(self, pred: Predicate, params: Mapping[str, Any]) -> list[int]:
        """Row ids to test, narrowed by index when the predicate allows."""
        probe = _index_probe(pred, params)
        if probe is not None:
            column, value = probe
            if column == self.schema.primary_key:
                rid = self._pk_index.lookup(value)
                return [] if rid is None else [rid]
            index = self._secondary.get(column)
            if index is not None:
                return sorted(index.lookup(value))
        return list(self._rows)

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: dict[str, Any]) -> dict[str, Any]:
        """Insert a row (validated against the schema); returns the stored row."""
        row = self.schema.normalize_row(values)
        pk = row[self.schema.primary_key]
        if pk in self._pk_index:
            raise ConstraintError(
                f"{self.name}: duplicate primary key {pk!r}"
            )
        rid = self._next_rid
        self._next_rid += 1
        self._rows[rid] = row
        self._pk_index.insert(pk, rid)
        for column, index in self._secondary.items():
            index.insert(row[column], rid)
        return dict(row)

    def delete_by_pk(self, pk_value: Any) -> dict[str, Any]:
        """Delete the row with primary key *pk_value*; returns the old row."""
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            raise NoSuchRowError(f"{self.name}: no row with {self.schema.primary_key}={pk_value!r}")
        row = self._rows.pop(rid)
        self._pk_index.remove(pk_value, rid)
        for column, index in self._secondary.items():
            index.remove(row[column], rid)
        return row

    def update_by_pk(self, pk_value: Any, changes: Mapping[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
        """Apply *changes* to the row with primary key *pk_value*.

        Returns ``(old_row, new_row)`` copies. Changing the primary key is
        allowed (placeholder renumbering needs it) and keeps indexes
        consistent.
        """
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            raise NoSuchRowError(f"{self.name}: no row with {self.schema.primary_key}={pk_value!r}")
        old = self._rows[rid]
        merged = dict(old)
        for column, value in changes.items():
            if not self.schema.has_column(column):
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
            merged[column] = value
        new = self.schema.normalize_row(merged)
        new_pk = new[self.schema.primary_key]
        if new_pk != pk_value and new_pk in self._pk_index:
            raise ConstraintError(f"{self.name}: duplicate primary key {new_pk!r}")
        # Re-index: remove old entries, store, insert new entries.
        self._pk_index.remove(pk_value, rid)
        for column, index in self._secondary.items():
            index.remove(old[column], rid)
        self._rows[rid] = new
        self._pk_index.insert(new_pk, rid)
        for column, index in self._secondary.items():
            index.insert(new[column], rid)
        return dict(old), dict(new)

    def referencing_rows(self, fk_column: str, value: Any) -> list[dict[str, Any]]:
        """Rows whose *fk_column* equals *value* (index-accelerated)."""
        index = self._secondary.get(fk_column)
        if index is not None:
            return [dict(self._rows[rid]) for rid in sorted(index.lookup(value))]
        return [dict(row) for row in self._rows.values() if row[fk_column] == value]

    def max_pk(self) -> Any:
        """Largest primary-key value, or None if empty (for id allocation)."""
        best = None
        for row in self._rows.values():
            pk = row[self.schema.primary_key]
            if best is None or (pk is not None and pk > best):
                best = pk
        return best


def _index_probe(pred: Predicate, params: Mapping[str, Any]) -> tuple[str, Any] | None:
    """If *pred* is ``column = constant`` (possibly via $param), return the
    (column, value) pair usable for an index probe; else None.

    Conjunctions are probed on their left arm: ``a = 1 AND ...`` can still
    narrow by ``a``. This is a deliberate, simple planner — enough to make
    FK scans O(matches).
    """
    from repro.storage.predicate import And, ColumnRef, Comparison, Literal, Param

    if isinstance(pred, And):
        return _index_probe(pred.left, params) or _index_probe(pred.right, params)
    if isinstance(pred, Comparison) and pred.op == "=":
        column_side = None
        value_side = None
        for a, b in ((pred.left, pred.right), (pred.right, pred.left)):
            if isinstance(a, ColumnRef) and isinstance(b, (Literal, Param)):
                column_side, value_side = a, b
                break
        if column_side is None:
            return None
        if isinstance(value_side, Literal):
            return column_side.name, value_side.value
        if value_side.name in params:
            return column_side.name, params[value_side.name]
    return None
