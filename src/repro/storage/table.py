"""Row storage for a single table, with automatic index maintenance.

Rows are stored as dicts keyed by an internal row id (rid). The table keeps
a unique index on the primary key, a non-unique index on every foreign-key
column, and any explicitly created secondary indexes. All mutation goes
through :class:`Table` so indexes never go stale.

Read paths (:meth:`scan`, :meth:`rows`, :meth:`referencing_rows`) return
:class:`RowView` objects — immutable, copy-on-demand views over the stored
dicts — instead of eagerly copying every row. This is safe because stored
row dicts are never mutated in place: updates swap in a freshly normalized
dict and deletes pop, so a view taken before a mutation keeps observing the
pre-mutation snapshot. Mutation entry points still return plain dict copies
that callers may edit freely.

Row selection is planned: :mod:`repro.storage.planner` extracts an
index-usable access path (equality, IN-list, OR-union, range) from the
predicate, and the table executes it against its hash indexes, falling back
to a full scan only when no path exists.

The table itself knows nothing about foreign-key *enforcement* — that is
the :class:`repro.storage.database.Database`'s job, since it requires
looking at other tables.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping as _MappingABC
from time import perf_counter as _perf_counter
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import (
    ConstraintError,
    NoSuchRowError,
    SchemaError,
    UnknownColumnError,
)
from repro.obs.report import PlanNode, PlanReport
from repro.storage.compile import PlanCache, PlanEntry, compile_predicate
from repro.storage.index import HashIndex, UniqueIndex
from repro.storage.planner import (
    AccessPath,
    EmptyPath,
    EqProbe,
    MultiProbe,
    RangeProbe,
    UnionPath,
    bind_path,
    choose_path,
    extract_template,
)
from repro.storage.predicate import Predicate, TrueP
from repro.storage.schema import TableSchema
from repro.storage.stats import TableStatistics
from repro.storage.types import coerce

__all__ = ["Table", "RowView"]

_UNSET = object()


class RowView(_MappingABC):
    """Read-only, copy-on-demand view of a stored row.

    Behaves like a mapping for reads and compares equal to plain dicts with
    the same items; call ``dict(view)`` (or :meth:`copy`) to materialize a
    mutable copy. Attempting item assignment raises ``TypeError``.
    """

    __slots__ = ("_row",)

    def __init__(self, row: dict[str, Any]) -> None:
        self._row = row

    def __getitem__(self, key: str) -> Any:
        return self._row[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._row)

    def __len__(self) -> int:
        return len(self._row)

    def __contains__(self, key: object) -> bool:
        return key in self._row

    def get(self, key: str, default: Any = None) -> Any:
        return self._row.get(key, default)

    def keys(self):
        return self._row.keys()

    def items(self):
        return self._row.items()

    def values(self):
        return self._row.values()

    def copy(self) -> dict[str, Any]:
        return dict(self._row)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RowView({self._row!r})"


class Table:
    """In-memory storage of one table's rows."""

    def __init__(self, schema: TableSchema, plans: PlanCache | None = None) -> None:
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rid = 1
        self._pk_index = UniqueIndex(schema.primary_key)
        self._secondary: dict[str, HashIndex] = {}
        for fk in schema.foreign_keys:
            self._secondary[fk.column] = HashIndex(fk.column)
        # Plan cache: standalone tables own a private one; tables inside a
        # Database share the database's so DDL anywhere invalidates all.
        self._plans = plans if plans is not None else PlanCache()
        # Incremental statistics feeding the cost-based planner.
        self.statistics = TableStatistics(col.name for col in schema.columns)
        # Cached largest primary key (satellite: O(1) id allocation).
        # _UNSET means "unknown, recompute on demand".
        self._max_pk: Any = None
        # Diagnostics: cumulative candidate rows tested by scan(), the
        # access path of the most recent scan, and its cost estimate
        # (benchmarks and EXPLAIN read these).
        self.rows_examined = 0
        self.last_plan = "none"
        self.last_estimate = 0.0
        # rows_examined is bumped once per statement but read-modify-write
        # is not atomic: concurrent shared-lock readers would lose
        # increments without this mutex. last_plan/last_estimate stay
        # unguarded — "most recent" is inherently racy and they are only
        # read single-threaded by tests and EXPLAIN.
        self._diag_mu = threading.Lock()

    # -- introspection -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[RowView]:
        """Iterate over read-only views of all rows."""
        for row in self._rows.values():
            yield RowView(row)

    def rids(self) -> list[int]:
        return list(self._rows)

    def row_by_rid(self, rid: int) -> dict[str, Any]:
        try:
            return dict(self._rows[rid])
        except KeyError:
            raise NoSuchRowError(f"{self.name}: no row with rid {rid}") from None

    def has_indexed(self, column: str) -> bool:
        return column == self.schema.primary_key or column in self._secondary

    def create_index(self, column: str) -> None:
        """Create (or no-op if present) a secondary index on *column*."""
        self.schema.column(column)  # raises UnknownColumnError if absent
        if column == self.schema.primary_key or column in self._secondary:
            return
        index = HashIndex(column)
        for rid, row in self._rows.items():
            index.insert(row[column], rid)
        self._secondary[column] = index
        # Cached plans were extracted without this index: invalidate so the
        # next scan can plan a probe against it.
        self._plans.bump()

    def drop_index(self, column: str) -> None:
        if self._secondary.pop(column, None) is not None:
            # Cached plans may probe the dropped index: invalidate before
            # any scan can execute a stale access path.
            self._plans.bump()

    # -- lookups ---------------------------------------------------------------

    def get(self, pk_value: Any) -> dict[str, Any] | None:
        """Fetch the row whose primary key equals *pk_value*, or None.

        Returns a mutable copy; use :meth:`view` on hot read paths.
        """
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            return None
        return dict(self._rows[rid])

    def view(self, pk_value: Any) -> RowView | None:
        """Read-only view of the row with primary key *pk_value*, or None."""
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            return None
        return RowView(self._rows[rid])

    def rid_of(self, pk_value: Any) -> int | None:
        return self._pk_index.lookup(pk_value)

    def scan(
        self,
        predicate: Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> list[RowView]:
        """All rows satisfying *predicate* (all rows if None), as views.

        Uses an index-planned access path (equality, IN, OR-union, range)
        chosen by estimated rows examined when the predicate allows;
        otherwise falls back to a full scan. Rows are filtered by the
        predicate's compiled form (see :mod:`repro.storage.compile`); plan
        and compilation are cached per (table, predicate) across calls.
        """
        pred = predicate if predicate is not None else TrueP()
        bound = params or {}
        if isinstance(pred, TrueP):
            self.last_plan = "full"
            self.last_estimate = float(len(self._rows))
            with self._diag_mu:
                self.rows_examined += len(self._rows)
            return [RowView(row) for row in self._rows.values()]
        entry = self._plan_entry(pred)
        rids = self._candidate_rids(entry, bound)
        with self._diag_mu:
            self.rows_examined += len(rids)
        compiled = entry.compiled
        if compiled is None:
            out = []
            for rid in rids:
                row = self._rows[rid]
                if pred.test(row, bound):
                    out.append(RowView(row))
            return out
        match = compiled.bind(bound)
        out = []
        for rid in rids:
            row = self._rows[rid]
            if match(row) is True:
                out.append(RowView(row))
        return out

    def count(self, predicate: Predicate | None = None,
              params: Mapping[str, Any] | None = None) -> int:
        return len(self.scan(predicate, params))

    def match_rows(
        self,
        predicate: Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> list[tuple[int, Mapping[str, Any]]]:
        """Matching ``(rid, stored row)`` pairs for the batched write path.

        Same planning, compiled filtering, and ``rows_examined`` accounting
        as :meth:`scan`, but skips the per-row :class:`RowView` allocation
        and hands back the stored dicts directly. Callers treat the dicts
        as read-only snapshots (they are swapped out, never mutated) and
        key their work by rid, avoiding a pk->rid re-lookup per row.
        """
        pred = predicate if predicate is not None else TrueP()
        bound = params or {}
        rows = self._rows
        if isinstance(pred, TrueP):
            self.last_plan = "full"
            self.last_estimate = float(len(rows))
            with self._diag_mu:
                self.rows_examined += len(rows)
            return list(rows.items())
        entry = self._plan_entry(pred)
        rids = self._candidate_rids(entry, bound)
        with self._diag_mu:
            self.rows_examined += len(rids)
        compiled = entry.compiled
        if compiled is None:
            return [(rid, rows[rid]) for rid in rids if pred.test(rows[rid], bound)]
        match = compiled.bind(bound)
        return [(rid, rows[rid]) for rid in rids if match(rows[rid]) is True]

    def _plan_entry(self, pred: Predicate) -> PlanEntry:
        """The cached (template, compiled predicate) for *pred*.

        Misses extract the access-path template and compile the predicate,
        then store both stamped with the current schema generation.
        """
        entry = self._plans.lookup(self.name, pred)
        if entry is None:
            template = extract_template(pred, self.has_indexed)
            compiled = compile_predicate(pred)
            entry = self._plans.store(self.name, pred, template, compiled)
        return entry

    def _candidate_rids(self, entry: PlanEntry, params: Mapping[str, Any]) -> list[int]:
        """Row ids to test, narrowed by index when the plan allows."""
        if self.statistics.needs_refresh():
            self.statistics.refresh(self._rows.values())
        path = None
        if entry.template is not None:
            path = bind_path(entry.template, params)
        path, estimate = choose_path(path, self)
        self.last_estimate = estimate
        if path is None:
            self.last_plan = "full"
            return list(self._rows)
        rids = self._execute_path(path)
        if rids is None:
            self.last_plan = "full"
            return list(self._rows)
        self.last_plan = path.describe()
        return rids

    def _execute_path(self, path: AccessPath) -> list[int] | None:
        """Candidate rids for *path*, or None to force a full scan."""
        if isinstance(path, EmptyPath):
            return []
        if isinstance(path, EqProbe):
            if path.column == self.schema.primary_key:
                rid = self._pk_index.lookup(path.value)
                return [] if rid is None else [rid]
            index = self._secondary.get(path.column)
            if index is None:
                return None
            return sorted(index.lookup(path.value))
        if isinstance(path, MultiProbe):
            if path.column == self.schema.primary_key:
                rids = {
                    rid
                    for rid in (self._pk_index.lookup(v) for v in path.values)
                    if rid is not None
                }
                return sorted(rids)
            index = self._secondary.get(path.column)
            if index is None:
                return None
            rids = set()
            for value in path.values:
                rids |= index.lookup(value)
            return sorted(rids)
        if isinstance(path, RangeProbe):
            if path.column == self.schema.primary_key:
                index: UniqueIndex | HashIndex = self._pk_index
            else:
                secondary = self._secondary.get(path.column)
                if secondary is None:
                    return None
                index = secondary
            rids = index.range_rids(path.lo, path.hi, path.lo_incl, path.hi_incl)
            return None if rids is None else sorted(rids)
        if isinstance(path, UnionPath):
            out: set[int] = set()
            for arm in path.paths:
                rids = self._execute_path(arm)
                if rids is None:
                    return None
                out.update(rids)
            return sorted(out)
        return None

    # -- statistics & EXPLAIN ----------------------------------------------------

    def stat_row_count(self) -> int:
        return len(self._rows)

    def stat_distinct(self, column: str) -> int | None:
        """Distinct values in *column*: exact from an index, else sketched."""
        if column == self.schema.primary_key:
            return self._pk_index.distinct()
        index = self._secondary.get(column)
        if index is not None:
            return index.distinct()
        return self.statistics.distinct_estimate(column)

    def stat_null_count(self, column: str) -> int:
        nulls = self.statistics.null_count(column)
        return 0 if nulls is None else nulls

    def stat_min_max(self, column: str) -> tuple[Any, Any] | None:
        if column == self.schema.primary_key:
            return self._pk_index.key_bounds()
        index = self._secondary.get(column)
        if index is not None:
            return index.key_bounds()
        return self.statistics.min_max(column)

    def explain(
        self,
        predicate: Predicate | None = None,
        params: Mapping[str, Any] | None = None,
        analyze: bool = False,
    ) -> PlanReport:
        """EXPLAIN for a scan; ``analyze=True`` executes it too.

        Returns a :class:`~repro.obs.report.PlanReport`: ``plan`` (the
        access-path description a scan would record in ``last_plan``),
        ``estimated_rows`` (the cost model's guess at rows examined),
        ``table_rows``, whether the predicate has a ``compiled`` form,
        whether the plan was already ``cached``, and the schema
        ``generation`` the plan is stamped with. ANALYZE runs the same
        access-path + compiled-filter pipeline a :meth:`scan` would,
        filling ``actual_rows`` / ``rows_examined`` / ``cache_hit`` /
        ``wall_time_s`` and a per-node breakdown (probe, then filter) —
        the examined count advances ``rows_examined`` exactly as the
        equivalent scan would, so EXPLAIN ANALYZE actuals and scan stats
        deltas agree by construction.
        """
        pred = predicate if predicate is not None else TrueP()
        bound = params or {}
        rows = len(self._rows)
        if isinstance(pred, TrueP):
            report = PlanReport(
                table=self.name, plan="full", estimated_rows=float(rows),
                table_rows=rows, compiled=False, cached=False,
                generation=self._plans.generation,
            )
            if analyze:
                start = _perf_counter()
                with self._diag_mu:
                    self.rows_examined += rows
                report.analyzed = True
                report.cache_hit = False
                report.rows_examined = rows
                report.actual_rows = rows
                report.wall_time_s = _perf_counter() - start
                report.nodes = [
                    PlanNode("seq scan", rows, report.wall_time_s)
                ]
            return report
        cached = self._plans.lookup(self.name, pred)
        entry = cached if cached is not None else self._plan_entry(pred)
        path = None
        if entry.template is not None:
            path = bind_path(entry.template, bound)
        path, estimate = choose_path(path, self)
        report = PlanReport(
            table=self.name,
            plan="full" if path is None else path.describe(),
            estimated_rows=estimate,
            table_rows=rows,
            compiled=entry.compiled is not None,
            cached=cached is not None,
            generation=self._plans.generation,
        )
        if not analyze:
            return report
        # Execute exactly what scan() executes — same plan-entry lookup
        # (so the cache-hit bit reflects this execution), same candidate
        # resolution, same compiled-vs-interpreted filter — timing the
        # probe and filter stages separately.
        start = _perf_counter()
        rids = self._candidate_rids(entry, bound)
        with self._diag_mu:
            self.rows_examined += len(rids)
        probe_s = _perf_counter() - start
        filter_start = _perf_counter()
        compiled = entry.compiled
        if compiled is None:
            matched = sum(
                1 for rid in rids if pred.test(self._rows[rid], bound)
            )
        else:
            match = compiled.bind(bound)
            matched = sum(1 for rid in rids if match(self._rows[rid]) is True)
        filter_s = _perf_counter() - filter_start
        report.analyzed = True
        report.cache_hit = cached is not None
        report.rows_examined = len(rids)
        report.actual_rows = matched
        report.wall_time_s = probe_s + filter_s
        report.nodes = [
            PlanNode(self.last_plan if self.last_plan != "full" else "seq scan",
                     len(rids), probe_s),
            PlanNode("filter" + (" [compiled]" if compiled is not None else ""),
                     matched, filter_s),
        ]
        return report

    # -- mutation ---------------------------------------------------------------

    def _note_inserted_pk(self, pk: Any) -> None:
        if self._max_pk is _UNSET:
            return
        if self._max_pk is None:
            self._max_pk = pk
            return
        try:
            if pk is not None and pk > self._max_pk:
                self._max_pk = pk
        except TypeError:
            self._max_pk = _UNSET

    def _note_removed_pk(self, pk: Any) -> None:
        if self._max_pk is not _UNSET and pk == self._max_pk:
            self._max_pk = _UNSET

    def insert(self, values: dict[str, Any]) -> dict[str, Any]:
        """Insert a row (validated against the schema); returns the stored row."""
        row = self.schema.normalize_row(values)
        pk = row[self.schema.primary_key]
        if pk in self._pk_index:
            raise ConstraintError(
                f"{self.name}: duplicate primary key {pk!r}"
            )
        rid = self._next_rid
        self._next_rid += 1
        self._rows[rid] = row
        self._pk_index.insert(pk, rid)
        for column, index in self._secondary.items():
            index.insert(row[column], rid)
        self._note_inserted_pk(pk)
        self.statistics.on_insert(row)
        return dict(row)

    def insert_rows(self, values_list: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
        """Insert many rows as one batch; returns stored copies.

        All rows are validated (schema + duplicate primary keys, including
        duplicates within the batch) before any row is stored, so a failure
        leaves the table untouched.
        """
        pk_col = self.schema.primary_key
        normalized: list[dict[str, Any]] = []
        batch_pks: set[Any] = set()
        for values in values_list:
            row = self.schema.normalize_row(values)
            pk = row[pk_col]
            if pk in self._pk_index or pk in batch_pks:
                raise ConstraintError(f"{self.name}: duplicate primary key {pk!r}")
            batch_pks.add(pk)
            normalized.append(row)
        for row in normalized:
            rid = self._next_rid
            self._next_rid += 1
            self._rows[rid] = row
            self._pk_index.insert(row[pk_col], rid)
            for column, index in self._secondary.items():
                index.insert(row[column], rid)
            self._note_inserted_pk(row[pk_col])
            self.statistics.on_insert(row)
        return [dict(row) for row in normalized]

    def delete_by_pk(self, pk_value: Any) -> dict[str, Any]:
        """Delete the row with primary key *pk_value*; returns the old row."""
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            raise NoSuchRowError(f"{self.name}: no row with {self.schema.primary_key}={pk_value!r}")
        row = self._rows.pop(rid)
        self._pk_index.remove(pk_value, rid)
        for column, index in self._secondary.items():
            index.remove(row[column], rid)
        self._note_removed_pk(pk_value)
        self.statistics.on_delete(row)
        return row

    def delete_pks(self, pk_values: Iterable[Any]) -> list[dict[str, Any]]:
        """Delete many rows by primary key as one batch; returns old rows.

        Every key must exist (checked up front, so a failure mutates
        nothing). Routed through :meth:`apply_deletes` for grouped index
        maintenance.
        """
        rids = []
        for pk_value in pk_values:
            rid = self._pk_index.lookup(pk_value)
            if rid is None:
                raise NoSuchRowError(
                    f"{self.name}: no row with {self.schema.primary_key}={pk_value!r}"
                )
            rids.append(rid)
        return self.apply_deletes(rids)

    def apply_deletes(self, rids: Iterable[int]) -> list[dict[str, Any]]:
        """Delete rows by rid as one batch; returns the popped rows.

        Duplicate rids collapse; every rid must exist (checked up front, so
        a failure mutates nothing). Per-index removal pairs are collected
        across the whole batch and patched with one :meth:`HashIndex.apply_batch`
        call per index instead of a remove per row per index.
        """
        rid_list = list(dict.fromkeys(rids))
        rows = self._rows
        for rid in rid_list:
            if rid not in rows:
                raise NoSuchRowError(f"{self.name}: no row with rid {rid}")
        pk_col = self.schema.primary_key
        patches: dict[str, list[tuple[Any, int]]] = {c: [] for c in self._secondary}
        stats = self.statistics
        out = []
        for rid in rid_list:
            row = rows.pop(rid)
            pk = row[pk_col]
            self._pk_index.remove(pk, rid)
            for column, pairs in patches.items():
                pairs.append((row[column], rid))
            self._note_removed_pk(pk)
            stats.on_delete(row)
            out.append(row)
        for column, pairs in patches.items():
            if pairs:
                self._secondary[column].apply_batch(pairs, ())
        return out

    def coerce_changes(self, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and coerce a change mapping once, without a target row.

        Shared by the batched update paths so a constant change set applied
        to N rows is validated once, not N times. Primary-key changes are
        the caller's problem — the batch entry points fall back to the
        per-row path before coming here.
        """
        out: dict[str, Any] = {}
        for column, value in changes.items():
            if not self.schema.has_column(column):
                raise UnknownColumnError(
                    f"table {self.name!r} has no column {column!r}"
                )
            col = self.schema.column(column)
            coerced = coerce(value, col.ctype) if value is not None else None
            if coerced is None and not col.nullable:
                raise SchemaError(
                    f"column {self.name}.{column} is NOT NULL but got NULL"
                )
            out[column] = coerced
        return out

    def apply_updates(
        self, deltas: Iterable[tuple[int, Mapping[str, Any]]]
    ) -> list[tuple[int, dict[str, Any], dict[str, Any]]]:
        """Apply pre-coerced column deltas keyed by rid, as one batch.

        The core of the delta write path. Values must already be validated
        and coerced (see :meth:`coerce_changes`); changing a primary key is
        rejected. Columns whose stored value would not actually change are
        dropped from the delta, so the returned
        ``(rid, old_delta, new_delta)`` triples carry exactly the changed
        columns — ``old_delta`` is the inverse record (re-applying the
        triples in reverse order restores the pre-batch rows). Per-index
        add/remove pairs are collected across the whole batch and patched
        with one call per index, and statistics consume the same deltas.

        Deltas are applied in order: a later delta for the same rid
        observes the earlier one. The whole batch is staged before any
        stored state changes, so a failure partway through (missing rid,
        unknown column, pk change) mutates nothing — statement atomicity
        without a transaction. Stored dicts are swapped, never mutated,
        preserving the :class:`RowView` snapshot contract.
        """
        rows = self._rows
        pk_col = self.schema.primary_key
        secondary = self._secondary
        # (column, rid) -> [value to un-index, value to index]; coalesced so
        # two deltas touching the same row's column net out to one patch.
        patch_map: dict[tuple[str, int], list[Any]] = {}
        stat_changes: list[tuple[str, Any, Any]] = []
        staged: dict[int, dict[str, Any]] = {}  # rid -> replacement row
        out: list[tuple[int, dict[str, Any], dict[str, Any]]] = []
        for rid, delta in deltas:
            old = staged.get(rid)
            if old is None:
                old = rows.get(rid)
                if old is None:
                    raise NoSuchRowError(f"{self.name}: no row with rid {rid}")
            inverse: dict[str, Any] = {}
            effective: dict[str, Any] = {}
            for column, value in delta.items():
                try:
                    before = old[column]
                except KeyError:
                    raise UnknownColumnError(
                        f"table {self.name!r} has no column {column!r}"
                    ) from None
                if before is value or (before == value and type(before) is type(value)):
                    continue
                if column == pk_col:
                    raise ConstraintError(
                        f"{self.name}: apply_updates cannot change primary keys"
                    )
                inverse[column] = before
                effective[column] = value
            if effective:
                new = dict(old)
                new.update(effective)
                staged[rid] = new
                for column, value in effective.items():
                    if column in secondary:
                        patch = patch_map.setdefault((column, rid), [old[column], None])
                        patch[1] = value
                    stat_changes.append((column, old[column], value))
            out.append((rid, inverse, effective))
        rows.update(staged)
        index_patches: dict[str, tuple[list, list]] = {}
        for (column, rid), (first, last) in patch_map.items():
            removes, inserts = index_patches.setdefault(column, ([], []))
            removes.append((first, rid))
            inserts.append((last, rid))
        for column, (removes, inserts) in index_patches.items():
            secondary[column].apply_batch(removes, inserts)
        if stat_changes:
            self.statistics.on_update_deltas(stat_changes)
        return out

    def update_by_pk(self, pk_value: Any, changes: Mapping[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
        """Apply *changes* to the row with primary key *pk_value*.

        Returns ``(old_row, new_row)`` copies. Changing the primary key is
        allowed (placeholder renumbering needs it) and keeps indexes
        consistent.
        """
        rid = self._pk_index.lookup(pk_value)
        if rid is None:
            raise NoSuchRowError(f"{self.name}: no row with {self.schema.primary_key}={pk_value!r}")
        old = self._rows[rid]
        merged = dict(old)
        for column, value in changes.items():
            if not self.schema.has_column(column):
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
            merged[column] = value
        new = self.schema.normalize_row(merged)
        new_pk = new[self.schema.primary_key]
        if new_pk != pk_value and new_pk in self._pk_index:
            raise ConstraintError(f"{self.name}: duplicate primary key {new_pk!r}")
        # Re-index: remove old entries, store, insert new entries.
        self._pk_index.remove(pk_value, rid)
        for column, index in self._secondary.items():
            index.remove(old[column], rid)
        self._rows[rid] = new
        self._pk_index.insert(new_pk, rid)
        for column, index in self._secondary.items():
            index.insert(new[column], rid)
        if new_pk != pk_value:
            self._note_removed_pk(pk_value)
        self._note_inserted_pk(new_pk)
        self.statistics.on_update(old, new)
        return dict(old), dict(new)

    def update_pks(
        self, updates: Iterable[tuple[Any, Mapping[str, Any]]]
    ) -> list[tuple[dict[str, Any], dict[str, Any]]]:
        """Apply many ``(pk, changes)`` updates as one batch.

        Index maintenance is grouped: only the indexes of columns actually
        named in each change set are touched, instead of re-indexing every
        secondary index per row (what :meth:`update_by_pk` must do).
        Primary-key changes are not supported here — callers fall back to
        the per-row path for those. Updates are applied in order, so a later
        update of the same row observes the earlier one. The batch is
        validated and staged before any stored state changes, so a failure
        partway through mutates nothing. Returns ``(old_row, new_row)``
        pairs.
        """
        pk_col = self.schema.primary_key
        staged: dict[int, dict[str, Any]] = {}  # rid -> replacement row
        plan: list[tuple[int, dict[str, Any], dict[str, Any], list[str]]] = []
        for pk_value, changes in updates:
            rid = self._pk_index.lookup(pk_value)
            if rid is None:
                raise NoSuchRowError(
                    f"{self.name}: no row with {pk_col}={pk_value!r}"
                )
            old = staged.get(rid, self._rows[rid])
            new = dict(old)
            touched: list[str] = []
            for column, value in changes.items():
                if not self.schema.has_column(column):
                    raise UnknownColumnError(
                        f"table {self.name!r} has no column {column!r}"
                    )
                if column == pk_col and value != pk_value:
                    raise ConstraintError(
                        f"{self.name}: update_pks cannot change primary keys"
                    )
                col = self.schema.column(column)
                coerced = coerce(value, col.ctype) if value is not None else None
                if coerced is None and not col.nullable:
                    raise SchemaError(
                        f"column {self.name}.{column} is NOT NULL but got NULL"
                    )
                new[column] = coerced
                touched.append(column)
            staged[rid] = new
            plan.append((rid, old, new, touched))
        out: list[tuple[dict[str, Any], dict[str, Any]]] = []
        for rid, old, new, touched in plan:
            for column in touched:
                index = self._secondary.get(column)
                if index is not None:
                    index.remove(old[column], rid)
                    index.insert(new[column], rid)
            self._rows[rid] = new
            self.statistics.on_update(old, new, touched)
            out.append((dict(old), new))
        return out

    def referencing_rows(
        self, fk_column: str, value: Any, sort: bool = True
    ) -> list[RowView]:
        """Rows whose *fk_column* equals *value* (index-accelerated).

        ``sort=False`` skips the deterministic rid ordering — internal
        callers that only need membership or iterate order-insensitively
        use it to avoid the per-call sort.
        """
        index = self._secondary.get(fk_column)
        if index is not None:
            rids = index.lookup(value)
            ordered = sorted(rids) if sort else rids
            return [RowView(self._rows[rid]) for rid in ordered]
        return [
            RowView(row) for row in self._rows.values() if row[fk_column] == value
        ]

    def max_pk(self) -> Any:
        """Largest primary-key value, or None if empty (for id allocation).

        O(1) in the common case: a cached high-water mark is maintained on
        insert/update and only invalidated when the current maximum is
        deleted, forcing one recompute over the pk index keys.
        """
        if self._max_pk is _UNSET:
            best = None
            for pk in self._pk_index._slots:
                if best is None or (pk is not None and pk > best):
                    best = pk
            self._max_pk = best
        return self._max_pk
