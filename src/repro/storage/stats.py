"""Incremental per-table / per-column statistics for cost-based planning.

The structural planner (PR 1) ranks access paths by *shape* — an equality
probe always beats a range probe — which misorders plans as soon as data
skews: an equality probe on a two-valued column examines half the table,
while a range probe on a near-unique column examines a handful of rows.
This module gives the planner numbers instead of shapes:

* **row count** — exact, maintained on insert/delete;
* **NULL count** per column — exact, maintained incrementally;
* **distinct count** per column — a KMV (k-minimum-values) sketch:
  remember the *k* smallest 64-bit hashes seen; if fewer than *k* values
  have been seen the count is exact, otherwise the k-th smallest hash
  estimates density (``(k-1) * 2^64 / kth_min``). O(k) memory per column,
  O(log k) per insert, no dependence on value sizes;
* **min / max** per column — exact under inserts; deleting an extremum
  marks the pair dirty and the next reader rescans lazily (deletes of
  extrema are rare; scanning on every delete would be quadratic).

Everything here is *advisory*: a wrong estimate can only produce a slower
plan, never a wrong result, because every access path yields a superset of
matching rows that the predicate then filters. That tolerance is what
makes the thread-safety story cheap (see PR 4's multi-worker executor):
mutators hold the table's write path exclusively already, and concurrent
readers of the counters see torn-but-plausible values at worst — every
read here is a single GIL-atomic dict/int/attribute access, so no lock is
taken on the read path.

Sketches never shrink on delete (KMV is insert-only); :meth:`refresh`
rebuilds statistics from live rows, and tables call it automatically when
enough deletes have accumulated to skew estimates.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Mapping

__all__ = ["ColumnStats", "TableStatistics", "KMV_K"]

KMV_K = 64

# 64-bit Fibonacci-style multiplicative mixer: Python's hash() of small
# ints is the int itself, which would make the "k minimum hashes" of a
# dense id column simply 0..k-1 and wildly bias the estimate upward.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1

# Deletes tolerated before a table rebuilds its sketches from live rows.
_REFRESH_DELETES = 4096


class _KMV:
    """k-minimum-values distinct-count sketch."""

    __slots__ = ("_members", "_heap", "_k")

    def __init__(self, k: int = KMV_K) -> None:
        self._k = k
        self._members: set[int] = set()   # hashes currently kept
        self._heap: list[int] = []        # negated hashes: max-heap of kept set

    def add(self, value: Any) -> None:
        try:
            h = (hash(value) * _MIX) & _MASK
        except TypeError:
            return  # unhashable values are invisible to the sketch
        if h in self._members:
            return
        if len(self._members) < self._k:
            self._members.add(h)
            heapq.heappush(self._heap, -h)
        elif h < -self._heap[0]:
            self._members.discard(-heapq.heapreplace(self._heap, -h))
            self._members.add(h)

    def estimate(self) -> int:
        n = len(self._members)
        if n < self._k:
            return n  # exact: we have seen every distinct hash
        kth_min = -self._heap[0]
        if kth_min == 0:
            return n
        return max(n, int((self._k - 1) * (1 << 64) / kth_min))


class ColumnStats:
    """Incremental statistics for one column."""

    __slots__ = ("nulls", "_sketch", "_min", "_max", "_dirty", "_orderable")

    def __init__(self) -> None:
        self.nulls = 0
        self._sketch = _KMV()
        self._min: Any = None
        self._max: Any = None
        self._dirty = False      # an extremum was deleted; min/max stale
        self._orderable = True   # set False once a value defeats < / >

    def on_insert(self, value: Any) -> None:
        if value is None:
            self.nulls += 1
            return
        self._sketch.add(value)
        if not self._orderable:
            return
        try:
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
        except TypeError:
            # Mixed/unorderable values (e.g. bytes vs str after evolve):
            # stop tracking bounds for this column.
            self._orderable = False
            self._min = self._max = None

    def on_delete(self, value: Any) -> None:
        if value is None:
            self.nulls -= 1
            return
        # The sketch cannot forget; bounds go lazy if an extremum leaves.
        if self._orderable and (value == self._min or value == self._max):
            self._dirty = True

    def distinct(self) -> int:
        return self._sketch.estimate()

    def bounds(self) -> tuple[Any, Any] | None:
        """(min, max) over non-NULL values, or None when unknown/stale."""
        if self._dirty or not self._orderable or self._min is None:
            return None
        return self._min, self._max


class TableStatistics:
    """Statistics for one table, updated by every mutation.

    The owning :class:`~repro.storage.table.Table` calls the ``on_*``
    hooks from its insert/delete/update paths; the planner reads through
    :meth:`distinct_estimate` / :meth:`null_count` / :meth:`min_max`.
    """

    __slots__ = ("row_count", "_columns", "_deletes_since_refresh")

    def __init__(self, columns: Iterable[str]) -> None:
        self.row_count = 0
        self._columns: dict[str, ColumnStats] = {c: ColumnStats() for c in columns}
        self._deletes_since_refresh = 0

    # -- mutation hooks -----------------------------------------------------

    def on_insert(self, row: Mapping[str, Any]) -> None:
        self.row_count += 1
        for name, stats in self._columns.items():
            stats.on_insert(row.get(name))

    def on_delete(self, row: Mapping[str, Any]) -> None:
        self.row_count -= 1
        self._deletes_since_refresh += 1
        for name, stats in self._columns.items():
            stats.on_delete(row.get(name))

    def on_update(
        self,
        old: Mapping[str, Any],
        new: Mapping[str, Any],
        touched: Iterable[str] | None = None,
    ) -> None:
        names = self._columns.keys() if touched is None else touched
        for name in names:
            stats = self._columns.get(name)
            if stats is None:
                continue
            before, after = old.get(name), new.get(name)
            if before == after and type(before) is type(after):
                continue
            stats.on_delete(before)
            stats.on_insert(after)

    def on_update_deltas(self, changes: Iterable[tuple[str, Any, Any]]) -> None:
        """Batched delta form of :meth:`on_update`.

        Takes ``(column, before, after)`` triples for values that actually
        changed — the same deltas the batched write path already computed
        for undo and index maintenance — so a whole statement updates the
        sketches without re-diffing old/new row pairs. Duplicate triples
        (a constant UPDATE over N rows produces N identical ones) are
        collapsed first: the sketch and min/max hooks are value-idempotent,
        so only the NULL counters need the multiplicity.
        """
        columns = self._columns
        if not isinstance(changes, list):
            changes = list(changes)
        counts: dict[tuple[str, Any, Any], int] = {}
        try:
            for triple in changes:
                counts[triple] = counts.get(triple, 0) + 1
        except TypeError:  # an unhashable value: take the per-triple path
            for name, before, after in changes:
                stats = columns.get(name)
                if stats is not None:
                    stats.on_delete(before)
                    stats.on_insert(after)
            return
        for (name, before, after), count in counts.items():
            stats = columns.get(name)
            if stats is None:
                continue
            stats.on_delete(before)
            stats.on_insert(after)
            if count > 1:
                if before is None:
                    stats.nulls -= count - 1
                if after is None:
                    stats.nulls += count - 1

    def needs_refresh(self) -> bool:
        return self._deletes_since_refresh >= _REFRESH_DELETES

    def refresh(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Rebuild all statistics from live rows (ANALYZE)."""
        fresh = TableStatistics(self._columns.keys())
        for row in rows:
            fresh.on_insert(row)
        # Swap wholesale so concurrent readers see either old or new stats.
        self.row_count = fresh.row_count
        self._columns = fresh._columns
        self._deletes_since_refresh = 0

    # -- planner reads ------------------------------------------------------

    def distinct_estimate(self, column: str) -> int | None:
        stats = self._columns.get(column)
        if stats is None:
            return None
        return max(1, stats.distinct())

    def null_count(self, column: str) -> int | None:
        stats = self._columns.get(column)
        return None if stats is None else max(0, stats.nulls)

    def min_max(self, column: str) -> tuple[Any, Any] | None:
        stats = self._columns.get(column)
        return None if stats is None else stats.bounds()
