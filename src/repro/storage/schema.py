"""Schema definitions: columns, foreign keys, tables, and whole databases.

A :class:`Schema` is the static description of an application database that
both the storage engine and the disguise analyzer consume. Disguise
application needs to know, for every table, which columns are foreign keys
and where they point, so that decorrelation can rewrite them without
breaking referential integrity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.storage.types import ColumnType, coerce

__all__ = [
    "Column",
    "ForeignKey",
    "FKAction",
    "TableSchema",
    "Schema",
]


class FKAction(enum.Enum):
    """What happens to referencing rows when the referenced row disappears."""

    RESTRICT = "RESTRICT"
    CASCADE = "CASCADE"
    SET_NULL = "SET NULL"


@dataclass(frozen=True)
class Column:
    """One column of a table.

    ``pii`` marks columns holding personally identifiable information. The
    storage engine ignores it; the disguise analyzer uses it to warn about
    specs that leave PII columns untouched.
    """

    name: str
    ctype: ColumnType
    nullable: bool = True
    default: Any = None
    pii: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.default is not None:
            coerce(self.default, self.ctype)


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key ``column -> parent_table(parent_column)``."""

    column: str
    parent_table: str
    parent_column: str
    on_delete: FKAction = FKAction.RESTRICT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.column} -> {self.parent_table}({self.parent_column})"


class TableSchema:
    """Schema of a single table: ordered columns, primary key, foreign keys.

    The primary key is always a single column (matching both case-study
    apps, which use synthetic integer ids).
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: str,
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self.primary_key = primary_key
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        self._by_name: dict[str, Column] = {}
        for col in self.columns:
            if col.name in self._by_name:
                raise SchemaError(f"duplicate column {col.name!r} in table {name!r}")
            self._by_name[col.name] = col
        if primary_key not in self._by_name:
            raise SchemaError(f"primary key {primary_key!r} is not a column of {name!r}")
        pk_col = self._by_name[primary_key]
        if pk_col.nullable:
            raise SchemaError(f"primary key column {primary_key!r} must be NOT NULL")
        fk_cols = set()
        for fk in self.foreign_keys:
            if fk.column not in self._by_name:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {name!r}"
                )
            if fk.column in fk_cols:
                raise SchemaError(
                    f"column {fk.column!r} appears in two foreign keys of {name!r}"
                )
            fk_cols.add(fk.column)
        self._fk_by_column: dict[str, ForeignKey] = {
            fk.column: fk for fk in self.foreign_keys
        }

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name, raising UnknownColumnError if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """The foreign key declared on *column*, or None."""
        return self._fk_by_column.get(column)

    def pii_columns(self) -> tuple[Column, ...]:
        return tuple(col for col in self.columns if col.pii)

    def normalize_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Validate and coerce a row dict against this schema.

        Missing columns receive their declared default (or NULL). Unknown
        keys and NOT NULL violations raise.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise UnknownColumnError(
                f"table {self.name!r} has no column(s) {sorted(unknown)!r}"
            )
        row: dict[str, Any] = {}
        for col in self.columns:
            if col.name in values:
                row[col.name] = coerce(values[col.name], col.ctype)
            else:
                row[col.name] = col.default
            if row[col.name] is None and not col.nullable:
                raise SchemaError(
                    f"column {self.name}.{col.name} is NOT NULL but got NULL"
                )
        return row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"


class Schema:
    """An ordered collection of table schemas forming a database schema."""

    def __init__(self, tables: Iterable[TableSchema] = ()) -> None:
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            self.add(table)

    def add(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def validate(self) -> None:
        """Check cross-table consistency: every FK targets an existing
        table/column, and the target column is that table's primary key
        (the engine only indexes PK lookups for FK enforcement)."""
        for table in self:
            for fk in table.foreign_keys:
                if not self.has_table(fk.parent_table):
                    raise SchemaError(
                        f"{table.name}.{fk.column} references missing table "
                        f"{fk.parent_table!r}"
                    )
                parent = self.table(fk.parent_table)
                if not parent.has_column(fk.parent_column):
                    raise SchemaError(
                        f"{table.name}.{fk.column} references missing column "
                        f"{fk.parent_table}.{fk.parent_column}"
                    )
                if fk.parent_column != parent.primary_key:
                    raise SchemaError(
                        f"{table.name}.{fk.column} must reference the primary key "
                        f"of {fk.parent_table!r} ({parent.primary_key!r}), "
                        f"not {fk.parent_column!r}"
                    )

    def referencing(self, parent_table: str) -> list[tuple[TableSchema, ForeignKey]]:
        """All (table, fk) pairs whose foreign key points at *parent_table*."""
        refs = []
        for table in self:
            for fk in table.foreign_keys:
                if fk.parent_table == parent_table:
                    refs.append((table, fk))
        return refs

    def fk_graph(self):
        """The foreign-key graph as a ``networkx.DiGraph``.

        Nodes are table names; an edge child -> parent exists for each
        foreign key. Used by the disguise analyzer to find all tables
        transitively reachable from a user table.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for table in self:
            graph.add_node(table.name)
        for table in self:
            for fk in table.foreign_keys:
                graph.add_edge(table.name, fk.parent_table, column=fk.column)
        return graph

    def object_type_count(self) -> int:
        """Number of object types (tables) — the Figure 4 '#Object Types' column."""
        return len(self)
