"""SQL fragment parsing: WHERE clauses and CREATE TABLE statements.

The paper's prototype accepts disguise predicates as "arbitrary SQL WHERE
clauses" (§5). This module implements a hand-written tokenizer and
recursive-descent parser producing :mod:`repro.storage.predicate` ASTs, plus
a small DDL parser so case-study schemas can be written as familiar
``CREATE TABLE`` text.

Grammar (WHERE clauses)::

    predicate   := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | primary
    primary     := '(' predicate ')' | TRUE | FALSE | condition
    condition   := sum (comparison | is_null | in_list | like | between)
    comparison  := ('=' | '!=' | '<>' | '<' | '<=' | '>' | '>=') sum
    is_null     := IS [NOT] NULL
    in_list     := [NOT] IN '(' sum (',' sum)* ')'
    like        := [NOT] LIKE string
    between     := [NOT] BETWEEN sum AND sum
    sum         := term (('+'|'-') term)*
    term        := atom (('*'|'/'|'%') atom)*
    atom        := number | string | NULL | param | identifier | '(' sum ')'
                 | '-' atom
    param       := '$' identifier | '?' identifier
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from repro.errors import ParseError
from repro.storage.predicate import (
    And,
    Assignment,
    Between,
    BinOp,
    ColumnRef,
    Comparison,
    Expr,
    FalseP,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    SetClause,
    TrueP,
)
from repro.storage.schema import Column, FKAction, ForeignKey, TableSchema
from repro.storage.types import parse_type

__all__ = [
    "parse_where",
    "parse_set",
    "parse_create_table",
    "parse_schema",
    "parse_cache_info",
    "clear_parse_cache",
]


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\*|/|%|\+|-)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "TRUE", "FALSE",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | string | param | ident | keyword | op | eof
    text: str
    pos: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            continue
        if kind == "ident" and text.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", text.upper(), match.start()))
        else:
            tokens.append(_Token(kind or "op", text, match.start()))
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list.

    ``keep_qualifiers=True`` preserves ``table.column`` references as-is
    (the query layer evaluates them against joined-row namespaces); the
    default strips the qualifier, since disguise predicates are per-table.
    """

    def __init__(self, source: str, keep_qualifiers: bool = False) -> None:
        self.source = source
        self.keep_qualifiers = keep_qualifiers
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(
                f"expected {want!r} but found {self.current.text or 'end of input'!r} "
                f"at offset {self.current.pos} in {self.source!r}"
            )
        return token

    # -- predicate grammar --------------------------------------------------

    def parse_predicate(self) -> Predicate:
        pred = self._or_expr()
        if self.current.kind != "eof":
            raise ParseError(
                f"trailing input {self.current.text!r} at offset {self.current.pos}"
            )
        return pred

    def _or_expr(self) -> Predicate:
        left = self._and_expr()
        while self.accept("keyword", "OR"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Predicate:
        left = self._not_expr()
        while self.accept("keyword", "AND"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Predicate:
        if self.accept("keyword", "NOT"):
            return Not(self._not_expr())
        return self._primary()

    def _primary(self) -> Predicate:
        # A parenthesis is ambiguous: it may open a nested predicate or a
        # parenthesized scalar expression. Try the predicate reading first
        # and fall back on failure.
        if self.current.kind == "op" and self.current.text == "(":
            saved = self.index
            try:
                self.advance()
                pred = self._or_expr()
                self.expect("op", ")")
                return pred
            except ParseError:
                self.index = saved
        # TRUE/FALSE are boolean predicates only when they stand alone;
        # followed by an operator they are literals in a condition
        # ("FALSE = NULL" compares, "FALSE AND x" conjoins).
        if self.current.kind == "keyword" and self.current.text in ("TRUE", "FALSE"):
            following = self.tokens[self.index + 1]
            standalone = (
                following.kind == "eof"
                or (following.kind == "keyword" and following.text in ("AND", "OR"))
                or (following.kind == "op" and following.text == ")")
            )
            if standalone:
                token = self.advance()
                return TrueP() if token.text == "TRUE" else FalseP()
        return self._condition()

    def _condition(self) -> Predicate:
        left = self._sum()
        token = self.current
        if token.kind == "op" and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            op = "!=" if token.text == "<>" else token.text
            return Comparison(op, left, self._sum())
        negated = bool(self.accept("keyword", "NOT"))
        if self.accept("keyword", "IS"):
            if negated:
                raise ParseError("NOT IS is not valid SQL; use IS NOT NULL")
            is_negated = bool(self.accept("keyword", "NOT"))
            self.expect("keyword", "NULL")
            return IsNull(left, negated=is_negated)
        if self.accept("keyword", "IN"):
            self.expect("op", "(")
            items = [self._sum()]
            while self.accept("op", ","):
                items.append(self._sum())
            self.expect("op", ")")
            return InList(left, tuple(items), negated=negated)
        if self.accept("keyword", "LIKE"):
            pattern = self.expect("string")
            return Like(left, _unquote(pattern.text), negated=negated)
        if self.accept("keyword", "BETWEEN"):
            lo = self._sum()
            self.expect("keyword", "AND")
            hi = self._sum()
            return Between(left, lo, hi, negated=negated)
        if negated:
            raise ParseError(
                f"expected IN/LIKE/BETWEEN after NOT at offset {self.current.pos}"
            )
        raise ParseError(
            f"expected a comparison after expression at offset {token.pos} "
            f"in {self.source!r}"
        )

    # -- scalar expression grammar -------------------------------------------

    def _sum(self) -> Expr:
        left = self._term()
        while self.current.kind == "op" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinOp(op, left, self._term())
        return left

    def _term(self) -> Expr:
        left = self._atom()
        while self.current.kind == "op" and self.current.text in ("*", "/", "%"):
            op = self.advance().text
            left = BinOp(op, left, self._atom())
        return left

    def _atom(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind == "string":
            self.advance()
            return Literal(_unquote(token.text))
        if token.kind == "param":
            self.advance()
            return Param(token.text[1:])
        if token.kind == "keyword" and token.text == "NULL":
            self.advance()
            return Literal(None)
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.text == "TRUE")
        if token.kind == "ident":
            self.advance()
            if self.keep_qualifiers:
                return ColumnRef(token.text)
            # Strip a table qualifier ("Review.contactId" -> "contactId");
            # disguise predicates are per-table so the qualifier is noise.
            name = token.text.rsplit(".", 1)[-1]
            return ColumnRef(name)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self._sum()
            self.expect("op", ")")
            return inner
        if token.kind == "op" and token.text == "-":
            self.advance()
            return BinOp("-", Literal(0), self._atom())
        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r} at offset {token.pos} "
            f"in {self.source!r}"
        )


def _unquote(text: str) -> str:
    """Strip single quotes and collapse doubled quotes."""
    if len(text) < 2 or text[0] != "'" or text[-1] != "'":
        raise ParseError(f"malformed string literal {text!r}")
    return text[1:-1].replace("''", "'")


def parse_where(source: str | Predicate, keep_qualifiers: bool = False) -> Predicate:
    """Parse a SQL WHERE clause into a :class:`Predicate`.

    Accepts an already-built Predicate unchanged so APIs can take either.

    Parses of WHERE text are LRU-cached: predicate trees are immutable
    (frozen dataclasses), so repeated statements — the common case for
    disguise specs and application queries — share one parse.

    >>> parse_where("contactId = $UID AND disabled = FALSE")  # doctest: +ELLIPSIS
    And(...)
    """
    if isinstance(source, Predicate):
        return source
    return _parse_where_cached(source, keep_qualifiers)


@lru_cache(maxsize=512)
def _parse_where_cached(source: str, keep_qualifiers: bool) -> Predicate:
    return _Parser(source, keep_qualifiers=keep_qualifiers).parse_predicate()


def parse_set(source: str | SetClause) -> SetClause:
    """Parse an UPDATE SET list (``col = expr, col = expr ...``).

    Accepts an already-built :class:`SetClause` unchanged. Expressions use
    the same scalar grammar as WHERE clauses (arithmetic, ``$param``
    placeholders, column references), so ``"score = score + 1, bio = NULL"``
    parses with one shared tokenizer. Parses are LRU-cached like WHERE text.
    """
    if isinstance(source, SetClause):
        return source
    return _parse_set_cached(source)


@lru_cache(maxsize=512)
def _parse_set_cached(source: str) -> SetClause:
    parser = _Parser(source)
    items: list[Assignment] = []
    while True:
        name_token = parser.expect("ident")
        # SET targets are per-table; strip qualifiers like WHERE references.
        column = name_token.text.rsplit(".", 1)[-1]
        parser.expect("op", "=")
        items.append(Assignment(column, parser._sum()))
        if not parser.accept("op", ","):
            break
    if parser.current.kind != "eof":
        raise ParseError(
            f"trailing input {parser.current.text!r} at offset {parser.current.pos} "
            f"in {source!r}"
        )
    if len({item.column for item in items}) != len(items):
        raise ParseError(f"duplicate column in SET clause: {source!r}")
    return SetClause(tuple(items))


def parse_cache_info():
    """``functools.lru_cache`` statistics for the WHERE-parse cache."""
    return _parse_where_cached.cache_info()


def clear_parse_cache() -> None:
    """Drop all cached WHERE parses (benchmarks measure cold paths)."""
    _parse_where_cached.cache_clear()


# --------------------------------------------------------------------------
# DDL: CREATE TABLE
# --------------------------------------------------------------------------

_CREATE_RE = re.compile(
    r"CREATE\s+TABLE\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<body>.*)\)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_FK_RE = re.compile(
    r"FOREIGN\s+KEY\s*\(\s*(?P<col>\w+)\s*\)\s*REFERENCES\s+(?P<ptable>\w+)\s*"
    r"\(\s*(?P<pcol>\w+)\s*\)(?:\s+ON\s+DELETE\s+(?P<action>CASCADE|RESTRICT|SET\s+NULL))?",
    re.IGNORECASE,
)

_PK_RE = re.compile(r"PRIMARY\s+KEY\s*\(\s*(?P<col>\w+)\s*\)", re.IGNORECASE)


def _split_top_level(body: str) -> list[str]:
    """Split a CREATE TABLE body on commas not nested inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_create_table(sql: str) -> TableSchema:
    """Parse one ``CREATE TABLE`` statement into a :class:`TableSchema`.

    Supported column options: ``NOT NULL``, ``PRIMARY KEY``, ``DEFAULT v``,
    ``PII`` (an extension marking personally identifiable columns),
    ``REFERENCES t(c) [ON DELETE ...]``. Table-level ``PRIMARY KEY (c)`` and
    ``FOREIGN KEY (c) REFERENCES t(c)`` clauses are also supported.
    """
    match = _CREATE_RE.match(sql.strip())
    if match is None:
        raise ParseError(f"not a CREATE TABLE statement: {sql[:80]!r}")
    name = match.group("name")
    columns: list[Column] = []
    foreign_keys: list[ForeignKey] = []
    primary_key: str | None = None
    for item in _split_top_level(match.group("body")):
        upper = item.upper()
        if upper.startswith("PRIMARY KEY"):
            pk_match = _PK_RE.match(item)
            if pk_match is None:
                raise ParseError(f"malformed PRIMARY KEY clause: {item!r}")
            primary_key = pk_match.group("col")
            continue
        if upper.startswith("FOREIGN KEY"):
            fk_match = _FK_RE.match(item)
            if fk_match is None:
                raise ParseError(f"malformed FOREIGN KEY clause: {item!r}")
            foreign_keys.append(
                ForeignKey(
                    column=fk_match.group("col"),
                    parent_table=fk_match.group("ptable"),
                    parent_column=fk_match.group("pcol"),
                    on_delete=_fk_action(fk_match.group("action")),
                )
            )
            continue
        column, inline_fk, is_pk = _parse_column(item)
        columns.append(column)
        if inline_fk is not None:
            foreign_keys.append(inline_fk)
        if is_pk:
            if primary_key is not None:
                raise ParseError(f"two primary keys declared in table {name!r}")
            primary_key = column.name
    if primary_key is None:
        raise ParseError(f"table {name!r} declares no primary key")
    # PRIMARY KEY implies NOT NULL even when declared as a table-level clause.
    columns = [
        Column(col.name, col.ctype, nullable=False, default=col.default, pii=col.pii)
        if col.name == primary_key and col.nullable
        else col
        for col in columns
    ]
    return TableSchema(name, columns, primary_key, foreign_keys)


def _fk_action(text: str | None) -> FKAction:
    if text is None:
        return FKAction.RESTRICT
    normalized = " ".join(text.upper().split())
    return FKAction(normalized)


_COL_RE = re.compile(r"^(?P<name>\w+)\s+(?P<type>\w+(?:\s*\(\s*\d+\s*\))?)(?P<rest>.*)$", re.DOTALL)
_REFS_RE = re.compile(
    r"REFERENCES\s+(?P<ptable>\w+)\s*\(\s*(?P<pcol>\w+)\s*\)"
    r"(?:\s+ON\s+DELETE\s+(?P<action>CASCADE|RESTRICT|SET\s+NULL))?",
    re.IGNORECASE,
)
_DEFAULT_RE = re.compile(
    r"DEFAULT\s+(?P<value>'(?:[^']|'')*'|[-\w.]+)", re.IGNORECASE
)


def _parse_column(item: str) -> tuple[Column, ForeignKey | None, bool]:
    match = _COL_RE.match(item.strip())
    if match is None:
        raise ParseError(f"malformed column definition: {item!r}")
    name = match.group("name")
    ctype = parse_type(match.group("type"))
    rest = match.group("rest")
    upper = rest.upper()
    nullable = "NOT NULL" not in upper
    is_pk = "PRIMARY KEY" in upper
    if is_pk:
        nullable = False
    pii = bool(re.search(r"\bPII\b", upper))
    default: Any = None
    default_match = _DEFAULT_RE.search(rest)
    if default_match is not None:
        default = _parse_default(default_match.group("value"))
    fk: ForeignKey | None = None
    refs_match = _REFS_RE.search(rest)
    if refs_match is not None:
        fk = ForeignKey(
            column=name,
            parent_table=refs_match.group("ptable"),
            parent_column=refs_match.group("pcol"),
            on_delete=_fk_action(refs_match.group("action")),
        )
    column = Column(name=name, ctype=ctype, nullable=nullable, default=default, pii=pii)
    return column, fk, is_pk


def _parse_default(text: str) -> Any:
    if text.startswith("'"):
        return _unquote(text)
    upper = text.upper()
    if upper == "NULL":
        return None
    if upper == "TRUE":
        return True
    if upper == "FALSE":
        return False
    try:
        if "." in text:
            return float(text)
        return int(text)
    except ValueError:
        raise ParseError(f"unsupported DEFAULT value {text!r}") from None


def parse_schema(sql: str) -> list[TableSchema]:
    """Parse a script of semicolon-separated CREATE TABLE statements."""
    tables = []
    for statement in _split_statements(sql):
        tables.append(parse_create_table(statement))
    return tables


def _split_statements(sql: str) -> list[str]:
    """Split on semicolons outside string literals; drop -- comments."""
    lines = []
    for line in sql.splitlines():
        stripped = line.split("--", 1)[0]
        lines.append(stripped)
    text = "\n".join(lines)
    statements = []
    current: list[str] = []
    in_string = False
    for ch in text:
        if ch == "'":
            in_string = not in_string
        if ch == ";" and not in_string:
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
