"""Embedded relational storage engine (substrate for the disguising tool).

Public surface::

    from repro.storage import (
        Database, Schema, TableSchema, Column, ForeignKey, FKAction,
        ColumnType, parse_where, parse_schema, QueryStats,
        save_database, load_database,
    )
"""

from repro.storage.database import Database, QueryStats
from repro.storage.evolve import (
    AddColumn,
    DropColumn,
    RenameColumn,
    RenameTable,
    SchemaChange,
    apply_change,
)
from repro.storage.persist import (
    load_database,
    read_snapshot_generation,
    save_database,
    save_database_atomic,
)
from repro.storage.query import Query, parse_select, run_select
from repro.storage.predicate import (
    Predicate,
    TrueP,
    column_equals,
    column_equals_param,
)
from repro.storage.schema import Column, FKAction, ForeignKey, Schema, TableSchema
from repro.storage.sql import parse_create_table, parse_schema, parse_where
from repro.storage.types import ColumnType
from repro.storage.wal import (
    WalCorruptionError,
    WalDatabase,
    WriteAheadLog,
    open_in_place,
    recover_database,
)

__all__ = [
    "Database",
    "SchemaChange",
    "AddColumn",
    "DropColumn",
    "RenameColumn",
    "RenameTable",
    "apply_change",
    "QueryStats",
    "Query",
    "parse_select",
    "run_select",
    "Schema",
    "TableSchema",
    "Column",
    "ForeignKey",
    "FKAction",
    "ColumnType",
    "Predicate",
    "TrueP",
    "column_equals",
    "column_equals_param",
    "parse_where",
    "parse_create_table",
    "parse_schema",
    "save_database",
    "save_database_atomic",
    "load_database",
    "read_snapshot_generation",
    "WriteAheadLog",
    "WalDatabase",
    "WalCorruptionError",
    "open_in_place",
    "recover_database",
]
