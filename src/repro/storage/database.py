"""The embedded relational database: tables, constraints, transactions.

This is the substrate the disguising engine runs against, standing in for
the MySQL backend of the paper's Rust prototype. It provides:

* statement-level API: ``select`` / ``insert`` / ``update`` / ``delete``,
  each counted in :class:`QueryStats` (the §6 linearity experiment counts
  these statements);
* foreign-key enforcement with RESTRICT / CASCADE / SET NULL delete actions;
* transactions via an undo log, with nested savepoints — the engine applies
  each disguise "in one large SQL transaction" (§6);
* a referential-integrity checker used by tests and by the engine's
  post-disguise verification.
"""

from __future__ import annotations

import functools
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.obs.registry import MetricsView, Registry
from repro.obs.report import PlanReport
from repro.obs.trace import TRACER as _TRACER
from repro.errors import (
    ForeignKeyError,
    IntegrityViolation,
    NoSuchRowError,
    SchemaError,
    TransactionError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.storage.compile import PlanCache, compile_assignments
from repro.storage.predicate import Predicate, SetClause
from repro.storage.schema import FKAction, Schema, TableSchema
from repro.storage.sql import parse_set, parse_where
from repro.storage.table import Table
from repro.storage.types import coerce

__all__ = ["Database", "QueryStats"]


@dataclass
class QueryStats:
    """Counts of storage operations executed.

    ``selects`` counts read operations (scans and point lookups);
    ``inserts`` / ``updates`` / ``deletes`` count per-row write operations —
    a batched statement over N rows adds N to its kind counter, so the §6
    claim "the number of queries ... grows linearly with the number of
    objects" is still checked against ``total``. ``statements`` counts
    statement-level API invocations regardless of how many rows each one
    touched: a disguise that batches its work issues O(1) statements per
    transformation step, and benchmarks assert that against this counter.
    """

    selects: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    statements: int = 0

    @property
    def total(self) -> int:
        return self.selects + self.inserts + self.updates + self.deletes

    @property
    def writes(self) -> int:
        return self.inserts + self.updates + self.deletes

    def snapshot(self) -> "QueryStats":
        return QueryStats(
            self.selects, self.inserts, self.updates, self.deletes, self.statements
        )

    def delta(self, since: "QueryStats") -> "QueryStats":
        """Counts accumulated since an earlier snapshot."""
        return QueryStats(
            self.selects - since.selects,
            self.inserts - since.inserts,
            self.updates - since.updates,
            self.deletes - since.deletes,
            self.statements - since.statements,
        )

    def reset(self) -> None:
        self.selects = self.inserts = self.updates = self.deletes = 0
        self.statements = 0

    def merge(self, other: "QueryStats") -> None:
        """Fold another accumulator into this one (concurrency support)."""
        self.selects += other.selects
        self.inserts += other.inserts
        self.updates += other.updates
        self.deletes += other.deletes
        self.statements += other.statements

    # -- deprecated dict-shaped access (see repro.obs) ---------------------------

    _FIELDS = ("selects", "inserts", "updates", "deletes", "statements",
               "total", "writes")

    def __getitem__(self, key: str) -> int:
        """Deprecated: read ``db.metrics()["storage.<name>"]`` instead.

        The old ad-hoc surface treated stats as a dict in places; keyed
        access still resolves (through the same counters the registry's
        ``storage.*`` gauges read) but warns.
        """
        if key not in self._FIELDS:
            raise KeyError(key)
        warnings.warn(
            f"QueryStats[{key!r}] is deprecated; use the attribute or read "
            f"'storage.{key}' from Database.metrics()",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self, key)

    def keys(self) -> tuple[str, ...]:
        return self._FIELDS

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (bare names, no ``storage.`` prefix)."""
        return {name: getattr(self, name) for name in self._FIELDS}


# One undo-log record: a closure that reverses a single physical change.
_UndoOp = Callable[[], None]

# Redo-hook protocol (duck-typed; implemented by repro.storage.wal).
# A hook receives ``on_begin`` / ``on_commit`` / ``on_rollback`` mirroring
# the undo stack, ``on_statement(record)`` for each physical change a
# statement makes (a redo mirror of the undo log), and ``on_ddl(record)``
# for schema changes, which — like the undo log — are never rolled back.

# Lock-hook protocol (duck-typed; implemented by repro.service.locks).
# ``on_statement_start(table, mode)`` / ``on_statement_end()`` bracket
# every outermost statement, ``on_access(table, mode)`` declares the
# other tables a statement touches (FK parents, cascade children), and
# ``on_begin()`` / ``on_txn_end()`` mark outermost transaction bounds so
# the hook can hold two-phase locks until commit or rollback.

_READ, _WRITE, _DELETE = "r", "w", "d"


def _statement(kind: str):
    """Bracket a statement-level API method for the lock hook.

    With no hook attached this adds a single attribute check per call.
    With one attached, the method's table accesses are declared before
    the body runs (acquiring 2PL locks or system-table latches) and the
    hook is told when the outermost statement finishes, so latches drop
    and per-thread stats merge into the shared counters.
    """

    def decorate(fn):
        span_name = "storage." + fn.__name__

        @functools.wraps(fn)
        def wrapper(self, table, *args, **kwargs):
            hook = self._lock_hook
            if _TRACER.enabled:
                return self._traced_statement(
                    fn, span_name, hook, table, kind, args, kwargs
                )
            if hook is None:
                return fn(self, table, *args, **kwargs)
            self._declare_statement(hook, table, kind)
            try:
                return fn(self, table, *args, **kwargs)
            finally:
                self._end_statement(hook)

        return wrapper

    return decorate


class Database:
    """An in-memory relational database with FK enforcement and transactions."""

    def __init__(self, schema: Schema | None = None) -> None:
        self.schema = schema or Schema()
        self.schema.validate()
        # One plan cache shared by every table: DDL anywhere bumps its
        # schema generation, invalidating all cached (plan, compiled
        # predicate) entries at once (see repro.storage.compile.PlanCache).
        self.plans = PlanCache()
        self._tables: dict[str, Table] = {
            ts.name: Table(ts, plans=self.plans) for ts in self.schema
        }
        self.stats = QueryStats()
        # Undo logs and statement counters are per thread ("connection"):
        # each worker of the concurrent service runs its own transaction
        # against the shared tables, serialized by the lock hook.
        self._tls = threading.local()
        self._stats_lock = threading.Lock()
        self._id_lock = threading.Lock()
        # Optional durability mirror (see the redo-hook protocol above).
        self._redo_hook: Any = None
        # Optional concurrency-control hook (see the lock-hook protocol).
        self._lock_hook: Any = None
        # Per-table integer-id high-water marks: next_id never reuses the id
        # of a deleted row, even after rollback (ids may be skipped, never
        # recycled) — otherwise revealing a removal could collide with a
        # placeholder allocated in between.
        self._id_watermark: dict[str, int] = {}
        # Delta write path: batched UPDATE statements log changed-column
        # deltas (undo + WAL) and patch indexes in one pass per statement.
        # False selects the legacy full-row path — kept for differential
        # testing and the old-vs-new write benchmark.
        self.delta_writes = True
        # Observability: this database's metrics registry (repro.obs).
        # Storage/plan-cache gauges register now; subsystems attached later
        # (WAL redo hook, vault, service) register into the same registry.
        self.obs = Registry()
        self._register_obs()
        self._stmt_hist = self.obs.histogram("storage.statement_s")

    def _register_obs(self) -> None:
        """Register the storage layer's gauges under their dotted names.

        Gauges read the live ad-hoc counters (``stats``, table
        diagnostics, the plan cache) at snapshot time — the statement hot
        path keeps its plain attribute bumps and pays nothing extra.
        """
        reg = self.obs
        for name in ("selects", "inserts", "updates", "deletes",
                     "statements", "total", "writes"):
            reg.gauge(f"storage.{name}",
                      (lambda n=name: getattr(self.stats, n)))
        reg.gauge(
            "storage.rows_examined",
            lambda: sum(t.rows_examined for t in self._tables.values()),
        )
        reg.gauge("storage.tables", lambda: len(self._tables))
        reg.gauge("storage.rows", lambda: self.total_rows())
        reg.gauge("plancache.hits", lambda: self.plans.hits)
        reg.gauge("plancache.misses", lambda: self.plans.misses)
        reg.gauge("plancache.entries", lambda: len(self.plans))
        reg.gauge("plancache.generation", lambda: self.plans.generation)
        reg.register_aliases(self._METRIC_ALIASES)

    # Legacy key -> registry name, for the deprecation shim in metrics().
    _METRIC_ALIASES = {
        "selects": "storage.selects",
        "inserts": "storage.inserts",
        "updates": "storage.updates",
        "deletes": "storage.deletes",
        "statements": "storage.statements",
        "total": "storage.total",
        "writes": "storage.writes",
        "rows_examined": "storage.rows_examined",
        "plan_hits": "plancache.hits",
        "plan_misses": "plancache.misses",
    }

    def metrics(self) -> MetricsView:
        """A registry-view snapshot of every metric this database knows.

        Keys are the stable dotted names (``storage.*``, ``plancache.*``,
        plus ``wal.*`` / ``vault.*`` / ``service.*`` once those subsystems
        attach). Old ``QueryStats``-shaped keys (``selects``, ...) still
        resolve, with a :class:`DeprecationWarning`.
        """
        return self.obs.view(aliases=self._METRIC_ALIASES)

    def _traced_statement(self, fn, span_name, hook, table, kind, args, kwargs):
        """Statement body bracketed by a trace span (tracing enabled only).

        Mirrors the untraced wrapper exactly — lock-hook declaration
        first, span inside the locks so lock waits are not charged to the
        statement — and feeds the statement-duration histogram.
        """
        if hook is not None:
            self._declare_statement(hook, table, kind)
        try:
            handle = _TRACER.span(span_name, table=table)
            with handle as sp:
                result = fn(self, table, *args, **kwargs)
            self._stmt_hist.observe(sp.duration_s)
            return result
        finally:
            if hook is not None:
                self._end_statement(hook)

    @property
    def _undo_stack(self) -> list[list[_UndoOp]]:
        """This thread's undo-log stack (one list per open savepoint)."""
        try:
            return self._tls.undo
        except AttributeError:
            undo = self._tls.undo = []
            return undo

    @property
    def _stats(self) -> QueryStats:
        """Where statement counters accumulate.

        Single-threaded (no lock hook): the shared ``stats`` object, as
        ever. Under a lock hook, a per-thread accumulator that merges into
        ``stats`` at each outermost statement end — plain ``int +=`` on a
        shared counter loses increments across threads.
        """
        if self._lock_hook is None:
            return self.stats
        try:
            return self._tls.pending_stats
        except AttributeError:
            pending = self._tls.pending_stats = QueryStats()
            return pending

    # -- schema management ------------------------------------------------------

    def create_table(self, table_schema: TableSchema) -> None:
        """Add a table to a live database (used for vault tables)."""
        self.schema.add(table_schema)
        self.schema.validate()
        self._tables[table_schema.name] = Table(table_schema, plans=self.plans)
        self.plans.bump()
        if self._redo_hook is not None:
            self._redo_hook.on_ddl({"op": "create_table", "schema": table_schema})

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        """Remove a table outright (no FK checks; used by tests and vault GC)."""
        if name not in self._tables:
            raise UnknownTableError(f"no such table {name!r}")
        del self._tables[name]
        # Rebuild the schema without the dropped table.
        self.schema = Schema(ts for ts in self.schema if ts.name != name)
        self.plans.bump()
        if self._redo_hook is not None:
            self._redo_hook.on_ddl({"op": "drop_table", "name": name})

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no such table {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # -- transactions ------------------------------------------------------------

    def begin(self) -> None:
        """Open a transaction (or a nested savepoint)."""
        stack = self._undo_stack
        outermost = not stack
        stack.append([])
        if self._redo_hook is not None:
            self._redo_hook.on_begin()
        if outermost and self._lock_hook is not None:
            self._lock_hook.on_begin()

    def commit(self) -> None:
        """Commit the innermost transaction level.

        Inner commits merge their undo log into the parent so an outer
        rollback still reverses everything.
        """
        stack = self._undo_stack
        if not stack:
            raise TransactionError("commit without begin")
        finished = stack.pop()
        if stack:
            stack[-1].extend(finished)
        if self._redo_hook is not None:
            # Appends the WAL commit unit first: two-phase locks release
            # only once the redo records are in the log (early lock
            # release — the group fsync may still be pending).
            self._redo_hook.on_commit()
        if not stack and self._lock_hook is not None:
            self._lock_hook.on_txn_end()

    def rollback(self) -> None:
        """Undo every change made since the innermost ``begin``."""
        stack = self._undo_stack
        if not stack:
            raise TransactionError("rollback without begin")
        for undo in reversed(stack.pop()):
            undo()
        if self._redo_hook is not None:
            self._redo_hook.on_rollback()
        if not stack and self._lock_hook is not None:
            self._lock_hook.on_txn_end()

    def transaction(self) -> "_TransactionContext":
        """``with db.transaction():`` — commit on success, rollback on error."""
        return _TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        return bool(self._undo_stack)

    def _log_undo(self, op: _UndoOp) -> None:
        if self._undo_stack:
            self._undo_stack[-1].append(op)

    def set_redo_hook(self, hook: Any) -> None:
        """Attach (or detach, with None) a durability mirror.

        The hook sees every committed physical change as a redo record
        (see :mod:`repro.storage.wal`). Attaching mid-transaction would
        desynchronize the hook's buffer stack from the undo stack, so it
        is rejected.
        """
        if self.in_transaction:
            raise TransactionError("cannot change the redo hook inside a transaction")
        self._redo_hook = hook
        if hook is not None and hasattr(hook, "register_metrics"):
            hook.register_metrics(self.obs)

    def _log_redo(self, record: dict[str, Any]) -> None:
        if self._redo_hook is not None:
            self._redo_hook.on_statement(record)

    def redo_barrier(self) -> None:
        """Block until this thread's committed redo units are durable.

        Delegates to the redo hook's ``commit_barrier`` (the WAL's group
        fsync); an in-memory database has nothing to wait for. Side
        effects that must strictly follow a commit — e.g. the vault
        journal's deferred entry deletes — call this first, so a crash
        cannot order them before the commit they depend on.
        """
        barrier = getattr(self._redo_hook, "commit_barrier", None)
        if barrier is not None:
            barrier()

    def set_lock_hook(self, hook: Any) -> None:
        """Attach (or detach, with None) a concurrency-control hook.

        The hook sees statement/transaction boundaries and table accesses
        (see the lock-hook protocol above and :mod:`repro.service.locks`).
        Switching hooks mid-transaction would strand held locks, so it is
        rejected.
        """
        if self.in_transaction:
            raise TransactionError("cannot change the lock hook inside a transaction")
        self._lock_hook = hook

    def _declare_statement(self, hook: Any, table: str, kind: str) -> None:
        """Declare a statement's table footprint before its body runs.

        Write statements read their FK parents; delete statements reach
        referencing tables transitively (RESTRICT checks read, CASCADE /
        SET NULL mutate), so the whole footprint is declared up front —
        acquiring locks in one burst per statement keeps hold times short
        and gives the deadlock detector whole-statement edges.
        """
        tls = self._tls
        tls.stmt_depth = getattr(tls, "stmt_depth", 0) + 1
        try:
            hook.on_statement_start(table, "S" if kind == _READ else "X")
            if kind != _READ and table in self._tables:
                for fk in self._tables[table].schema.foreign_keys:
                    if fk.parent_table != table:
                        hook.on_access(fk.parent_table, "S")
                if kind == _DELETE:
                    for child, mode in self._delete_footprint(table):
                        hook.on_access(child, mode)
        except BaseException:
            self._end_statement(hook)
            raise

    def _end_statement(self, hook: Any) -> None:
        tls = self._tls
        tls.stmt_depth -= 1
        hook.on_statement_end()
        if tls.stmt_depth == 0:
            pending = getattr(tls, "pending_stats", None)
            if pending is not None:
                with self._stats_lock:
                    self.stats.merge(pending)
                pending.reset()

    def _declare_access(self, table: str, kind: str) -> None:
        """Declare an extra table access discovered mid-statement (rare
        paths only, e.g. primary-key renumbering reference checks)."""
        hook = self._lock_hook
        if hook is not None:
            hook.on_access(table, "S" if kind == _READ else "X")

    def _delete_footprint(self, table: str) -> list[tuple[str, str]]:
        """Tables a delete on *table* may touch, with lock modes.

        RESTRICT children are only read; CASCADE and SET NULL children are
        written, and cascades recurse into their own referencing tables.
        """
        out: dict[str, str] = {}
        frontier = [table]
        cascaded = {table}
        while frontier:
            current = frontier.pop()
            for child_schema, fk in self.schema.referencing(current):
                name = child_schema.name
                if fk.on_delete is FKAction.RESTRICT:
                    out.setdefault(name, "S")
                else:
                    out[name] = "X"
                    if fk.on_delete is FKAction.CASCADE and name not in cascaded:
                        cascaded.add(name)
                        frontier.append(name)
        return list(out.items())

    # -- statements ----------------------------------------------------------------

    @_statement(_READ)
    def select(
        self,
        table: str,
        where: str | Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """Rows of *table* matching *where* (a WHERE string or Predicate).

        Returns read-only :class:`~repro.storage.table.RowView` objects;
        call ``dict(row)`` on one before mutating it.
        """
        self._stats.selects += 1
        self._stats.statements += 1
        pred = parse_where(where) if where is not None else None
        return self.table(table).scan(pred, params)

    @_statement(_READ)
    def get(self, table: str, pk_value: Any) -> dict[str, Any] | None:
        """Point lookup by primary key."""
        self._stats.selects += 1
        self._stats.statements += 1
        return self.table(table).get(pk_value)

    @_statement(_READ)
    def count(
        self,
        table: str,
        where: str | Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        self._stats.selects += 1
        self._stats.statements += 1
        pred = parse_where(where) if where is not None else None
        return self.table(table).count(pred, params)

    def explain(
        self,
        table: str,
        where: str | Predicate | None = None,
        params: Mapping[str, Any] | None = None,
        analyze: bool = False,
    ) -> PlanReport:
        """EXPLAIN a select; with ``analyze=True``, execute it too.

        Returns a typed :class:`~repro.obs.report.PlanReport` (mapping
        access keeps old ``report["plan"]`` callers working). Plain
        EXPLAIN never executes and is not counted as a query; ANALYZE
        runs the plan — table ``rows_examined`` diagnostics advance like
        any scan's, but ``stats`` stays untouched so EXPLAIN output never
        perturbs the statement counts experiments assert on.
        """
        pred = parse_where(where) if where is not None else None
        return self.table(table).explain(pred, params, analyze=analyze)

    @_statement(_WRITE)
    def insert(
        self, table: str, values: dict[str, Any], enforce_fk: bool = True
    ) -> dict[str, Any]:
        """Insert one row, enforcing all foreign keys.

        ``enforce_fk=False`` defers the check — the disguising engine uses
        it when reveal reinserts rows whose parents may only reappear (or
        whose rows may be re-removed) later in the same transaction; such
        callers re-validate with :meth:`check_row_fks` before committing.
        """
        self._stats.inserts += 1
        self._stats.statements += 1
        target = self.table(table)
        row = target.schema.normalize_row(values)
        if enforce_fk:
            self._check_fks_outgoing(target.schema, row)
        stored = target.insert(row)
        pk = stored[target.schema.primary_key]
        if isinstance(pk, int) and pk > self._id_watermark.get(table, 0):
            self._id_watermark[table] = pk
        self._log_undo(lambda: target.delete_by_pk(pk))
        self._log_redo({"op": "insert", "table": table, "rows": [stored]})
        return stored

    @_statement(_WRITE)
    def update(
        self,
        table: str,
        where: str | Predicate,
        changes: Mapping[str, Any],
        params: Mapping[str, Any] | None = None,
    ) -> int:
        """Update all matching rows one at a time; returns the number updated.

        Prefer :meth:`update_where` on hot paths — it resolves candidates
        once and logs a single batched undo record.
        """
        self._stats.statements += 1
        target = self.table(table)
        rows = self.select(table, where, params)
        pk_col = target.schema.primary_key
        for row in rows:
            self._update_one(target, row[pk_col], changes)
        return len(rows)

    @_statement(_WRITE)
    def update_by_pk(
        self,
        table: str,
        pk_value: Any,
        changes: Mapping[str, Any],
        enforce_fk: bool = True,
    ) -> dict[str, Any]:
        """Update the single row with the given primary key; returns new row.

        ``enforce_fk=False`` defers the outgoing-FK check (see
        :meth:`insert` for when the disguising engine needs this).
        """
        self._stats.statements += 1
        return self._update_one(self.table(table), pk_value, changes, enforce_fk)

    def _update_one(
        self,
        target: Table,
        pk_value: Any,
        changes: Mapping[str, Any],
        enforce_fk: bool = True,
    ) -> dict[str, Any]:
        self._stats.updates += 1
        view = target.view(pk_value)
        if view is None:
            raise NoSuchRowError(f"{target.name}: no row with pk {pk_value!r}")
        if enforce_fk:
            # Validate outgoing FKs on the post-image before mutating. Only
            # the FK columns matter, so diff against the stored row through
            # the view instead of materializing a full preview copy.
            schema = target.schema
            for fk in schema.foreign_keys:
                if fk.column in changes:
                    value = changes[fk.column]
                    if value is not None:
                        value = coerce(value, schema.column(fk.column).ctype)
                else:
                    value = view[fk.column]
                if value is None:
                    continue
                if self.table(fk.parent_table).rid_of(value) is None:
                    raise ForeignKeyError(
                        f"{schema.name}.{fk.column}={value!r} references "
                        f"missing {fk.parent_table}.{fk.parent_column}"
                    )
        old, new = target.update_by_pk(pk_value, changes)
        old_pk = old[target.schema.primary_key]
        new_pk = new[target.schema.primary_key]
        if old_pk != new_pk:
            self._check_pk_change_references(target, old_pk)
        self._log_undo(lambda: target.update_by_pk(new_pk, old))
        self._log_redo(
            {"op": "update", "table": target.name, "updates": [(old_pk, new)]}
        )
        return new

    @_statement(_DELETE)
    def delete(
        self,
        table: str,
        where: str | Predicate,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        """Delete all matching rows one at a time, honouring FK actions.

        Prefer :meth:`delete_where` on hot paths — it resolves candidates
        and incoming references in bulk and logs one batched undo record.
        """
        self._stats.statements += 1
        target = self.table(table)
        rows = self.select(table, where, params)
        pk_col = target.schema.primary_key
        for row in rows:
            self.delete_by_pk(table, row[pk_col])
        return len(rows)

    @_statement(_DELETE)
    def delete_by_pk(
        self, table: str, pk_value: Any, enforce_fk: bool = True
    ) -> dict[str, Any]:
        """Delete one row, applying RESTRICT/CASCADE/SET NULL to referencers.

        ``enforce_fk=False`` skips incoming-reference resolution entirely
        (no RESTRICT error, no cascades): reveal uses it when re-executing
        a removal whose referencing rows are mid-chain and will be fixed
        later in the same transaction, then re-validates before commit.
        """
        target = self.table(table)
        # Existence check only — no need to copy the row just to discard it.
        if target.rid_of(pk_value) is None:
            raise NoSuchRowError(f"{table}: no row with pk {pk_value!r}")
        if enforce_fk:
            self._resolve_incoming_references(table, pk_value)
        self._stats.deletes += 1
        self._stats.statements += 1
        old = target.delete_by_pk(pk_value)
        self._log_undo(lambda: target.insert(old))
        self._log_redo({"op": "delete", "table": table, "pks": [pk_value]})
        return dict(old)

    # -- batched statements ---------------------------------------------------------

    @_statement(_WRITE)
    def insert_many(
        self,
        table: str,
        values_list: Iterable[dict[str, Any]],
        enforce_fk: bool = True,
    ) -> list[dict[str, Any]]:
        """Insert many rows as ONE batched statement.

        Outgoing foreign keys are checked once per distinct value (rows in
        the batch may reference each other for self-referential tables),
        index maintenance happens per row but validation is done up front,
        and a single undo record covers the whole batch.
        """
        self._stats.statements += 1
        target = self.table(table)
        rows = [target.schema.normalize_row(v) for v in values_list]
        if not rows:
            return []
        pk_col = target.schema.primary_key
        if enforce_fk:
            batch_pks = {row[pk_col] for row in rows}
            for fk in target.schema.foreign_keys:
                distinct = {row[fk.column] for row in rows}
                distinct.discard(None)
                if fk.parent_table == table:
                    distinct -= batch_pks
                parent = self.table(fk.parent_table)
                for value in distinct:
                    if parent.rid_of(value) is None:
                        raise ForeignKeyError(
                            f"{table}.{fk.column}={value!r} references missing "
                            f"{fk.parent_table}.{fk.parent_column}"
                        )
        stored = target.insert_rows(rows)
        self._stats.inserts += len(stored)
        pks = [row[pk_col] for row in stored]
        top = max((pk for pk in pks if isinstance(pk, int)), default=0)
        if top > self._id_watermark.get(table, 0):
            self._id_watermark[table] = top
        self._log_undo(lambda: target.delete_pks(pks))
        self._log_redo({"op": "insert", "table": table, "rows": stored})
        return stored

    @_statement(_WRITE)
    def update_many(
        self,
        table: str,
        updates: Iterable[tuple[Any, Mapping[str, Any]]],
        enforce_fk: bool = True,
    ) -> list[dict[str, Any]]:
        """Apply many ``(pk, changes)`` updates as ONE batched statement.

        Candidate rids are resolved once, only the indexes of changed
        columns are maintained, and a single undo record restores all old
        rows on rollback. Updates that change a primary key fall back to
        the per-row path (reveal renumbering needs full reference checks).
        Returns the new rows.
        """
        self._stats.statements += 1
        return self._update_batch(self.table(table), list(updates), enforce_fk)

    @_statement(_WRITE)
    def update_where(
        self,
        table: str,
        where: str | Predicate,
        changes: Mapping[str, Any] | str | SetClause,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        """Batched ``UPDATE ... WHERE``: plan the predicate once, update all
        matching rows with grouped index maintenance and one undo record.
        Returns the number of rows updated.

        *changes* is a mapping of constant values, or an UPDATE SET clause
        (text like ``"score = score + 1, bio = NULL"`` or a parsed
        :class:`SetClause`) whose expressions are compiled to closures and
        evaluated per row (see :func:`repro.storage.compile.compile_assignments`).
        """
        self._stats.statements += 1
        self._stats.selects += 1
        target = self.table(table)
        pred = parse_where(where)
        if isinstance(changes, (str, SetClause)):
            return self._update_where_set(target, pred, parse_set(changes), params or {})
        pk_col = target.schema.primary_key
        if not self.delta_writes or pk_col in changes:
            views = target.scan(pred, params)
            updates = [(row[pk_col], changes) for row in views]
            self._update_batch(target, updates, enforce_fk=True)
            return len(updates)
        # Delta fast path: match (rid, stored row) pairs without RowView
        # materialization, coerce the shared change set once, apply as one
        # batch, and log changed-column deltas only.
        matches = target.match_rows(pred, params)
        if not matches:
            return 0
        delta = target.coerce_changes(changes)
        self._check_delta_fks(target, delta)
        changed = target.apply_updates((rid, delta) for rid, _row in matches)
        self._stats.updates += len(matches)
        self._log_update_deltas(
            target, [row[pk_col] for _rid, row in matches], changed, shared=delta
        )
        return len(matches)

    def _update_where_set(
        self,
        target: Table,
        pred: Predicate,
        clause: SetClause,
        params: Mapping[str, Any],
    ) -> int:
        """Compiled SET-expression UPDATE: evaluate per row, apply as deltas."""
        pk_col = target.schema.primary_key
        columns = clause.columns()
        for name in columns:
            if not target.schema.has_column(name):
                raise UnknownColumnError(
                    f"table {target.name!r} has no column {name!r}"
                )
        if pk_col in columns or not self.delta_writes:
            # Primary-key assignments (placeholder renumbering) need the
            # per-row reference checks; legacy mode keeps the full-row
            # shape. Still ONE batched statement (one undo/redo unit).
            rows = target.scan(pred, params)
            evaluate = self._set_evaluator(target, clause, params)
            updates = [
                (row[pk_col], dict(zip(columns, evaluate(row)))) for row in rows
            ]
            self._update_batch(target, updates, enforce_fk=True)
            return len(rows)
        matches = target.match_rows(pred, params)
        if not matches:
            return 0
        evaluate = self._set_evaluator(target, clause, params)
        schema_cols = [target.schema.column(name) for name in columns]
        fk_by_col = {
            fk.column: fk
            for fk in target.schema.foreign_keys
            if fk.column in columns
        }
        fk_seen: dict[str, set[Any]] = {name: set() for name in fk_by_col}
        deltas: list[tuple[int, dict[str, Any]]] = []
        for rid, row in matches:
            values = evaluate(row)
            delta: dict[str, Any] = {}
            for col, value in zip(schema_cols, values):
                coerced = coerce(value, col.ctype) if value is not None else None
                if coerced is None and not col.nullable:
                    raise SchemaError(
                        f"column {target.name}.{col.name} is NOT NULL but got NULL"
                    )
                delta[col.name] = coerced
                if coerced is not None and col.name in fk_seen:
                    fk_seen[col.name].add(coerced)
            deltas.append((rid, delta))
        for name, values in fk_seen.items():
            fk = fk_by_col[name]
            parent = self.table(fk.parent_table)
            for value in values:
                if parent.rid_of(value) is None:
                    raise ForeignKeyError(
                        f"{target.name}.{name}={value!r} references "
                        f"missing {fk.parent_table}.{fk.parent_column}"
                    )
        changed = target.apply_updates(deltas)
        self._stats.updates += len(matches)
        self._log_update_deltas(
            target, [row[pk_col] for _rid, row in matches], changed
        )
        return len(matches)

    def _set_evaluator(
        self, target: Table, clause: SetClause, params: Mapping[str, Any]
    ) -> Callable[[Mapping[str, Any]], Any]:
        """A bound ``row -> values`` function for *clause*.

        Compiled assignment closures share the plan cache with predicate
        plans (stamped with the schema generation, invalidated by any DDL);
        clauses with no compiled form fall back to the AST interpreter.
        """
        entry = self.plans.lookup(target.name, clause)
        if entry is None:
            entry = self.plans.store(
                target.name, clause, None, compile_assignments(clause)
            )
        compiled = entry.compiled
        if compiled is None:
            return lambda row: clause.eval_row(row, params)
        return compiled.bind(params)

    def _check_delta_fks(self, target: Table, delta: Mapping[str, Any]) -> None:
        """Outgoing-FK check for an already-coerced shared change set."""
        for fk in target.schema.foreign_keys:
            value = delta.get(fk.column)
            if value is None:
                continue
            if self.table(fk.parent_table).rid_of(value) is None:
                raise ForeignKeyError(
                    f"{target.name}.{fk.column}={value!r} references "
                    f"missing {fk.parent_table}.{fk.parent_column}"
                )

    def _log_update_deltas(
        self,
        target: Table,
        pks: list[Any],
        changed: list[tuple[int, dict[str, Any], dict[str, Any]]],
        shared: Mapping[str, Any] | None = None,
    ) -> None:
        """Delta undo/redo for an applied update batch.

        The undo closure re-applies the inverse deltas in reverse order (a
        row updated twice in one statement restores correctly) — keyed by
        primary key and resolved to rids at rollback time, because a later
        delete + its undo in the same transaction can reinsert the row
        under a fresh rid. The redo record carries one pk-keyed delta map
        for the whole statement: rids are process-local and not stable
        across recovery, so the WAL frame keys by primary key (deltas never
        change pks).

        *shared* is the statement's constant change set, when it had one
        (``update_where`` with a value mapping). Rows whose effective delta
        is the whole shared set are logged as one ``set`` map plus a pk
        list — the change values appear once in the frame instead of once
        per row — while rows where some columns were already at the target
        value fall back to per-row ``deltas``.
        """
        inverse = [
            (pk, inv) for pk, (_rid, inv, _eff) in zip(pks, changed) if inv
        ]
        if inverse:
            inverse.reverse()

            def _undo(pairs: list = inverse, table: Table = target) -> None:
                table.apply_updates(
                    (table.rid_of(pk), delta) for pk, delta in pairs
                )

            self._log_undo(_undo)
        record: dict[str, Any] = {"op": "update", "table": target.name}
        if shared is not None:
            # Effective deltas are always subsets of the shared change set
            # (same coerced values), so a length match means "all of it".
            n_shared = len(shared)
            set_pks = [
                pk
                for pk, (_rid, _inv, eff) in zip(pks, changed)
                if len(eff) == n_shared
            ]
            partial = [
                [pk, eff]
                for pk, (_rid, _inv, eff) in zip(pks, changed)
                if eff and len(eff) != n_shared
            ]
            if set_pks:
                record["set"] = dict(shared)
                record["set_pks"] = set_pks
            if partial:
                record["deltas"] = partial
            if set_pks or partial:
                self._log_redo(record)
            return
        effective = [
            [pk, eff] for pk, (_rid, _inv, eff) in zip(pks, changed) if eff
        ]
        if effective:
            record["deltas"] = effective
            self._log_redo(record)

    def _update_batch(
        self,
        target: Table,
        updates: list[tuple[Any, Mapping[str, Any]]],
        enforce_fk: bool = True,
    ) -> list[dict[str, Any]]:
        if not updates:
            return []
        pk_col = target.schema.primary_key
        if any(pk_col in ch and ch[pk_col] != pk for pk, ch in updates):
            return [
                self._update_one(target, pk, ch, enforce_fk) for pk, ch in updates
            ]
        if enforce_fk:
            for fk in target.schema.foreign_keys:
                ctype = target.schema.column(fk.column).ctype
                distinct = set()
                for _pk, ch in updates:
                    if fk.column in ch and ch[fk.column] is not None:
                        distinct.add(coerce(ch[fk.column], ctype))
                parent = self.table(fk.parent_table)
                for value in distinct:
                    if parent.rid_of(value) is None:
                        raise ForeignKeyError(
                            f"{target.name}.{fk.column}={value!r} references "
                            f"missing {fk.parent_table}.{fk.parent_column}"
                        )
        if not self.delta_writes:
            # Legacy full-row path: undo restores complete old rows and the
            # WAL frame carries every new row in full.
            pairs = target.update_pks(updates)
            self._stats.updates += len(pairs)
            restore = [(old[pk_col], old) for old, _new in pairs]
            restore.reverse()
            self._log_undo(lambda: target.update_pks(restore))
            self._log_redo(
                {
                    "op": "update",
                    "table": target.name,
                    "updates": [(old[pk_col], new) for old, new in pairs],
                }
            )
            return [new for _old, new in pairs]
        # Delta path: resolve rids once, coerce each distinct change set
        # once (batched statements usually share one mapping across every
        # row — SET NULL cascades, update_where), apply as one batch with
        # grouped index maintenance, and log changed-column deltas only.
        coerced: dict[int, dict[str, Any]] = {}
        deltas: list[tuple[int, dict[str, Any]]] = []
        pks: list[Any] = []
        for pk, ch in updates:
            rid = target.rid_of(pk)
            if rid is None:
                raise NoSuchRowError(f"{target.name}: no row with {pk_col}={pk!r}")
            delta = coerced.get(id(ch))
            if delta is None:
                delta = coerced[id(ch)] = target.coerce_changes(ch)
            deltas.append((rid, delta))
            pks.append(pk)
        changed = target.apply_updates(deltas)
        self._stats.updates += len(changed)
        self._log_update_deltas(target, pks, changed)
        return [target.row_by_rid(rid) for rid, _delta in deltas]

    @_statement(_DELETE)
    def delete_many(
        self, table: str, pk_values: Iterable[Any], enforce_fk: bool = True
    ) -> int:
        """Delete many rows by primary key as ONE batched statement.

        Incoming references are resolved in bulk per referencing table
        (RESTRICT raises, CASCADE recurses batched, SET NULL updates
        batched) and one undo record reinserts the whole batch on
        rollback. Returns the number of rows deleted.
        """
        self._stats.statements += 1
        return self._delete_batch(self.table(table), pk_values, enforce_fk)

    @_statement(_DELETE)
    def delete_where(
        self,
        table: str,
        where: str | Predicate,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        """Batched ``DELETE ... WHERE``: plan the predicate once, then
        delete all matching rows via :meth:`delete_many` semantics.
        """
        self._stats.statements += 1
        self._stats.selects += 1
        target = self.table(table)
        matches = target.match_rows(parse_where(where), params)
        pk_col = target.schema.primary_key
        return self._delete_batch(target, [row[pk_col] for _rid, row in matches], True)

    def _delete_batch(
        self, target: Table, pk_values: Iterable[Any], enforce_fk: bool
    ) -> int:
        pks = list(dict.fromkeys(pk_values))
        if not pks:
            return 0
        table = target.name
        for pk in pks:
            if target.rid_of(pk) is None:
                raise NoSuchRowError(f"{table}: no row with pk {pk!r}")
        if enforce_fk:
            doomed = set(pks)
            for child_schema, fk in self.schema.referencing(table):
                child = self.table(child_schema.name)
                self._stats.selects += len(pks)
                child_pk = child_schema.primary_key
                hits: list[Any] = []
                seen: set[Any] = set()
                for pk in pks:
                    for row in child.referencing_rows(fk.column, pk, sort=False):
                        cpk = row[child_pk]
                        if child_schema.name == table and cpk in doomed:
                            continue
                        if cpk not in seen:
                            seen.add(cpk)
                            hits.append(cpk)
                if not hits:
                    continue
                if fk.on_delete is FKAction.RESTRICT:
                    raise ForeignKeyError(
                        f"cannot delete from {table}: {len(hits)} row(s) of "
                        f"{child_schema.name}.{fk.column} still reference the "
                        f"batch (ON DELETE RESTRICT)"
                    )
                if fk.on_delete is FKAction.CASCADE:
                    self._delete_batch(child, hits, True)
                elif fk.on_delete is FKAction.SET_NULL:
                    self._update_batch(
                        child,
                        [(cpk, {fk.column: None}) for cpk in hits],
                        enforce_fk=False,
                    )
        olds = target.delete_pks(pks)
        self._stats.deletes += len(olds)
        self._log_undo(lambda: target.insert_rows(olds))
        self._log_redo({"op": "delete", "table": table, "pks": pks})
        return len(olds)

    # -- foreign-key machinery ----------------------------------------------------

    def _check_fks_outgoing(self, table_schema: TableSchema, row: Mapping[str, Any]) -> None:
        """Every non-NULL FK value in *row* must exist in its parent table."""
        for fk in table_schema.foreign_keys:
            value = row[fk.column]
            if value is None:
                continue
            parent = self.table(fk.parent_table)
            if parent.rid_of(value) is None:
                raise ForeignKeyError(
                    f"{table_schema.name}.{fk.column}={value!r} references "
                    f"missing {fk.parent_table}.{fk.parent_column}"
                )

    def _check_pk_change_references(self, target: Table, old_pk: Any) -> None:
        """Disallow changing a primary key that other rows still reference."""
        for child_schema, fk in self.schema.referencing(target.name):
            self._declare_access(child_schema.name, _READ)
            child = self.table(child_schema.name)
            if child.referencing_rows(fk.column, old_pk, sort=False):
                raise ForeignKeyError(
                    f"cannot change primary key {target.name}.{old_pk!r}: "
                    f"still referenced by {child_schema.name}.{fk.column}"
                )

    def _resolve_incoming_references(self, table: str, pk_value: Any) -> None:
        """Apply each referencing FK's ON DELETE action before a delete."""
        for child_schema, fk in self.schema.referencing(table):
            child = self.table(child_schema.name)
            self._stats.selects += 1
            referencing = child.referencing_rows(fk.column, pk_value)
            if not referencing:
                continue
            if fk.on_delete is FKAction.RESTRICT:
                raise ForeignKeyError(
                    f"cannot delete {table}.{pk_value!r}: referenced by "
                    f"{len(referencing)} row(s) of {child_schema.name}.{fk.column} "
                    f"(ON DELETE RESTRICT)"
                )
            pk_col = child_schema.primary_key
            if fk.on_delete is FKAction.CASCADE:
                for row in referencing:
                    self.delete_by_pk(child_schema.name, row[pk_col])
            elif fk.on_delete is FKAction.SET_NULL:
                for row in referencing:
                    self._update_one(child, row[pk_col], {fk.column: None})

    # -- integrity checking ----------------------------------------------------------

    def check_row_fks(self, table: str, pk_value: Any) -> list[str]:
        """Outgoing-FK violations of one row (empty if clean or row gone)."""
        target = self.table(table)
        row = target.get(pk_value)
        if row is None:
            return []
        problems = []
        for fk in target.schema.foreign_keys:
            value = row[fk.column]
            if value is None:
                continue
            if self.table(fk.parent_table).rid_of(value) is None:
                problems.append(
                    f"{table}.{fk.column}={value!r} references missing "
                    f"{fk.parent_table}.{fk.parent_column}"
                )
        return problems

    def check_integrity(self) -> list[str]:
        """Return a list of referential-integrity violations (empty = clean)."""
        problems = []
        for table_schema in self.schema:
            table = self._tables[table_schema.name]
            for row in table.rows():
                for fk in table_schema.foreign_keys:
                    value = row[fk.column]
                    if value is None:
                        continue
                    parent = self._tables[fk.parent_table]
                    if parent.rid_of(value) is None:
                        problems.append(
                            f"{table_schema.name}.{fk.column}={value!r} dangles "
                            f"(row {table_schema.primary_key}="
                            f"{row[table_schema.primary_key]!r})"
                        )
        return problems

    def assert_integrity(self) -> None:
        """Raise :class:`IntegrityViolation` if any foreign key dangles."""
        problems = self.check_integrity()
        if problems:
            raise IntegrityViolation(
                f"{len(problems)} dangling foreign key(s): " + "; ".join(problems[:5])
            )

    # -- misc -------------------------------------------------------------------------

    def next_id(self, table: str) -> int:
        """Allocate the next integer primary key for *table*.

        Monotonic: returns one more than the largest id ever seen in the
        table (live or since deleted), so ids are never recycled.
        """
        current = self.table(table).max_pk()
        if current is None:
            current = 0
        if not isinstance(current, int):
            raise TransactionError(
                f"next_id requires integer primary keys, {table} has {current!r}"
            )
        # The watermark mutex (not a table lock) makes concurrent
        # allocations on one table hand out distinct ids: once the
        # watermark passes max_pk it alone decides the next id.
        with self._id_lock:
            allocated = max(current, self._id_watermark.get(table, 0)) + 1
            self._id_watermark[table] = allocated
        return allocated

    def row_counts(self) -> dict[str, int]:
        """Row count per table (handy in tests and reports)."""
        return {name: len(table) for name, table in self._tables.items()}

    def total_rows(self) -> int:
        return sum(len(table) for table in self._tables.values())


class _TransactionContext:
    """Context manager backing :meth:`Database.transaction`."""

    def __init__(self, db: Database) -> None:
        self._db = db

    def __enter__(self) -> Database:
        self._db.begin()
        return self._db

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._db.commit()
        else:
            self._db.rollback()
        return False
