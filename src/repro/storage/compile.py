"""Predicate compilation: lowering predicate ASTs into flat Python closures.

Every disguise application and application query funnels row selection
through :meth:`Predicate.eval3` — a tree-walking interpreter that pays a
Python virtual call, two ``Expr.eval`` dispatches, an operator-table
lookup, and a comparability check *per AST node per scanned row*. On the
scan-heavy, FK-rich workloads the paper targets (§5 "arbitrary SQL WHERE
clauses" over §6-scale tables) that per-row interpretation dominates the
read path.

This module removes the dispatch entirely: :func:`compile_predicate`
walks the AST **once** and generates the source of a specialized Python
function that evaluates the whole predicate in a single call — straight-line
loads, comparisons and branches, no per-node dispatch. The generated code
preserves the interpreter's exact semantics:

* SQL three-valued logic, with ``UNKNOWN`` represented as ``None`` (so the
  generated function returns ``True`` / ``False`` / ``None``);
* short-circuit order identical to ``And.eval3`` / ``Or.eval3`` (the right
  arm is only evaluated when the left arm did not decide), so errors are
  raised for exactly the rows the interpreter would raise on;
* LIKE (via the shared :func:`~repro.storage.predicate.like_regex` cache),
  BETWEEN, IN-lists with NULL items, NULL-propagating arithmetic with
  division-by-zero yielding NULL, and cross-type comparison rules
  (``=``/``!=`` give FALSE/TRUE, ordering raises);
* late parameter binding: compilation produces a *bind* function
  ``bind(params) -> row_fn``, so one compiled form serves every parameter
  value — the paper's specs are written once and re-run per user.

Compilation is specialized against literal operands: comparing a column
against an ``int`` literal emits an inline ``isinstance`` guard instead of
the generic :func:`~repro.storage.types.is_comparable` call.

Unknown node types (user subclasses overriding ``eval3``) are not
compiled; :func:`compile_predicate` returns ``None`` and callers fall back
to the interpreter.

The module also hosts :class:`PlanCache` — the keyed plan cache
(table, predicate, schema generation) → (access-path template, compiled
predicate) that lets repeated disguise applications skip parse, plan and
compile entirely (see :meth:`repro.storage.table.Table.scan`).
"""

from __future__ import annotations

import dataclasses
import math
import threading
from functools import lru_cache
from typing import Any, Callable, Mapping

from repro.errors import StorageError, UnknownColumnError
from repro.storage.predicate import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Comparison,
    FalseP,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    SetClause,
    Tristate,
    TrueP,
    like_regex,
)
from repro.storage.types import is_comparable

__all__ = [
    "CompiledPredicate",
    "CompiledAssignments",
    "compile_predicate",
    "compile_assignments",
    "clear_compile_cache",
    "compile_cache_info",
    "matcher",
    "PlanCache",
    "PlanEntry",
]


# --------------------------------------------------------------------------
# Runtime helpers referenced by generated code
# --------------------------------------------------------------------------

_MISSING = object()  # sentinel for "parameter not bound"


def _unbound(name: str) -> Any:
    raise StorageError(f"unbound predicate parameter ${name}")


def _unknown_column(exc: KeyError) -> Any:
    raise UnknownColumnError(f"row has no column {exc.args[0]!r}") from None


def _order_error(lhs: Any, rhs: Any) -> Any:
    raise StorageError(f"cannot order {lhs!r} against {rhs!r}")


def _arith_error(lhs: Any, op: str, rhs: Any) -> Any:
    raise StorageError(f"arithmetic on non-numeric values: {lhs!r} {op} {rhs!r}")


class _Unsupported(Exception):
    """Raised during codegen when a node type has no compiled form."""


_NOT_CONST = object()  # marker: expression value unknown until runtime

# Types whose repr() round-trips exactly and may be inlined into source.
_INLINE_TYPES = (int, str, bytes, bool, type(None))

_PY_CMP = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class _Codegen:
    """Emits the body of the generated row function.

    Predicates compile to statements that leave their tristate result
    (``True`` / ``False`` / ``None``) in a fresh local; scalar expressions
    compile to an expression string plus, when the value is a compile-time
    constant, the constant itself — so NULL checks and comparability
    guards against literals are resolved during codegen, not per row.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 3  # def _bind / def _row / try
        self.counter = 0
        self.param_vars: dict[str, str] = {}
        self.ns: dict[str, Any] = {}

    # -- emission helpers ---------------------------------------------------

    def new(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def block(self, header: str) -> "_Block":
        self.line(header)
        return _Block(self)

    def const(self, value: Any) -> str:
        """An expression string evaluating to *value* in generated code."""
        if type(value) in _INLINE_TYPES:
            return repr(value)
        if type(value) is float and math.isfinite(value):
            return repr(value)
        name = f"_c{len(self.ns)}"
        self.ns[name] = value
        return name

    # -- scalar expressions -------------------------------------------------

    def emit_expr(self, node: Any) -> tuple[str, Any]:
        """Compile an Expr; returns (expression string, const value or marker).

        The returned expression string is safe to reference repeatedly:
        it is either a literal/constant or a local already assigned.
        """
        kind = type(node)
        if kind is Literal:
            return self.const(node.value), node.value
        if kind is ColumnRef:
            var = self.new()
            self.line(f"{var} = row[{node.name!r}]")
            return var, _NOT_CONST
        if kind is Param:
            pvar = self.param_vars.setdefault(
                node.name, f"p{len(self.param_vars)}"
            )
            # The guard runs where Param.eval would — an unbound parameter
            # only raises if the short-circuit order reaches it.
            self.line(f"if {pvar} is _MISSING: _unbound({node.name!r})")
            return pvar, _NOT_CONST
        if kind is BinOp:
            return self._emit_binop(node)
        raise _Unsupported(f"no compiled form for {kind.__name__}")

    def _emit_binop(self, node: BinOp) -> tuple[str, Any]:
        a, av = self.emit_expr(node.left)
        b, bv = self.emit_expr(node.right)
        out = self.new()
        null_checks = [f"{x} is None" for x, v in ((a, av), (b, bv)) if v is _NOT_CONST]
        if (av is not _NOT_CONST and av is None) or (
            bv is not _NOT_CONST and bv is None
        ):
            self.line(f"{out} = None")
            return out, None
        body = self._binop_body(node.op, a, av, b, bv, out)
        if null_checks:
            with self.block(f"if {' or '.join(null_checks)}:"):
                self.line(f"{out} = None")
            with self.block("else:"):
                body()
        else:
            body()
        return out, _NOT_CONST

    def _binop_body(
        self, op: str, a: str, av: Any, b: str, bv: Any, out: str
    ) -> Callable[[], None]:
        def _is_numeric(v: Any) -> bool:
            return isinstance(v, (int, float))  # bools included, as eval does

        def body() -> None:
            guards = [
                f"not isinstance({x}, (int, float))"
                for x, v in ((a, av), (b, bv))
                if v is _NOT_CONST
            ]
            statically_bad = any(
                v is not _NOT_CONST and not _is_numeric(v) for v in (av, bv)
            )
            if statically_bad:
                self.line(f"_arith_error({a}, {op!r}, {b})")
                self.line(f"{out} = None")
                return
            if guards:
                with self.block(f"if {' or '.join(guards)}:"):
                    self.line(f"_arith_error({a}, {op!r}, {b})")
            if op in ("/", "%"):
                with self.block("try:"):
                    self.line(f"{out} = {a} {op} {b}")
                with self.block("except ZeroDivisionError:"):
                    self.line(f"{out} = None")
            else:
                self.line(f"{out} = {a} {op} {b}")

        return body

    # -- comparability specialization ---------------------------------------

    def comparable_cond(self, a: str, av: Any, b: str, bv: Any) -> Any:
        """Condition for ``is_comparable(a, b)``: True/False or an expr string."""
        if av is not _NOT_CONST and bv is not _NOT_CONST:
            return is_comparable(av, bv)
        if av is not _NOT_CONST:
            known, unknown = av, b
        elif bv is not _NOT_CONST:
            known, unknown = bv, a
        else:
            return f"_is_comparable({a}, {b})"
        if isinstance(known, bool):
            return f"isinstance({unknown}, bool)"
        if isinstance(known, (int, float)):
            return (
                f"(isinstance({unknown}, (int, float))"
                f" and not isinstance({unknown}, bool))"
            )
        if type(known) in (str, bytes):
            return f"type({unknown}) is {type(known).__name__}"
        return f"_is_comparable({a}, {b})"

    # -- predicates ---------------------------------------------------------

    def emit_pred(self, node: Predicate) -> str:
        """Compile a Predicate; returns the local holding its tristate."""
        kind = type(node)
        if kind is TrueP:
            out = self.new("r")
            self.line(f"{out} = True")
            return out
        if kind is FalseP:
            out = self.new("r")
            self.line(f"{out} = False")
            return out
        if kind is Comparison:
            return self._emit_comparison(node)
        if kind is And:
            return self._emit_and(node)
        if kind is Or:
            return self._emit_or(node)
        if kind is Not:
            inner = self.emit_pred(node.inner)
            out = self.new("r")
            self.line(f"{out} = None if {inner} is None else (not {inner})")
            return out
        if kind is IsNull:
            expr, ev = self.emit_expr(node.expr)
            out = self.new("r")
            if ev is not _NOT_CONST:
                result = (ev is not None) if node.negated else (ev is None)
                self.line(f"{out} = {result}")
                return out
            op = "is not" if node.negated else "is"
            self.line(f"{out} = {expr} {op} None")
            return out
        if kind is Like:
            return self._emit_like(node)
        if kind is InList:
            return self._emit_in(node)
        if kind is Between:
            return self._emit_between(node)
        raise _Unsupported(f"no compiled form for {kind.__name__}")

    def _emit_comparison(self, node: Comparison) -> str:
        a, av = self.emit_expr(node.left)
        b, bv = self.emit_expr(node.right)
        return self._comparison_core(node.op, a, av, b, bv)

    def _comparison_core(self, op: str, a: str, av: Any, b: str, bv: Any) -> str:
        out = self.new("r")
        if (av is not _NOT_CONST and av is None) or (
            bv is not _NOT_CONST and bv is None
        ):
            self.line(f"{out} = None")
            return out
        null_checks = [f"{x} is None" for x, v in ((a, av), (b, bv)) if v is _NOT_CONST]

        def body() -> None:
            cond = self.comparable_cond(a, av, b, bv)
            pyop = _PY_CMP[op]
            if op in ("=", "!="):
                mismatch = "True" if op == "!=" else "False"
                if cond is True:
                    self.line(f"{out} = True if {a} {pyop} {b} else False")
                elif cond is False:
                    self.line(f"{out} = {mismatch}")
                else:
                    with self.block(f"if {cond}:"):
                        self.line(f"{out} = True if {a} {pyop} {b} else False")
                    with self.block("else:"):
                        self.line(f"{out} = {mismatch}")
            else:
                if cond is False:
                    self.line(f"_order_error({a}, {b})")
                    self.line(f"{out} = None")
                    return
                if cond is not True:
                    with self.block(f"if not {cond}:"):
                        self.line(f"_order_error({a}, {b})")
                self.line(f"{out} = True if {a} {pyop} {b} else False")

        if null_checks:
            with self.block(f"if {' or '.join(null_checks)}:"):
                self.line(f"{out} = None")
            with self.block("else:"):
                body()
        else:
            body()
        return out

    def _emit_and(self, node: And) -> str:
        left = self.emit_pred(node.left)
        out = self.new("r")
        with self.block(f"if {left} is False:"):
            self.line(f"{out} = False")
        with self.block("else:"):
            right = self.emit_pred(node.right)
            with self.block(f"if {right} is False:"):
                self.line(f"{out} = False")
            with self.block(f"elif {left} is True and {right} is True:"):
                self.line(f"{out} = True")
            with self.block("else:"):
                self.line(f"{out} = None")
        return out

    def _emit_or(self, node: Or) -> str:
        left = self.emit_pred(node.left)
        out = self.new("r")
        with self.block(f"if {left} is True:"):
            self.line(f"{out} = True")
        with self.block("else:"):
            right = self.emit_pred(node.right)
            with self.block(f"if {right} is True:"):
                self.line(f"{out} = True")
            with self.block(f"elif {left} is False and {right} is False:"):
                self.line(f"{out} = False")
            with self.block("else:"):
                self.line(f"{out} = None")
        return out

    def _emit_like(self, node: Like) -> str:
        expr, ev = self.emit_expr(node.expr)
        out = self.new("r")
        match_fn = f"_m{len(self.ns)}"
        self.ns[match_fn] = like_regex(node.pattern).match
        # Negation only flips a match result; the interpreter returns FALSE
        # for non-string operands *before* applying NOT LIKE.
        true, false = ("False", "True") if node.negated else ("True", "False")
        if ev is not _NOT_CONST and ev is None:
            self.line(f"{out} = None")
            return out
        checks_null = ev is _NOT_CONST
        if checks_null:
            with self.block(f"if {expr} is None:"):
                self.line(f"{out} = None")
            ctx = self.block(f"elif not isinstance({expr}, str):")
        else:
            ctx = self.block(f"if not isinstance({expr}, str):")
        with ctx:
            self.line(f"{out} = False")
        with self.block("else:"):
            self.line(f"{out} = {true} if {match_fn}({expr}) else {false}")
        return out

    def _emit_in(self, node: InList) -> str:
        expr, ev = self.emit_expr(node.expr)
        out = self.new("r")
        if ev is not _NOT_CONST and ev is None:
            self.line(f"{out} = None")
            return out

        def body() -> None:
            found = self.new("f")
            saw_null = self.new("n")
            self.line(f"{found} = False")
            self.line(f"{saw_null} = False")
            with self.block("while True:"):
                for item in node.items:
                    c, cv = self.emit_expr(item)
                    if cv is not _NOT_CONST:
                        if cv is None:
                            self.line(f"{saw_null} = True")
                            continue
                        cond = self.comparable_cond(expr, ev, c, cv)
                        if cond is False:
                            continue
                        guard = f"{expr} == {c}" if cond is True else f"{cond} and {expr} == {c}"
                        with self.block(f"if {guard}:"):
                            self.line(f"{found} = True")
                            self.line("break")
                    else:
                        with self.block(f"if {c} is None:"):
                            self.line(f"{saw_null} = True")
                        cond = self.comparable_cond(expr, ev, c, cv)
                        guard = f"{expr} == {c}" if cond is True else f"{cond} and {expr} == {c}"
                        with self.block(f"elif {guard}:"):
                            self.line(f"{found} = True")
                            self.line("break")
                self.line("break")
            if node.negated:
                self.line(
                    f"{out} = False if {found} else (None if {saw_null} else True)"
                )
            else:
                self.line(
                    f"{out} = True if {found} else (None if {saw_null} else False)"
                )

        if ev is _NOT_CONST:
            with self.block(f"if {expr} is None:"):
                self.line(f"{out} = None")
            with self.block("else:"):
                body()
        else:
            body()
        return out

    def _emit_between(self, node: Between) -> str:
        # Mirrors Between.eval3: And(expr >= lo, expr <= hi), i.e. the hi
        # comparison only runs when the lo comparison is not FALSE.
        expr, ev = self.emit_expr(node.expr)
        lo, lov = self.emit_expr(node.lo)
        left = self._comparison_core(">=", expr, ev, lo, lov)
        out = self.new("r")
        with self.block(f"if {left} is False:"):
            self.line(f"{out} = False")
        with self.block("else:"):
            hi, hiv = self.emit_expr(node.hi)
            right = self._comparison_core("<=", expr, ev, hi, hiv)
            with self.block(f"if {right} is False:"):
                self.line(f"{out} = False")
            with self.block(f"elif {left} is True and {right} is True:"):
                self.line(f"{out} = True")
            with self.block("else:"):
                self.line(f"{out} = None")
        if node.negated:
            flipped = self.new("r")
            self.line(f"{flipped} = None if {out} is None else (not {out})")
            return flipped
        return out


class _Block:
    """Indentation context for one generated block."""

    def __init__(self, gen: _Codegen) -> None:
        self._gen = gen

    def __enter__(self) -> "_Block":
        self._gen.indent += 1
        return self

    def __exit__(self, *exc: Any) -> None:
        self._gen.indent -= 1


# --------------------------------------------------------------------------
# Public compilation API
# --------------------------------------------------------------------------


class CompiledPredicate:
    """A predicate lowered to a parameter-bindable Python closure.

    :meth:`bind` fixes a parameter mapping and returns the per-row
    function, which evaluates the whole predicate in one call and returns
    ``True`` / ``False`` / ``None`` (SQL TRUE / FALSE / UNKNOWN). Callers
    on hot paths test rows with ``fn(row) is True`` — no wrapper closure.
    """

    __slots__ = ("pred", "source", "_bindfn")

    def __init__(self, pred: Predicate, source: str, bindfn: Callable[..., Any]) -> None:
        self.pred = pred
        self.source = source
        self._bindfn = bindfn

    def bind(
        self, params: Mapping[str, Any] | None = None
    ) -> Callable[[Mapping[str, Any]], Any]:
        """The per-row tristate evaluator with *params* bound."""
        return self._bindfn(params or {})

    def test(self, row: Mapping[str, Any], params: Mapping[str, Any] | None = None) -> bool:
        """Interpreter-compatible convenience (compile + bind per call)."""
        return self._bindfn(params or {})(row) is True

    def eval3(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Tristate:
        """Tristate result, for differential testing against ``Predicate.eval3``."""
        result = self._bindfn(params)(row)
        if result is True:
            return Tristate.TRUE
        if result is False:
            return Tristate.FALSE
        return Tristate.UNKNOWN


def _compile(pred: Predicate) -> CompiledPredicate:
    gen = _Codegen()
    result = gen.emit_pred(pred)
    gen.line(f"return {result}")
    src_lines = ["def _bind(params):"]
    for name, pvar in gen.param_vars.items():
        src_lines.append(f"    {pvar} = params.get({name!r}, _MISSING)")
    src_lines.append("    def _row(row):")
    src_lines.append("        try:")
    src_lines.extend(gen.lines)
    src_lines.append("        except KeyError as _k:")
    src_lines.append("            _unknown_column(_k)")
    src_lines.append("    return _row")
    source = "\n".join(src_lines) + "\n"
    namespace: dict[str, Any] = {
        "_MISSING": _MISSING,
        "_is_comparable": is_comparable,
        "_unbound": _unbound,
        "_unknown_column": _unknown_column,
        "_order_error": _order_error,
        "_arith_error": _arith_error,
        **gen.ns,
    }
    code = compile(source, "<compiled-predicate>", "exec")
    exec(code, namespace)
    return CompiledPredicate(pred, source, namespace["_bind"])


def _type_fingerprint(node: Any) -> Any:
    """A hashable tag of every leaf value's type in *node*'s tree.

    Frozen-dataclass equality inherits Python's cross-type ``==``
    (``True == 1 == 1.0``, with matching hashes), so ``flag = TRUE`` and
    ``flag = 1`` are *equal* predicates — yet their compiled forms differ:
    comparability guards are specialized against the literal's type. Every
    cache keyed by predicate equality must therefore also key on this
    fingerprint, or one predicate's compiled form would serve the other's.
    """
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return tuple(
            _type_fingerprint(getattr(node, f.name))
            for f in dataclasses.fields(node)
        )
    if isinstance(node, (tuple, list)):
        return tuple(_type_fingerprint(item) for item in node)
    return type(node).__name__


@lru_cache(maxsize=512)
def _compile_cached(pred: Predicate, _fingerprint: Any) -> CompiledPredicate:
    return _compile(pred)


def compile_predicate(pred: Predicate) -> CompiledPredicate | None:
    """Compile *pred* into a :class:`CompiledPredicate`, or None.

    Returns ``None`` when the tree contains a node with no compiled form
    (e.g. a user-defined Predicate subclass overriding ``eval3``) — the
    caller then falls back to the tree-walking interpreter. Results are
    cached per structurally-equal predicate (plus literal-type fingerprint);
    predicates holding unhashable literal values are compiled fresh each
    call.
    """
    try:
        return _compile_cached(pred, _type_fingerprint(pred))
    except TypeError:  # unhashable literal somewhere in the tree
        try:
            return _compile(pred)
        except _Unsupported:
            return None
    except _Unsupported:
        return None


def clear_compile_cache() -> None:
    """Drop all cached compiled predicates (benchmarks measure cold paths)."""
    _compile_cached.cache_clear()
    _compile_assignments_cached.cache_clear()


def compile_cache_info():
    """``functools.lru_cache`` statistics for the compile cache."""
    return _compile_cached.cache_info()


def matcher(
    pred: Predicate, params: Mapping[str, Any] | None = None
) -> Callable[[Mapping[str, Any]], bool]:
    """A bound boolean row matcher for *pred* (compiled when possible).

    Convenience for call sites that filter rows outside :class:`Table`
    (e.g. the conflict analyzer in :mod:`repro.core.explain`): returns a
    callable ``row -> bool`` equivalent to ``pred.test(row, params)``.
    """
    bound = params or {}
    compiled = compile_predicate(pred)
    if compiled is None:
        return lambda row: pred.test(row, bound)
    fn = compiled.bind(bound)
    return lambda row: fn(row) is True


# --------------------------------------------------------------------------
# Assignment (UPDATE SET) compilation
# --------------------------------------------------------------------------


class CompiledAssignments:
    """An UPDATE SET clause lowered to a parameter-bindable closure.

    Mirrors :class:`CompiledPredicate`: :meth:`bind` fixes a parameter
    mapping and returns a per-row function producing a tuple of values
    aligned with ``clause.columns()`` — one call evaluates every SET
    expression with no per-node dispatch.
    """

    __slots__ = ("clause", "source", "_bindfn")

    def __init__(self, clause: SetClause, source: str, bindfn: Callable[..., Any]) -> None:
        self.clause = clause
        self.source = source
        self._bindfn = bindfn

    def bind(
        self, params: Mapping[str, Any] | None = None
    ) -> Callable[[Mapping[str, Any]], tuple]:
        """The per-row value evaluator with *params* bound."""
        return self._bindfn(params or {})


def _compile_assignments(clause: SetClause) -> CompiledAssignments:
    gen = _Codegen()
    results = [gen.emit_expr(item.expr)[0] for item in clause.items]
    gen.line(f"return ({', '.join(results)},)")
    src_lines = ["def _bind(params):"]
    for name, pvar in gen.param_vars.items():
        src_lines.append(f"    {pvar} = params.get({name!r}, _MISSING)")
    src_lines.append("    def _row(row):")
    src_lines.append("        try:")
    src_lines.extend(gen.lines)
    src_lines.append("        except KeyError as _k:")
    src_lines.append("            _unknown_column(_k)")
    src_lines.append("    return _row")
    source = "\n".join(src_lines) + "\n"
    namespace: dict[str, Any] = {
        "_MISSING": _MISSING,
        "_is_comparable": is_comparable,
        "_unbound": _unbound,
        "_unknown_column": _unknown_column,
        "_order_error": _order_error,
        "_arith_error": _arith_error,
        **gen.ns,
    }
    code = compile(source, "<compiled-assignments>", "exec")
    exec(code, namespace)
    return CompiledAssignments(clause, source, namespace["_bind"])


@lru_cache(maxsize=512)
def _compile_assignments_cached(
    clause: SetClause, _fingerprint: Any
) -> CompiledAssignments:
    return _compile_assignments(clause)


def compile_assignments(clause: SetClause) -> CompiledAssignments | None:
    """Compile a SET clause into a :class:`CompiledAssignments`, or None.

    Same contract as :func:`compile_predicate`: ``None`` means an
    expression node has no compiled form and the caller falls back to
    :meth:`SetClause.eval_row`. Cached per structurally-equal clause plus
    literal-type fingerprint.
    """
    try:
        return _compile_assignments_cached(clause, _type_fingerprint(clause))
    except TypeError:  # unhashable literal somewhere in the tree
        try:
            return _compile_assignments(clause)
        except _Unsupported:
            return None
    except _Unsupported:
        return None


# --------------------------------------------------------------------------
# Plan cache
# --------------------------------------------------------------------------


class PlanEntry:
    """One cached plan: access-path template + compiled predicate.

    Also reused for UPDATE SET clauses, where ``template`` is ``None`` and
    ``compiled`` holds a :class:`CompiledAssignments` (or ``None`` for the
    interpreter fallback) — a :class:`SetClause` key can never collide with
    a :class:`Predicate` key, so both share one cache and one generation.
    """

    __slots__ = ("template", "compiled", "generation")

    def __init__(self, template: Any, compiled: Any, generation: int) -> None:
        self.template = template
        self.compiled = compiled
        self.generation = generation


class PlanCache:
    """Keyed plan cache: (table, predicate, schema generation) → plan.

    One instance is shared by every table of a
    :class:`~repro.storage.database.Database`. Entries are stamped with
    the cache's **schema generation**; any DDL — table create/drop, index
    create/drop, or an :mod:`repro.storage.evolve` change — bumps the
    generation, instantly invalidating every cached plan (checked on
    lookup, so stale access paths can never execute).

    Thread-safety (PR 4 multi-worker executor): lookups are lock-free —
    a plain dict read is atomic under the GIL, and an entry read
    concurrently with :meth:`bump` is rejected by its generation stamp.
    Stores and bumps take a narrow mutex. Hit/miss counters are advisory
    (racy by design; they feed benchmarks, not control flow).
    """

    MAXSIZE = 1024

    def __init__(self) -> None:
        # Keys are (table, Predicate | SetClause, type fingerprint).
        self._entries: dict[tuple[str, Any, Any], PlanEntry] = {}
        self._lock = threading.Lock()
        self.generation = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, table: str, pred: Predicate | SetClause) -> PlanEntry | None:
        # The fingerprint keeps ==-equal predicates with differently-typed
        # literals (flag = TRUE vs flag = 1) from sharing a compiled form.
        try:
            entry = self._entries.get((table, pred, _type_fingerprint(pred)))
        except TypeError:  # unhashable predicate: never cached
            self.misses += 1
            return None
        if entry is not None and entry.generation == self.generation:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        table: str,
        pred: Predicate | SetClause,
        template: Any,
        compiled: Any,
    ) -> PlanEntry:
        entry = PlanEntry(template, compiled, self.generation)
        try:
            with self._lock:
                if len(self._entries) >= self.MAXSIZE:
                    # FIFO eviction: dicts iterate in insertion order.
                    self._entries.pop(next(iter(self._entries)), None)
                self._entries[(table, pred, _type_fingerprint(pred))] = entry
        except TypeError:
            pass  # unhashable predicate: usable, just not cached
        return entry

    def bump(self) -> int:
        """Invalidate every plan (schema generation changed); new generation."""
        with self._lock:
            self.generation += 1
            self._entries.clear()
            return self.generation

    def __len__(self) -> int:
        return len(self._entries)
