"""Write-ahead logging: O(delta) durability for snapshot-backed databases.

:func:`~repro.storage.persist.save_database` rewrites every row of every
table per save — an O(database) cost per command that the ROADMAP's
"as fast as the hardware allows" target cannot afford. This module adds
the standard journal/checkpoint/recovery shape instead:

* **Redo log** — an append-only file of length+CRC32-framed JSON records,
  one record per batched statement. The log is a *redo mirror* of the
  :class:`~repro.storage.database.Database` undo log: wherever the engine
  logs an undo closure, it also hands the attached WAL a redo record
  describing the physical change (post-normalization rows, so replay is
  deterministic).
* **Group commit** — statement records buffer in memory per transaction
  and hit the file only when the top-level transaction commits, as one
  commit unit terminated by a commit frame. The fsync policy is pluggable:
  ``always`` (fsync per commit — nothing acked is ever lost), ``batch``
  (fsync every ``batch_commits`` commits and on close), ``never`` (leave
  it to the OS).
* **Checkpoint** — snapshot the database via the existing
  :mod:`~repro.storage.persist` format (written to a temp file, fsynced,
  atomically renamed), then truncate the log. Recovery cost is bounded by
  the log written since the last checkpoint, not by history.
* **Recovery** — load the last checkpoint snapshot and replay the log's
  commit units in order. A torn tail (an incomplete final frame, a
  CRC-failing final frame, or trailing statement records with no commit
  frame) is the expected crash signature and is discarded; a CRC failure
  *before* well-formed frames is real corruption and raises
  :class:`WalCorruptionError`.

Framing: each frame is ``<u32 length LE> <u32 crc32 LE> <payload>`` where
``payload`` is UTF-8 JSON and the CRC covers the payload bytes only.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.persist import (
    _decode_value,
    _encode_value,
    _schema_from_json,
    _schema_to_json,
    save_database,
)
from repro.storage.schema import Schema

__all__ = [
    "WalCorruptionError",
    "WriteAheadLog",
    "WalDatabase",
    "open_in_place",
    "recover_database",
    "replay_into",
    "default_wal_path",
    "FSYNC_POLICIES",
]

_FRAME_HEADER = struct.Struct("<II")  # payload length, CRC32(payload)
_WAL_VERSION = 1
FSYNC_POLICIES = ("always", "batch", "never")

# Frame types.
_T_HEADER = "header"
_T_STMT = "stmt"
_T_COMMIT = "commit"


class WalCorruptionError(StorageError):
    """The log is damaged somewhere other than its torn tail."""


# -- value (de)serialization ---------------------------------------------------------


def _encode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: _encode_value(v) for k, v in row.items()}


def _decode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: _decode_value(v) for k, v in row.items()}


def _encode_record(record: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe copy of a redo record (BLOB values hex-wrapped)."""
    out: dict[str, Any] = {"t": _T_STMT, "op": record["op"]}
    if "table" in record:
        out["table"] = record["table"]
    if "rows" in record:  # insert: list of full rows
        out["rows"] = [_encode_row(r) for r in record["rows"]]
    if "updates" in record:  # update: list of [pk, full new row]
        out["updates"] = [
            [_encode_value(pk), _encode_row(new)] for pk, new in record["updates"]
        ]
    if "pks" in record:  # delete: list of pks
        out["pks"] = [_encode_value(pk) for pk in record["pks"]]
    if "schema" in record:  # create_table
        out["schema"] = _schema_to_json(record["schema"])
    if "name" in record:  # drop_table
        out["name"] = record["name"]
    return out


# -- frame IO ------------------------------------------------------------------------


def _write_frame(handle: BinaryIO, payload: dict[str, Any]) -> int:
    """Append one frame; returns the number of bytes written."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    handle.write(_FRAME_HEADER.pack(len(body), zlib.crc32(body)))
    handle.write(body)
    return _FRAME_HEADER.size + len(body)


def _iter_frames(blob: bytes, path: Path) -> Iterator[dict[str, Any]]:
    """Yield decoded frames; stop silently at a torn tail, raise mid-log.

    The tail is torn when the final frame is incomplete (header or payload
    cut short by a crash) or fails its CRC; either way nothing well-formed
    follows it, so recovery discards it. A CRC failure *followed by* more
    parseable frames means the damage is not a crash artifact — raise.
    """
    offset = 0
    end = len(blob)
    while offset < end:
        if offset + _FRAME_HEADER.size > end:
            return  # torn: header cut short
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        if start + length > end:
            return  # torn: payload cut short
        body = blob[start : start + length]
        if zlib.crc32(body) != crc:
            # Damaged frame. Torn tail only if nothing well-formed follows.
            if _has_valid_frame(blob, start + length):
                raise WalCorruptionError(
                    f"{path}: CRC mismatch at byte {offset} with valid frames after it"
                )
            return
        try:
            yield json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if _has_valid_frame(blob, start + length):
                raise WalCorruptionError(
                    f"{path}: undecodable frame at byte {offset}: {exc}"
                ) from None
            return
        offset = start + length


def _has_valid_frame(blob: bytes, offset: int) -> bool:
    """Does a complete CRC-passing frame start at *offset*?"""
    if offset + _FRAME_HEADER.size > len(blob):
        return False
    length, crc = _FRAME_HEADER.unpack_from(blob, offset)
    start = offset + _FRAME_HEADER.size
    if start + length > len(blob):
        return False
    return zlib.crc32(blob[start : start + length]) == crc


# -- the log -------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only redo log with buffered group commit.

    Implements the :class:`~repro.storage.database.Database` redo-hook
    protocol (``on_statement`` / ``on_begin`` / ``on_commit`` /
    ``on_rollback``), buffering statement records per transaction level —
    mirroring the undo stack — and appending a commit unit per top-level
    commit. Statements executed outside any transaction auto-commit as a
    unit of their own.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        batch_commits: int = 8,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.batch_commits = max(1, batch_commits)
        # Transaction-level buffers, mirroring Database._undo_stack.
        self._tx_stack: list[list[dict[str, Any]]] = []
        self._unsynced_commits = 0
        self.bytes_written = 0
        self.commits_appended = 0
        self.syncs = 0
        existing = self.path.stat().st_size if self.path.exists() else 0
        self._handle: BinaryIO = self.path.open("ab")
        if existing == 0:
            _write_frame(self._handle, {"t": _T_HEADER, "version": _WAL_VERSION})
            self._handle.flush()

    # -- redo-hook protocol ----------------------------------------------------------

    def on_begin(self) -> None:
        self._tx_stack.append([])

    def on_commit(self) -> None:
        records = self._tx_stack.pop()
        if self._tx_stack:
            self._tx_stack[-1].extend(records)
        elif records:
            self._append_unit(records)

    def on_rollback(self) -> None:
        self._tx_stack.pop()

    def on_statement(self, record: dict[str, Any]) -> None:
        if self._tx_stack:
            self._tx_stack[-1].append(_encode_record(record))
        else:
            self._append_unit([_encode_record(record)])

    def on_ddl(self, record: dict[str, Any]) -> None:
        """DDL commits immediately, even mid-transaction (DDL is not undone
        by rollback, so it must not be discarded with a rolled-back buffer)."""
        self._append_unit([_encode_record(record)])

    # -- appending ---------------------------------------------------------------------

    def _append_unit(self, records: list[dict[str, Any]]) -> None:
        if self._handle.closed:
            raise StorageError(f"{self.path}: write-ahead log is closed")
        written = 0
        for record in records:
            written += _write_frame(self._handle, record)
        written += _write_frame(self._handle, {"t": _T_COMMIT, "n": len(records)})
        self.bytes_written += written
        self.commits_appended += 1
        self._handle.flush()
        if self.fsync == "always":
            self._fsync()
        elif self.fsync == "batch":
            self._unsynced_commits += 1
            if self._unsynced_commits >= self.batch_commits:
                self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._unsynced_commits = 0

    def sync(self) -> None:
        """Flush buffers and force bytes to stable storage."""
        if not self._handle.closed:
            self._handle.flush()
            self._fsync()

    def close(self) -> None:
        """Flush (and, unless ``fsync='never'``, sync) then close the file."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self.fsync != "never" and self._unsynced_commits:
            self._fsync()
        self._handle.close()

    @property
    def in_transaction(self) -> bool:
        return bool(self._tx_stack)

    def truncate(self) -> None:
        """Reset the log to an empty (header-only) file, durably."""
        self._handle.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("wb") as handle:
            _write_frame(handle, {"t": _T_HEADER, "version": _WAL_VERSION})
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self._handle = self.path.open("ab")
        self._unsynced_commits = 0

    # -- reading -----------------------------------------------------------------------

    @staticmethod
    def read_units(path: str | Path) -> list[list[dict[str, Any]]]:
        """Committed units in *path*, oldest first, tolerating a torn tail.

        Raises :class:`WalCorruptionError` for mid-log damage or a missing
        or wrong-version header on a non-empty log.
        """
        path = Path(path)
        blob = path.read_bytes()
        if not blob:
            return []
        units: list[list[dict[str, Any]]] = []
        pending: list[dict[str, Any]] = []
        saw_header = False
        for frame in _iter_frames(blob, path):
            kind = frame.get("t")
            if not saw_header:
                if kind != _T_HEADER or frame.get("version") != _WAL_VERSION:
                    raise WalCorruptionError(f"{path}: not a v{_WAL_VERSION} WAL")
                saw_header = True
            elif kind == _T_STMT:
                pending.append(frame)
            elif kind == _T_COMMIT:
                units.append(pending)
                pending = []
            else:
                raise WalCorruptionError(f"{path}: unexpected frame {kind!r}")
        # A trailing run of statement frames without a commit frame is an
        # unacked transaction cut off by the crash: discard it.
        return units


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- replay --------------------------------------------------------------------------


def replay_into(db: Database, units: list[list[dict[str, Any]]]) -> int:
    """Apply committed redo units to *db*; returns statements replayed.

    Records are applied at the physical table layer (FK enforcement and
    cascades already ran before the records were written; replaying them
    through the statement API would double-apply cascade effects). Integer
    primary-key watermarks are advanced so id allocation never hands out a
    replayed id again.
    """
    applied = 0
    for unit in units:
        for record in unit:
            _apply_record(db, record)
            applied += 1
    return applied


def _apply_record(db: Database, record: dict[str, Any]) -> None:
    op = record.get("op")
    try:
        if op == "insert":
            table = db.table(record["table"])
            rows = [_decode_row(r) for r in record["rows"]]
            table.insert_rows(rows)
            _bump_watermark(db, record["table"], (r[table.schema.primary_key] for r in rows))
        elif op == "update":
            table = db.table(record["table"])
            pk_col = table.schema.primary_key
            new_pks = []
            for pk, new in record["updates"]:
                _old, stored = table.update_by_pk(_decode_value(pk), _decode_row(new))
                new_pks.append(stored[pk_col])
            _bump_watermark(db, record["table"], new_pks)
        elif op == "delete":
            db.table(record["table"]).delete_pks(
                [_decode_value(pk) for pk in record["pks"]]
            )
        elif op == "create_table":
            db.create_table(_schema_from_json(record["schema"]))
        elif op == "drop_table":
            db.drop_table(record["name"])
        else:
            raise WalCorruptionError(f"unknown redo op {op!r}")
    except WalCorruptionError:
        raise
    except StorageError as exc:
        raise WalCorruptionError(f"replaying {op} on {record.get('table')!r}: {exc}") from exc


def _bump_watermark(db: Database, table: str, pks: Any) -> None:
    top = max((pk for pk in pks if isinstance(pk, int)), default=0)
    if top > db._id_watermark.get(table, 0):
        db._id_watermark[table] = top


# -- recovery / checkpoint / open ----------------------------------------------------


def default_wal_path(snapshot_path: str | Path) -> Path:
    path = Path(snapshot_path)
    return path.with_name(path.name + ".wal")


def recover_database(
    snapshot_path: str | Path,
    wal_path: str | Path | None = None,
    verify: bool = True,
) -> Database:
    """Rebuild the database: last checkpoint snapshot + redo-log replay.

    Missing snapshot means the log started from an empty database (DDL
    records bootstrap the schema); a missing log means the snapshot alone
    is current. A torn log tail is discarded; mid-log corruption raises.
    """
    from repro.storage.persist import load_database

    snapshot_path = Path(snapshot_path)
    wal_path = Path(wal_path) if wal_path is not None else default_wal_path(snapshot_path)
    if snapshot_path.exists():
        db = load_database(snapshot_path, verify=False)
    else:
        db = Database(Schema())
    if wal_path.exists():
        replay_into(db, WriteAheadLog.read_units(wal_path))
    if verify:
        db.assert_integrity()
    return db


class WalDatabase:
    """A database opened in place: snapshot + live write-ahead log.

    Opening recovers the committed state, attaches the log to the
    database's redo hook, and from then on every committed statement costs
    O(changes) in the log instead of an O(database) snapshot rewrite.
    Call :meth:`checkpoint` to fold the log back into the snapshot, and
    :meth:`close` when done (flushes per the fsync policy).
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        wal_path: str | Path | None = None,
        fsync: str = "batch",
        batch_commits: int = 8,
        verify: bool = True,
    ) -> None:
        self.snapshot_path = Path(snapshot_path)
        self.wal_path = (
            Path(wal_path) if wal_path is not None else default_wal_path(snapshot_path)
        )
        self.db = recover_database(self.snapshot_path, self.wal_path, verify=verify)
        self.wal = WriteAheadLog(self.wal_path, fsync=fsync, batch_commits=batch_commits)
        self.db.set_redo_hook(self.wal)

    def checkpoint(self) -> None:
        """Durably snapshot the current state, then truncate the log."""
        if self.db.in_transaction:
            raise StorageError("cannot checkpoint inside an open transaction")
        self.wal.sync()
        tmp = self.snapshot_path.with_suffix(self.snapshot_path.suffix + ".tmp")
        save_database(self.db, tmp)
        with tmp.open("rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        _fsync_dir(self.snapshot_path.parent)
        self.wal.truncate()

    def close(self) -> None:
        self.db.set_redo_hook(None)
        self.wal.close()

    def __enter__(self) -> "WalDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def open_in_place(
    snapshot_path: str | Path,
    wal_path: str | Path | None = None,
    fsync: str = "batch",
    batch_commits: int = 8,
    verify: bool = True,
) -> WalDatabase:
    """Open a snapshot for O(delta) in-place operation (see :class:`WalDatabase`)."""
    return WalDatabase(
        snapshot_path,
        wal_path,
        fsync=fsync,
        batch_commits=batch_commits,
        verify=verify,
    )
