"""Write-ahead logging: O(delta) durability for snapshot-backed databases.

:func:`~repro.storage.persist.save_database` rewrites every row of every
table per save — an O(database) cost per command that the ROADMAP's
"as fast as the hardware allows" target cannot afford. This module adds
the standard journal/checkpoint/recovery shape instead:

* **Redo log** — an append-only file of length+CRC32-framed JSON records,
  one record per batched statement. The log is a *redo mirror* of the
  :class:`~repro.storage.database.Database` undo log: wherever the engine
  logs an undo closure, it also hands the attached WAL a redo record
  describing the physical change (post-normalization rows, so replay is
  deterministic).
* **Group commit** — statement records buffer in memory per transaction
  and hit the file only when the top-level transaction commits, as one
  commit unit terminated by a commit frame. The fsync policy is pluggable:
  ``always`` (fsync per commit — nothing acked is ever lost), ``batch``
  (fsync every ``batch_commits`` commits and on close), ``never`` (leave
  it to the OS).
* **Checkpoint** — snapshot the database via the existing
  :mod:`~repro.storage.persist` format (written to a temp file, fsynced,
  atomically renamed), then truncate the log. Recovery cost is bounded by
  the log written since the last checkpoint, not by history. Snapshot and
  log each carry a *checkpoint generation* stamp; the snapshot (with the
  generation bumped) is installed first, so a crash between the two steps
  leaves a log whose generation predates the snapshot — recovery sees the
  stale stamp and skips the replay instead of double-applying changes
  already folded in.
* **Recovery** — load the last checkpoint snapshot and replay the log's
  commit units in order. A torn tail (an incomplete final frame, a
  CRC-failing final frame, or trailing statement records with no commit
  frame) is the expected crash signature and is discarded; a CRC failure
  *before* well-formed frames is real corruption and raises
  :class:`WalCorruptionError`. Opening a log for *writing* physically
  truncates the discarded tail first, so new commit units land after the
  last sealed frame rather than after damaged bytes.

Framing: each frame is ``<u32 length LE> <u32 crc32 LE> <payload>`` where
``payload`` is UTF-8 JSON and the CRC covers the payload bytes only.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.errors import StorageError
from repro.obs.trace import TRACER as _TRACER
from repro.simtest.clock import resolve_clock
from repro.storage import fsio
from repro.storage.database import Database
from repro.storage.persist import (
    _decode_value,
    _encode_value,
    _fsync_dir,
    _schema_from_json,
    _schema_to_json,
    read_snapshot_generation,
    save_database_atomic,
)
from repro.storage.schema import Schema

__all__ = [
    "WalCorruptionError",
    "WriteAheadLog",
    "WalDatabase",
    "open_in_place",
    "recover_database",
    "replay_into",
    "default_wal_path",
    "FSYNC_POLICIES",
]

_FRAME_HEADER = struct.Struct("<II")  # payload length, CRC32(payload)
_WAL_VERSION = 1
# Record-format version, stamped in the header as "fmt" (the framing
# "version" above is unchanged). fmt 2 added compact delta update records
# ("deltas": pk-keyed changed-column maps) alongside the fmt-1 full-row
# "updates" shape. Readers accept any fmt <= _WAL_FORMAT — a header with
# no "fmt" key is fmt 1 — and refuse newer logs they cannot interpret.
_WAL_FORMAT = 2
FSYNC_POLICIES = ("always", "batch", "never")

# Frame types.
_T_HEADER = "header"
_T_STMT = "stmt"
_T_COMMIT = "commit"

# Redo ops that survive rollback (mirroring the undo log's DDL rule).
_DDL_OPS = ("create_table", "drop_table")


class WalCorruptionError(StorageError):
    """The log is damaged somewhere other than its torn tail."""


# -- value (de)serialization ---------------------------------------------------------


def _encode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: _encode_value(v) for k, v in row.items()}


def _decode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: _decode_value(v) for k, v in row.items()}


def _encode_record(record: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe copy of a redo record (BLOB values hex-wrapped)."""
    out: dict[str, Any] = {"t": _T_STMT, "op": record["op"]}
    if "table" in record:
        out["table"] = record["table"]
    if "rows" in record:  # insert: list of full rows
        out["rows"] = [_encode_row(r) for r in record["rows"]]
    if "updates" in record:  # update (fmt 1 shape): list of [pk, full new row]
        out["updates"] = [
            [_encode_value(pk), _encode_row(new)] for pk, new in record["updates"]
        ]
    if "deltas" in record:  # update (fmt 2): list of [pk, changed-column map]
        out["deltas"] = [
            [_encode_value(pk), _encode_row(delta)] for pk, delta in record["deltas"]
        ]
    if "set" in record:  # update (fmt 2): one shared delta for many pks
        out["set"] = _encode_row(record["set"])
        out["set_pks"] = [_encode_value(pk) for pk in record["set_pks"]]
    if "pks" in record:  # delete: list of pks
        out["pks"] = [_encode_value(pk) for pk in record["pks"]]
    if "schema" in record:  # create_table
        out["schema"] = _schema_to_json(record["schema"])
    if "name" in record:  # drop_table
        out["name"] = record["name"]
    return out


# -- frame IO ------------------------------------------------------------------------


def _write_frame(handle: BinaryIO, payload: dict[str, Any]) -> int:
    """Append one frame; returns the number of bytes written."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    handle.write(_FRAME_HEADER.pack(len(body), zlib.crc32(body)))
    handle.write(body)
    return _FRAME_HEADER.size + len(body)


def _iter_frames(blob: bytes, path: Path) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(end_offset, frame)``; stop silently at a torn tail, raise mid-log.

    The tail is torn when the final frame is incomplete (header or payload
    cut short by a crash) or fails its CRC; either way nothing well-formed
    follows it, so recovery discards it. A CRC failure *followed by* more
    parseable frames means the damage is not a crash artifact — raise.
    """
    offset = 0
    end = len(blob)
    while offset < end:
        if offset + _FRAME_HEADER.size > end:
            return  # torn: header cut short
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        if start + length > end:
            return  # torn: payload cut short
        body = blob[start : start + length]
        if zlib.crc32(body) != crc:
            # Damaged frame. Torn tail only if nothing well-formed follows.
            if _has_valid_frame(blob, start + length):
                raise WalCorruptionError(
                    f"{path}: CRC mismatch at byte {offset} with valid frames after it"
                )
            return
        try:
            yield start + length, json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if _has_valid_frame(blob, start + length):
                raise WalCorruptionError(
                    f"{path}: undecodable frame at byte {offset}: {exc}"
                ) from None
            return
        offset = start + length


def _scan_log(blob: bytes, path: Path) -> tuple[int, list[list[dict[str, Any]]], int]:
    """Parse a log: ``(generation, committed units, sealed-prefix length)``.

    The sealed-prefix length is the byte offset just past the last frame
    that is *durably meaningful* — the header or a commit frame. Everything
    after it (a torn frame, or statement frames never sealed by a commit)
    is crash debris that a writer must trim before appending.

    Raises :class:`WalCorruptionError` for mid-log damage or a first frame
    that is not a valid header; an empty or headerless-torn blob scans as
    ``(0, [], 0)``.
    """
    units: list[list[dict[str, Any]]] = []
    pending: list[dict[str, Any]] = []
    generation = 0
    sealed_end = 0
    saw_header = False
    for end, frame in _iter_frames(blob, path):
        kind = frame.get("t")
        if not saw_header:
            if kind != _T_HEADER or frame.get("version") != _WAL_VERSION:
                raise WalCorruptionError(f"{path}: not a v{_WAL_VERSION} WAL")
            fmt = int(frame.get("fmt", 1))
            if fmt > _WAL_FORMAT:
                raise WalCorruptionError(
                    f"{path}: record format {fmt} is newer than the supported "
                    f"format {_WAL_FORMAT}"
                )
            generation = int(frame.get("gen", 0))
            saw_header = True
            sealed_end = end
        elif kind == _T_STMT:
            pending.append(frame)
        elif kind == _T_COMMIT:
            units.append(pending)
            pending = []
            sealed_end = end
        else:
            raise WalCorruptionError(f"{path}: unexpected frame {kind!r}")
    # A trailing run of statement frames without a commit frame is an
    # unacked transaction cut off by the crash: discard it.
    return generation, units, sealed_end


def _has_valid_frame(blob: bytes, offset: int) -> bool:
    """Does a complete CRC-passing frame start at *offset*?"""
    if offset + _FRAME_HEADER.size > len(blob):
        return False
    length, crc = _FRAME_HEADER.unpack_from(blob, offset)
    start = offset + _FRAME_HEADER.size
    if start + length > len(blob):
        return False
    return zlib.crc32(blob[start : start + length]) == crc


# -- the log -------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only redo log with buffered group commit.

    Implements the :class:`~repro.storage.database.Database` redo-hook
    protocol (``on_statement`` / ``on_begin`` / ``on_commit`` /
    ``on_rollback``), buffering statement records per transaction level —
    mirroring the undo stack — and appending a commit unit per top-level
    commit. Statements executed outside any transaction auto-commit as a
    unit of their own.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        batch_commits: int = 8,
        generation: int | None = None,
        sync_delay: float = 0.0,
        clock: Any = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = fsio.as_path(path)
        self._clock = resolve_clock(clock)
        self.fsync = fsync
        self.batch_commits = max(1, batch_commits)
        # Transaction-level buffers mirror Database._undo_stack and, like
        # it, live per thread — each service worker commits its own units.
        self._tls = threading.local()
        # Appends are serialized; commit units are numbered as appended
        # and leader/follower group commit tracks the durable frontier:
        # one committer fsyncs on behalf of everyone appended before it.
        self._append_lock = threading.Lock()
        self._sync_cond = threading.Condition()
        self._appended_seq = 0
        self._synced_seq = 0
        self._sync_leader = False
        # Artificial pre-fsync latency for the group-commit leader. CI
        # filesystems ack fsync from the page cache in ~0.1ms, which hides
        # exactly the cost group commit exists to amortize; benchmarks set
        # a disk-class value (1-2ms) to measure the sharing honestly.
        self.sync_delay = sync_delay
        self.bytes_written = 0
        self.commits_appended = 0
        self.syncs = 0
        # Attach for writing. An existing log may end in crash debris — a
        # torn frame or statement frames never sealed by a commit — which
        # recovery discards *logically*; appending after it would bury new
        # commits behind bytes every future recovery stops at (or worse,
        # let a new commit frame seal stale unacked statements). So the
        # debris is physically trimmed before the first append. A log whose
        # generation predates *generation* (a checkpoint installed its
        # snapshot but crashed before truncating) is superseded wholesale;
        # one from a *newer* snapshot than the caller has means the base it
        # was logged against is gone — refuse.
        blob = self.path.read_bytes() if self.path.exists() else b""
        log_gen, _units, sealed_end = _scan_log(blob, self.path)
        if generation is None:
            generation = log_gen
        elif log_gen > generation:
            raise WalCorruptionError(
                f"{self.path}: log generation {log_gen} is newer than the "
                f"snapshot's {generation}; its base snapshot is missing"
            )
        self.generation = generation
        if blob and log_gen < generation:
            _write_fresh_log(self.path, generation)
            self._handle: BinaryIO = self.path.open("ab")
        elif sealed_end > 0:
            self._handle = self.path.open("ab")
            self._trim_crash_debris(blob, sealed_end)
        else:
            # Missing, empty, or so torn not even the header survived.
            self._handle = self.path.open("ab")
            if blob:
                self._handle.truncate(0)
            _write_frame(
                self._handle,
                {"t": _T_HEADER, "version": _WAL_VERSION,
                 "fmt": _WAL_FORMAT, "gen": generation},
            )
            self._handle.flush()

    def _trim_crash_debris(self, blob: bytes, sealed_end: int) -> None:
        """Physically drop everything past the sealed prefix before the
        first append. A hook method so the simulation harness can
        re-introduce the pre-fix behavior (appending after a torn tail)
        and prove the model-checking oracle catches it.
        """
        if sealed_end < len(blob):
            self._handle.truncate(sealed_end)
            self._handle.flush()
            fsio.fsync_handle(self._handle)

    @property
    def defer_sync(self) -> bool:
        """Whether *this thread's* commits skip the policy fsync.

        Thread-scoped by design: a service worker sets it at thread start,
        releases its table locks at commit, and then calls
        :meth:`commit_barrier` so one leader fsync covers many workers.
        Any other thread committing through the same log never calls the
        barrier, so it must keep the configured ``fsync`` policy — a
        process-wide flag would silently strip its durability while the
        service runs.
        """
        return getattr(self._tls, "defer_sync", False)

    @defer_sync.setter
    def defer_sync(self, value: bool) -> None:
        self._tls.defer_sync = bool(value)

    @property
    def _tx_stack(self) -> list[list[dict[str, Any]]]:
        """This thread's transaction-level record buffers."""
        try:
            return self._tls.tx_stack
        except AttributeError:
            stack = self._tls.tx_stack = []
            return stack

    @property
    def _unsynced_commits(self) -> int:
        return self._appended_seq - self._synced_seq

    # -- observability -----------------------------------------------------------------

    def register_metrics(self, registry: Any) -> None:
        """Expose WAL counters as ``wal.*`` gauges in *registry*.

        Called by :meth:`Database.set_redo_hook` when the log is attached;
        the gauges read the live attributes lazily, so the append path
        pays nothing for being observable.
        """
        registry.gauge("wal.appends", lambda: self.commits_appended)
        registry.gauge("wal.fsyncs", lambda: self.syncs)
        registry.gauge("wal.bytes_written", lambda: self.bytes_written)
        registry.gauge("wal.appended_seq", lambda: self._appended_seq)
        registry.gauge("wal.synced_seq", lambda: self._synced_seq)
        registry.gauge("wal.unsynced_commits", lambda: self._unsynced_commits)

    # -- redo-hook protocol ----------------------------------------------------------

    def on_begin(self) -> None:
        self._tx_stack.append([])

    def pending_records(self) -> int:
        """Records buffered by this thread's open transaction (0 outside one)."""
        return sum(len(level) for level in self._tx_stack)

    def tag_transaction(self, marker: dict[str, Any]) -> None:
        """Prepend *marker* to this thread's open transaction.

        The marker is written as the unit's first record at commit. The
        sharded group commit uses it to stamp every participating shard's
        unit with one transaction id, so recovery can tell a fully
        durable cross-shard transaction from one torn across logs.
        """
        stack = self._tx_stack
        if not stack:
            raise StorageError("tag_transaction outside a transaction")
        stack[0].insert(0, dict(marker))

    def on_commit(self) -> None:
        records = self._tx_stack.pop()
        if self._tx_stack:
            self._tx_stack[-1].extend(records)
        elif records:
            self._append_unit(records)

    def on_rollback(self) -> None:
        # DML in the rolled-back level is discarded, but DDL is not undone
        # by rollback, so its records survive — in order, at the point the
        # rollback made them permanent.
        ddl = [r for r in self._tx_stack.pop() if r["op"] in _DDL_OPS]
        if not ddl:
            return
        if self._tx_stack:
            self._tx_stack[-1].extend(ddl)
        else:
            self._append_unit(ddl)

    def on_statement(self, record: dict[str, Any]) -> None:
        if self._tx_stack:
            self._tx_stack[-1].append(_encode_record(record))
        else:
            self._append_unit([_encode_record(record)])

    def on_ddl(self, record: dict[str, Any]) -> None:
        """DDL buffers in statement order mid-transaction (a transaction
        that fills a table and then drops it must not replay as drop-then-
        insert); :meth:`on_rollback` retains it when the DML is discarded.
        Outside a transaction it commits as a unit of its own."""
        if self._tx_stack:
            self._tx_stack[-1].append(_encode_record(record))
        else:
            self._append_unit([_encode_record(record)])

    # -- appending ---------------------------------------------------------------------

    def _append_unit(self, records: list[dict[str, Any]]) -> None:
        if self._handle.closed:
            raise StorageError(f"{self.path}: write-ahead log is closed")
        self._clock.tick("wal.append")
        with _TRACER.span("wal.append", records=len(records)) as sp, \
                self._append_lock:
            written = 0
            for record in records:
                written += _write_frame(self._handle, record)
            written += _write_frame(self._handle, {"t": _T_COMMIT, "n": len(records)})
            self._handle.flush()
            # Counters and the append/sync sequence frontier are only ever
            # advanced under _append_lock (appends) or _sync_cond (sync
            # frontier), so concurrent committers cannot double-count; see
            # _sync_to for the frontier half of the invariant.
            self.bytes_written += written
            self.commits_appended += 1
            self._appended_seq += 1
            seq = self._appended_seq
            sp.set("bytes", written)
        self._tls.last_seq = seq
        if self.defer_sync:
            return
        if self.fsync == "always":
            self._sync_to(seq)
        elif self.fsync == "batch":
            if self._appended_seq - self._synced_seq >= self.batch_commits:
                self._sync_to(self._appended_seq)

    def commit_barrier(self) -> None:
        """Block until this thread's last committed unit is durable.

        The deferred half of early lock release: with ``defer_sync`` on,
        commits append their unit and release locks without waiting for
        the disk; the worker calls this *after* unlocking, and whichever
        barrier caller becomes the leader fsyncs once for every unit
        appended so far. No-op under ``fsync='never'``.
        """
        if self.fsync == "never":
            return
        seq = getattr(self._tls, "last_seq", 0)
        if seq:
            self._sync_to(seq)

    def _sync_to(self, seq: int) -> None:
        """Leader/follower group fsync: return once unit *seq* is durable."""
        self._clock.tick("wal.fsync")
        cond = self._sync_cond
        with cond:
            # Truncation resets the sequence space; a stale thread-local
            # seq from before it can never be pending again.
            seq = min(seq, self._appended_seq)
            while self._synced_seq < seq:
                if not self._sync_leader:
                    self._sync_leader = True
                    break
                self._clock.wait(cond)
            else:
                return
        try:
            if self.sync_delay:
                self._clock.sleep(self.sync_delay)
            # Units numbered <= _appended_seq are flushed to the kernel
            # (both happen under the append lock), so one fsync makes all
            # of them durable — including followers that appended while
            # the leader slept. Snapshot the target *before* fsyncing.
            target = self._appended_seq
            with _TRACER.span("wal.fsync", role="leader") as sp:
                fsio.fsync_handle(self._handle)
                sp.set("units", target - self._synced_seq)
            self.syncs += 1
        except BaseException:
            with cond:
                self._sync_leader = False
                self._clock.notify_all(cond)
            raise
        with cond:
            self._sync_leader = False
            if target > self._synced_seq:
                self._synced_seq = target
            self._clock.notify_all(cond)

    def _fsync(self) -> None:
        target = self._appended_seq
        with _TRACER.span("wal.fsync", role="direct"):
            fsio.fsync_handle(self._handle)
        self.syncs += 1
        with self._sync_cond:
            if target > self._synced_seq:
                self._synced_seq = target
            self._clock.notify_all(self._sync_cond)

    def sync(self) -> None:
        """Flush buffers and force bytes to stable storage."""
        if not self._handle.closed:
            self._handle.flush()
            self._fsync()

    def sync_appended(self) -> None:
        """Make every appended unit durable — a cross-thread barrier.

        Unlike :meth:`commit_barrier` (which waits only on the calling
        thread's last commit), this waits on the append frontier itself,
        covering units other threads committed under ``defer_sync`` and
        never followed with their own barrier. No-op when the frontier is
        already durable, or under ``fsync='never'``.
        """
        if self.fsync == "never":
            return
        with self._sync_cond:
            seq = self._appended_seq
        if seq > self._synced_seq:
            self._sync_to(seq)

    def close(self) -> None:
        """Flush (and, unless ``fsync='never'``, sync) then close the file."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self.fsync != "never" and self._unsynced_commits:
            self._fsync()
        self._handle.close()

    @property
    def in_transaction(self) -> bool:
        return bool(self._tx_stack)

    def truncate(self, generation: int | None = None) -> None:
        """Reset the log to an empty (header-only) file, durably.

        ``generation`` restamps the header — :meth:`WalDatabase.checkpoint`
        passes the new snapshot's generation so log and snapshot move to
        the new epoch together.
        """
        if generation is not None:
            self.generation = generation
        self._handle.close()
        _write_fresh_log(self.path, self.generation)
        self._handle = self.path.open("ab")
        with self._sync_cond:
            self._appended_seq = 0
            self._synced_seq = 0
            self._clock.notify_all(self._sync_cond)

    # -- reading -----------------------------------------------------------------------

    @staticmethod
    def read_log(path: str | Path) -> tuple[int, list[list[dict[str, Any]]]]:
        """``(generation, committed units oldest first)``, tolerating a torn
        tail.

        Raises :class:`WalCorruptionError` for mid-log damage or a missing
        or wrong-version header on a non-empty log.
        """
        path = fsio.as_path(path)
        generation, units, _sealed_end = _scan_log(path.read_bytes(), path)
        return generation, units

    @staticmethod
    def read_units(path: str | Path) -> list[list[dict[str, Any]]]:
        """Just the committed units of :meth:`read_log`."""
        return WriteAheadLog.read_log(path)[1]


def _write_fresh_log(path: Any, generation: int) -> None:
    """Atomically replace *path* with a header-only log at *generation*."""
    rewrite_log(path, generation, [])


def rewrite_log(
    path: Any, generation: int, units: list[list[dict[str, Any]]]
) -> None:
    """Atomically replace *path* with a log holding exactly *units*.

    Sharded recovery uses this to scrub units of transactions torn
    across shard logs: the units are physically removed, so a later
    recovery (which sees only this log) cannot resurrect them.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("wb") as handle:
        _write_frame(
            handle,
            {"t": _T_HEADER, "version": _WAL_VERSION,
             "fmt": _WAL_FORMAT, "gen": generation},
        )
        for unit in units:
            for record in unit:
                _write_frame(handle, record)
            _write_frame(handle, {"t": _T_COMMIT, "n": len(unit)})
        handle.flush()
        fsio.fsync_handle(handle)
    fsio.replace(tmp, path)
    _fsync_dir(path.parent)


# -- replay --------------------------------------------------------------------------


def replay_into(db: Database, units: list[list[dict[str, Any]]]) -> int:
    """Apply committed redo units to *db*; returns statements replayed.

    Records are applied at the physical table layer (FK enforcement and
    cascades already ran before the records were written; replaying them
    through the statement API would double-apply cascade effects). Integer
    primary-key watermarks are advanced so id allocation never hands out a
    replayed id again.
    """
    applied = 0
    for unit in units:
        for record in unit:
            _apply_record(db, record)
            applied += 1
    return applied


def _apply_record(db: Database, record: dict[str, Any]) -> None:
    op = record.get("op")
    if op == "txn":
        return  # group-commit marker: replay metadata, not a statement
    try:
        if op == "insert":
            table = db.table(record["table"])
            rows = [_decode_row(r) for r in record["rows"]]
            table.insert_rows(rows)
            _bump_watermark(db, record["table"], (r[table.schema.primary_key] for r in rows))
        elif op == "update":
            table = db.table(record["table"])
            pk_col = table.schema.primary_key
            if "deltas" in record or "set" in record:
                updates = [
                    (_decode_value(pk), _decode_row(delta))
                    for pk, delta in record.get("deltas", ())
                ]
                if "set" in record:
                    shared = _decode_row(record["set"])
                    updates.extend(
                        (_decode_value(pk), shared) for pk in record["set_pks"]
                    )
                table.update_pks(updates)
                _bump_watermark(db, record["table"], (pk for pk, _ in updates))
            else:  # fmt 1 logs carry full replacement rows
                new_pks = []
                for pk, new in record["updates"]:
                    _old, stored = table.update_by_pk(
                        _decode_value(pk), _decode_row(new)
                    )
                    new_pks.append(stored[pk_col])
                _bump_watermark(db, record["table"], new_pks)
        elif op == "delete":
            db.table(record["table"]).delete_pks(
                [_decode_value(pk) for pk in record["pks"]]
            )
        elif op == "create_table":
            db.create_table(_schema_from_json(record["schema"]))
        elif op == "drop_table":
            db.drop_table(record["name"])
        else:
            raise WalCorruptionError(f"unknown redo op {op!r}")
    except WalCorruptionError:
        raise
    except StorageError as exc:
        raise WalCorruptionError(f"replaying {op} on {record.get('table')!r}: {exc}") from exc


def _bump_watermark(db: Database, table: str, pks: Any) -> None:
    top = max((pk for pk in pks if isinstance(pk, int)), default=0)
    if top > db._id_watermark.get(table, 0):
        db._id_watermark[table] = top


# -- recovery / checkpoint / open ----------------------------------------------------


def default_wal_path(snapshot_path: str | Path) -> Any:
    path = fsio.as_path(snapshot_path)
    return path.with_name(path.name + ".wal")


def recover_database(
    snapshot_path: str | Path,
    wal_path: str | Path | None = None,
    verify: bool = True,
) -> Database:
    """Rebuild the database: last checkpoint snapshot + redo-log replay.

    Missing snapshot means the log started from an empty database (DDL
    records bootstrap the schema); a missing log means the snapshot alone
    is current. A torn log tail is discarded; mid-log corruption raises.

    Generation gate: the log replays only when its generation stamp
    matches the snapshot's. A *lower* stamp means the log's changes were
    already folded into the snapshot (a checkpoint or non-WAL rewrite
    crashed before discarding the log) — replaying them again would
    double-apply, so the stale log is skipped. A *higher* stamp means the
    snapshot the log was written against is gone: that is corruption.
    """
    from repro.storage.persist import load_database

    snapshot_path = fsio.as_path(snapshot_path)
    wal_path = (
        fsio.as_path(wal_path) if wal_path is not None else default_wal_path(snapshot_path)
    )
    snapshot_gen = read_snapshot_generation(snapshot_path)
    if snapshot_path.exists():
        db = load_database(snapshot_path, verify=False)
    else:
        db = Database(Schema())
    if wal_path.exists():
        wal_gen, units = WriteAheadLog.read_log(wal_path)
        if wal_gen == snapshot_gen:
            replay_into(db, units)
        elif wal_gen > snapshot_gen:
            raise WalCorruptionError(
                f"{wal_path}: log generation {wal_gen} is newer than snapshot "
                f"generation {snapshot_gen}; its base snapshot is missing"
            )
        # wal_gen < snapshot_gen: already folded into the snapshot — skip.
    if verify:
        db.assert_integrity()
    return db


class WalDatabase:
    """A database opened in place: snapshot + live write-ahead log.

    Opening recovers the committed state, attaches the log to the
    database's redo hook, and from then on every committed statement costs
    O(changes) in the log instead of an O(database) snapshot rewrite.
    Call :meth:`checkpoint` to fold the log back into the snapshot, and
    :meth:`close` when done (flushes per the fsync policy).
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        wal_path: str | Path | None = None,
        fsync: str = "batch",
        batch_commits: int = 8,
        verify: bool = True,
        sync_delay: float = 0.0,
        clock: Any = None,
        wal_cls: type["WriteAheadLog"] | None = None,
    ) -> None:
        self.snapshot_path = fsio.as_path(snapshot_path)
        self.wal_path = (
            fsio.as_path(wal_path)
            if wal_path is not None
            else default_wal_path(snapshot_path)
        )
        self.db = recover_database(self.snapshot_path, self.wal_path, verify=verify)
        self.wal = (wal_cls or WriteAheadLog)(
            self.wal_path,
            fsync=fsync,
            batch_commits=batch_commits,
            generation=read_snapshot_generation(self.snapshot_path),
            sync_delay=sync_delay,
            clock=clock,
        )
        self.db.set_redo_hook(self.wal)

    def checkpoint(self) -> None:
        """Durably snapshot the current state, then truncate the log.

        The snapshot is installed (atomically) with the generation bumped
        *before* the log is truncated: if we crash in between, the log's
        older stamp marks it as already-folded-in and recovery skips it.
        """
        if self.db.in_transaction:
            raise StorageError("cannot checkpoint inside an open transaction")
        self.wal.sync()
        new_generation = self.wal.generation + 1
        save_database_atomic(self.db, self.snapshot_path, generation=new_generation)
        self.wal.truncate(generation=new_generation)

    def close(self) -> None:
        self.db.set_redo_hook(None)
        self.wal.close()

    def __enter__(self) -> "WalDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def open_in_place(
    snapshot_path: str | Path,
    wal_path: str | Path | None = None,
    fsync: str = "batch",
    batch_commits: int = 8,
    verify: bool = True,
) -> WalDatabase:
    """Open a snapshot for O(delta) in-place operation (see :class:`WalDatabase`)."""
    return WalDatabase(
        snapshot_path,
        wal_path,
        fsync=fsync,
        batch_commits=batch_commits,
        verify=verify,
    )
