"""A small SELECT query layer over the storage engine.

The paper's Figure 1 shows the web application issuing *application
queries* against the same database the disguising tool transforms. This
module gives the substrate that read path::

    SELECT a.title, u.name FROM posts a
    JOIN users u ON a.user_id = u.id
    WHERE u.disabled = FALSE AND a.score > $MIN
    ORDER BY a.score DESC, a.id
    LIMIT 10 OFFSET 5

Supported: projection (bare or ``table.column`` references, ``*``,
``COUNT(*)``, ``AS`` aliases), INNER JOINs on column equality, WHERE (the
full disguise-predicate grammar), multi-key ORDER BY with ASC/DESC (NULLs
sort first), LIMIT/OFFSET, and ``$param`` binding throughout.

Execution is a planned nested-loop join: the driving table is filtered
first, and each JOIN probes the joined table's primary-key or FK hash
index when the join key allows, falling back to a per-row scan otherwise.
Joined rows form a namespace holding both ``alias.column`` keys and any
unambiguous bare column names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Mapping

from repro.errors import ParseError, StorageError, UnknownColumnError
from repro.storage.compile import matcher
from repro.storage.database import Database
from repro.storage.predicate import Predicate
from repro.storage.sql import parse_where

__all__ = ["Query", "parse_select", "run_select"]


@dataclass(frozen=True)
class _Source:
    table: str
    alias: str


@dataclass(frozen=True)
class _Join:
    source: _Source
    left: str   # qualified or bare column ref (existing namespace side)
    right: str  # column of the joined table (bare or alias-qualified)


@dataclass(frozen=True)
class _SelectItem:
    ref: str          # qualified/bare column name, or "*"
    alias: str | None


@dataclass(frozen=True)
class _OrderKey:
    ref: str
    descending: bool


@dataclass
class Query:
    """A parsed SELECT statement."""

    source: _Source
    joins: list[_Join] = field(default_factory=list)
    select: list[_SelectItem] = field(default_factory=list)
    count_star: bool = False
    where: Predicate | None = None
    order: list[_OrderKey] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0

    def run(self, db: Database, params: Mapping[str, Any] | None = None):
        return run_select(db, self, params)


# --------------------------------------------------------------------------
# Parsing — clause splitting, then sub-parsers per clause.
# --------------------------------------------------------------------------

_CLAUSE_RE = re.compile(
    r"\b(SELECT|FROM|JOIN|ON|WHERE|ORDER\s+BY|LIMIT|OFFSET)\b", re.IGNORECASE
)


def _split_clauses(sql: str) -> list[tuple[str, str]]:
    """[(clause keyword, clause text), ...] in source order."""
    matches = list(_CLAUSE_RE.finditer(sql))
    if not matches or matches[0].group().upper() != "SELECT" or matches[0].start() != len(sql) - len(sql.lstrip()):
        raise ParseError(f"not a SELECT statement: {sql[:60]!r}")
    out = []
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(sql)
        keyword = re.sub(r"\s+", " ", match.group().upper())
        out.append((keyword, sql[match.end():end].strip()))
    return out


_COUNT_RE = re.compile(r"^COUNT\s*\(\s*\*\s*\)$", re.IGNORECASE)
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def _parse_select_list(text: str) -> tuple[list[_SelectItem], bool]:
    if _COUNT_RE.match(text):
        return [], True
    items = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise ParseError("empty select item")
        alias = None
        as_match = re.match(r"^(.+?)\s+AS\s+(\w+)$", part, re.IGNORECASE)
        if as_match:
            part, alias = as_match.group(1).strip(), as_match.group(2)
        if part != "*" and not _NAME_RE.match(part):
            raise ParseError(f"unsupported select item {part!r}")
        items.append(_SelectItem(ref=part, alias=alias))
    return items, False


def _parse_source(text: str) -> _Source:
    parts = text.split()
    if len(parts) == 1:
        return _Source(parts[0], parts[0])
    if len(parts) == 2 and _NAME_RE.match(parts[1]):
        return _Source(parts[0], parts[1])
    if len(parts) == 3 and parts[1].upper() == "AS":
        return _Source(parts[0], parts[2])
    raise ParseError(f"malformed table reference {text!r}")


_ON_RE = re.compile(
    r"^([A-Za-z_][A-Za-z0-9_.]*)\s*=\s*([A-Za-z_][A-Za-z0-9_.]*)$"
)


def parse_select(sql: str) -> Query:
    """Parse a SELECT statement into a :class:`Query`.

    Parses are LRU-cached by statement text; the returned Query is shared
    and must not be mutated (execution via :func:`run_select` only reads).
    """
    return _parse_select_uncached(sql)


@lru_cache(maxsize=256)
def _parse_select_uncached(sql: str) -> Query:
    clauses = _split_clauses(sql.strip().rstrip(";"))
    query: Query | None = None
    pending_join: _Source | None = None
    for keyword, text in clauses:
        if keyword == "SELECT":
            items, count_star = _parse_select_list(text)
            query = Query(source=_Source("", ""), select=items, count_star=count_star)
        elif keyword == "FROM":
            assert query is not None
            query.source = _parse_source(text)
        elif keyword == "JOIN":
            pending_join = _parse_source(text)
        elif keyword == "ON":
            if pending_join is None:
                raise ParseError("ON without JOIN")
            match = _ON_RE.match(text)
            if match is None:
                raise ParseError(
                    f"JOIN supports a single column equality, got {text!r}"
                )
            assert query is not None
            left, right = match.group(1), match.group(2)
            # Normalize so `right` belongs to the joined table.
            if _owner_of(right, pending_join) is None and _owner_of(left, pending_join) is not None:
                left, right = right, left
            query.joins.append(_Join(pending_join, left, right))
            pending_join = None
        elif keyword == "WHERE":
            assert query is not None
            query.where = parse_where(text, keep_qualifiers=True)
        elif keyword == "ORDER BY":
            assert query is not None
            for part in text.split(","):
                tokens = part.split()
                if not tokens or not _NAME_RE.match(tokens[0]):
                    raise ParseError(f"malformed ORDER BY key {part!r}")
                descending = len(tokens) > 1 and tokens[1].upper() == "DESC"
                if len(tokens) > 2 or (
                    len(tokens) == 2 and tokens[1].upper() not in ("ASC", "DESC")
                ):
                    raise ParseError(f"malformed ORDER BY key {part!r}")
                query.order.append(_OrderKey(tokens[0], descending))
        elif keyword == "LIMIT":
            assert query is not None
            parts = text.split()
            if not parts or not parts[0].isdigit():
                raise ParseError(f"malformed LIMIT {text!r}")
            query.limit = int(parts[0])
            if len(parts) == 3 and parts[1].upper() == "OFFSET" and parts[2].isdigit():
                query.offset = int(parts[2])
            elif len(parts) != 1:
                raise ParseError(f"malformed LIMIT {text!r}")
        elif keyword == "OFFSET":
            assert query is not None
            if not text.isdigit():
                raise ParseError(f"malformed OFFSET {text!r}")
            query.offset = int(text)
    if pending_join is not None:
        raise ParseError("JOIN without ON")
    if query is None or not query.source.table:
        raise ParseError("SELECT needs a FROM clause")
    return query


def _owner_of(ref: str, source: _Source) -> str | None:
    """The bare column name if *ref* belongs to *source*, else None."""
    if "." in ref:
        qualifier, column = ref.split(".", 1)
        return column if qualifier == source.alias else None
    return ref  # bare references may belong to anything; caller decides


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


def run_select(db: Database, query: Query, params: Mapping[str, Any] | None = None):
    """Execute *query*; returns a row list, or an int for ``COUNT(*)``."""
    bound = params or {}
    namespaces = _drive(db, query)
    for join in query.joins:
        namespaces = _join(db, namespaces, join, query)
    if query.where is not None:
        # Compiled once per (predicate, params) and applied per namespace —
        # join outputs are filtered row-at-a-time, so the per-row win of
        # the compiled form compounds (see repro.storage.compile).
        match = matcher(query.where, bound)
        namespaces = [ns for ns in namespaces if match(ns)]
    if query.count_star:
        return len(namespaces)
    if query.order:
        for key in reversed(query.order):
            namespaces.sort(
                key=lambda ns: _sort_key(_lookup(ns, key.ref)),
                reverse=key.descending,
            )
    if query.offset:
        namespaces = namespaces[query.offset:]
    if query.limit is not None:
        namespaces = namespaces[: query.limit]
    return [_project(ns, query) for ns in namespaces]


def _drive(db: Database, query: Query) -> list[dict[str, Any]]:
    _count_select(db)
    alias = query.source.alias
    out = []
    for row in db.table(query.source.table).rows():
        out.append(_namespace({}, row, alias))
    return out


def _count_select(db: Database) -> None:
    """Bump select/statement counters for one query stage.

    Unlike ``Database`` statements, query stages bump ``db.stats``
    directly rather than through the per-thread pending merge — so when a
    lock hook is attached (concurrent service workers share the database)
    the bump must hold the stats lock or increments are lost to races.
    Single-threaded use keeps the lock-free fast path.
    """
    if db._lock_hook is not None:
        with db._stats_lock:
            db.stats.selects += 1
            db.stats.statements += 1
    else:
        db.stats.selects += 1
        db.stats.statements += 1


def _namespace(base: dict[str, Any], row: Mapping[str, Any], alias: str) -> dict[str, Any]:
    """Merge *row* under *alias*; bare names stay only while unambiguous."""
    ns = dict(base)
    for key, value in row.items():
        ns[f"{alias}.{key}"] = value
        marker = f"__bare__{key}"
        if marker in base:
            # a second table contributes this name: bare access is ambiguous
            ns.pop(key, None)
        else:
            ns[key] = value
            ns[marker] = True
    return ns


def _join(
    db: Database,
    namespaces: list[dict[str, Any]],
    join: _Join,
    query: Query,
) -> list[dict[str, Any]]:
    table = db.table(join.source.table)
    right_col = _owner_of(join.right, join.source)
    if right_col is None or not table.schema.has_column(right_col):
        raise StorageError(
            f"JOIN condition {join.right!r} does not name a column of "
            f"{join.source.table!r}"
        )
    use_index = table.has_indexed(right_col)
    pk_col = table.schema.primary_key
    out = []
    _count_select(db)
    for ns in namespaces:
        left_value = _lookup(ns, join.left)
        if left_value is None:
            continue  # NULL never joins
        if right_col == pk_col:
            match = table.view(left_value)
            matches = [match] if match is not None else []
        elif use_index:
            matches = table.referencing_rows(right_col, left_value)
        else:
            matches = [
                row for row in table.rows() if row[right_col] == left_value
            ]
        for row in matches:
            out.append(_namespace(ns, row, join.source.alias))
    return out


def _lookup(ns: Mapping[str, Any], ref: str) -> Any:
    try:
        return ns[ref]
    except KeyError:
        raise UnknownColumnError(
            f"unknown or ambiguous column {ref!r} in query"
        ) from None


def _sort_key(value: Any):
    # NULLs first; heterogeneous types ordered by type name for stability.
    return (value is not None, type(value).__name__, value)


def _project(ns: Mapping[str, Any], query: Query) -> dict[str, Any]:
    if not query.select or any(item.ref == "*" for item in query.select):
        return {
            key: value
            for key, value in ns.items()
            if "." in key and not key.startswith("__")
        }
    out = {}
    for item in query.select:
        name = item.alias or (item.ref.split(".")[-1])
        out[name] = _lookup(ns, item.ref)
    return out
